//! Crash-safe job records: every job's lifecycle state on disk, in the
//! PR-5 checkpoint idiom (versioned text, CRC-32 trailer, atomic
//! `.tmp`/`.prev` rotation), so a SIGKILLed daemon restarts into the
//! queue it was serving.
//!
//! One file per job, `job-<id>.rec` in the daemon's state directory:
//!
//! ```text
//! hi-serve job v1
//! id 3
//! state running
//! profile-lines 9
//! profile alice
//! ...                      (the profile's canonical text, counted lines)
//! result-lines 0
//! end
//! crc32 1a2b3c4d
//! ```
//!
//! Embedded blocks (the profile, and for terminal jobs the result) are
//! length-framed by line count, so any byte sequence the profile or
//! result may legally contain — including words that look like record
//! keywords — round-trips. A torn write is caught by the CRC and falls
//! back to `.prev`; a record torn beyond both copies is reported, never
//! silently half-loaded.
//!
//! Algorithm-1 jobs additionally auto-save an `ExploreCheckpoint` next
//! to their record (`job-<id>.ck`, the unmodified PR-5 machinery), which
//! is what makes a restart *resume* mid-search instead of starting over.

use std::fmt;
use std::path::{Path, PathBuf};

use hi_core::crc32_ieee;

/// A job's lifecycle state. `Queued → Running → Done | Failed |
/// Cancelled`; the three right-hand states are terminal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting for the scheduler.
    Queued,
    /// Currently executing (after a crash: to be resumed).
    Running,
    /// Finished; the record holds the result block.
    Done,
    /// Errored; the record holds a diagnostic block.
    Failed,
    /// Cancelled before or during execution.
    Cancelled,
}

impl JobState {
    /// The keyword used on the wire and in records.
    pub fn label(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    /// True once no further transitions can happen.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Failed | JobState::Cancelled
        )
    }

    fn parse(s: &str) -> Result<Self, String> {
        match s {
            "queued" => Ok(JobState::Queued),
            "running" => Ok(JobState::Running),
            "done" => Ok(JobState::Done),
            "failed" => Ok(JobState::Failed),
            "cancelled" => Ok(JobState::Cancelled),
            other => Err(format!("unknown job state `{other}`")),
        }
    }
}

impl fmt::Display for JobState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The persistent face of one job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRecord {
    /// The job id (also the record's file name).
    pub id: u64,
    /// Lifecycle state at the last persist.
    pub state: JobState,
    /// The idempotency token the submission carried, if any — persisted
    /// so a restarted daemon still answers a retried `SUBMIT` with the
    /// existing job id instead of double-scheduling.
    pub token: Option<String>,
    /// The profile's canonical text ([`UserProfile::to_text`]
    /// [crate::profile::UserProfile::to_text]).
    pub profile_text: String,
    /// The result block, once terminal (`None` before that).
    pub result: Option<String>,
}

const HEADER: &str = "hi-serve job v1";

fn count_lines(text: &str) -> usize {
    text.lines().count()
}

impl JobRecord {
    /// Renders the record, CRC trailer included.
    pub fn to_text(&self) -> String {
        let mut body = format!("{HEADER}\n");
        body.push_str(&format!("id {}\n", self.id));
        body.push_str(&format!("state {}\n", self.state));
        if let Some(token) = &self.token {
            body.push_str(&format!("token {token}\n"));
        }
        body.push_str(&format!(
            "profile-lines {}\n",
            count_lines(&self.profile_text)
        ));
        for line in self.profile_text.lines() {
            body.push_str(line);
            body.push('\n');
        }
        let result = self.result.as_deref().unwrap_or("");
        body.push_str(&format!("result-lines {}\n", count_lines(result)));
        for line in result.lines() {
            body.push_str(line);
            body.push('\n');
        }
        body.push_str("end\n");
        let crc = crc32_ieee(body.as_bytes());
        body.push_str(&format!("crc32 {crc:08x}\n"));
        body
    }

    /// Parses a record, verifying header and CRC trailer.
    pub fn from_text(text: &str) -> Result<Self, String> {
        let mut lines = text.lines();
        if lines.next() != Some(HEADER) {
            return Err(format!("missing `{HEADER}` header"));
        }
        // CRC first: everything after it is untrustworthy otherwise.
        let trailer_at = text
            .rfind("crc32 ")
            .ok_or("missing crc32 trailer".to_string())?;
        let body = &text[..trailer_at];
        let stated = text[trailer_at..]
            .trim_end()
            .strip_prefix("crc32 ")
            .and_then(|h| u32::from_str_radix(h, 16).ok())
            .ok_or("malformed crc32 trailer".to_string())?;
        let actual = crc32_ieee(body.as_bytes());
        if stated != actual {
            return Err(format!(
                "crc32 mismatch: trailer says {stated:08x}, body hashes to {actual:08x} \
                 (torn write?)"
            ));
        }
        fn take_kv(lines: &mut std::str::Lines<'_>, key: &str) -> Result<String, String> {
            let line = lines.next().ok_or(format!("truncated before `{key}`"))?;
            line.strip_prefix(key)
                .and_then(|rest| rest.strip_prefix(' '))
                .map(str::to_string)
                .ok_or(format!("expected `{key} ...`, found `{line}`"))
        }
        let id: u64 = take_kv(&mut lines, "id")?
            .parse()
            .map_err(|_| "bad job id".to_string())?;
        let state = JobState::parse(&take_kv(&mut lines, "state")?)?;
        // The token line is optional (pre-idempotency records omit it).
        let next = lines
            .next()
            .ok_or("truncated before `profile-lines`".to_string())?;
        let (token, count_line) = match next.strip_prefix("token ") {
            Some(token) => (
                Some(token.to_string()),
                lines
                    .next()
                    .ok_or("truncated before `profile-lines`".to_string())?,
            ),
            None => (None, next),
        };
        let profile_count: usize = count_line
            .strip_prefix("profile-lines")
            .and_then(|rest| rest.strip_prefix(' '))
            .ok_or(format!(
                "expected `profile-lines ...`, found `{count_line}`"
            ))?
            .parse()
            .map_err(|_| "bad profile-lines count".to_string())?;
        let mut profile_text = String::new();
        for _ in 0..profile_count {
            let line = lines.next().ok_or("truncated inside profile block")?;
            profile_text.push_str(line);
            profile_text.push('\n');
        }
        let result_count: usize = take_kv(&mut lines, "result-lines")?
            .parse()
            .map_err(|_| "bad result-lines count".to_string())?;
        let mut result_text = String::new();
        for _ in 0..result_count {
            let line = lines.next().ok_or("truncated inside result block")?;
            result_text.push_str(line);
            result_text.push('\n');
        }
        if lines.next() != Some("end") {
            return Err("missing `end` sentinel".to_string());
        }
        Ok(JobRecord {
            id,
            state,
            token,
            profile_text,
            result: (result_count > 0).then_some(result_text),
        })
    }

    /// Atomically persists the record at `path`: stage to `.tmp`, fsync,
    /// rotate the old file to `.prev`, rename into place — the PR-5
    /// checkpoint discipline, so a crash at any instant leaves an intact
    /// record under `path` or `path.prev`.
    pub fn write_atomic(&self, path: &Path) -> std::io::Result<()> {
        use std::io::Write as _;
        let tmp = sibling(path, ".tmp");
        {
            let mut file = std::fs::File::create(&tmp)?;
            file.write_all(self.to_text().as_bytes())?;
            file.sync_all()?;
        }
        if path.exists() {
            let _ = std::fs::rename(path, sibling(path, ".prev"));
        }
        std::fs::rename(&tmp, path)
    }
}

fn sibling(path: &Path, suffix: &str) -> PathBuf {
    let mut name = path.as_os_str().to_os_string();
    name.push(suffix);
    PathBuf::from(name)
}

/// Loads a job record, falling back to `.prev` when the primary copy is
/// torn or missing. Returns the record and whether the fallback was
/// used (worth a diagnostic). Errors only when *both* copies are
/// unusable.
pub fn load_job_recovering(path: &Path) -> Result<(JobRecord, bool), String> {
    let primary = std::fs::read_to_string(path)
        .map_err(|e| e.to_string())
        .and_then(|text| JobRecord::from_text(&text));
    match primary {
        Ok(record) => Ok((record, false)),
        Err(primary_err) => {
            let prev = sibling(path, ".prev");
            let fallback = std::fs::read_to_string(&prev)
                .map_err(|e| e.to_string())
                .and_then(|text| JobRecord::from_text(&text));
            match fallback {
                Ok(record) => Ok((record, true)),
                Err(prev_err) => Err(format!(
                    "{}: {primary_err}; fallback {}: {prev_err}",
                    path.display(),
                    prev.display()
                )),
            }
        }
    }
}

/// The record path for job `id` under `state_dir`.
pub fn record_path(state_dir: &Path, id: u64) -> PathBuf {
    state_dir.join(format!("job-{id}.rec"))
}

/// The Algorithm-1 checkpoint path for job `id` under `state_dir`.
pub fn checkpoint_path(state_dir: &Path, id: u64) -> PathBuf {
    state_dir.join(format!("job-{id}.ck"))
}

/// Scans `state_dir` for job records, recovering each (with `.prev`
/// fallback), sorted by job id. Unreadable records are returned as
/// per-file errors alongside the survivors — a half-corrupt state
/// directory still restarts the jobs it can prove intact.
pub fn scan_records(state_dir: &Path) -> (Vec<(JobRecord, bool)>, Vec<String>) {
    let mut records = Vec::new();
    let mut errors = Vec::new();
    let Ok(entries) = std::fs::read_dir(state_dir) else {
        return (records, errors);
    };
    let mut ids: Vec<u64> = entries
        .filter_map(|e| e.ok())
        .filter_map(|e| {
            let name = e.file_name();
            let name = name.to_str()?;
            name.strip_prefix("job-")?
                .strip_suffix(".rec")?
                .parse::<u64>()
                .ok()
        })
        .collect();
    ids.sort_unstable();
    ids.dedup();
    for id in ids {
        match load_job_recovering(&record_path(state_dir, id)) {
            Ok(loaded) => records.push(loaded),
            Err(e) => errors.push(e),
        }
    }
    (records, errors)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> JobRecord {
        JobRecord {
            id: 3,
            state: JobState::Done,
            token: None,
            profile_text: "profile alice\npdrmin 0.9\n".into(),
            result: Some("profile alice\nstatus feasible\nend end end\n".into()),
        }
    }

    #[test]
    fn token_line_roundtrips_and_stays_optional() {
        let tokened = JobRecord {
            token: Some("deploy-42".into()),
            ..sample()
        };
        let text = tokened.to_text();
        assert!(text.contains("\ntoken deploy-42\n"), "{text}");
        assert_eq!(JobRecord::from_text(&text), Ok(tokened));
        // Tokenless records render no token line at all, so pre-token
        // records parse unchanged.
        let bare = sample();
        assert!(!bare.to_text().contains("token"), "{}", bare.to_text());
        assert_eq!(JobRecord::from_text(&bare.to_text()), Ok(bare));
        // A profile whose first line *looks* like a token line must not
        // be mistaken for one (the real token line sits before the
        // profile-lines frame; payload lines are counted).
        let tricky = JobRecord {
            profile_text: "token not-a-token\npdrmin 0.9\n".into(),
            ..sample()
        };
        assert_eq!(JobRecord::from_text(&tricky.to_text()), Ok(tricky));
    }

    #[test]
    fn records_roundtrip_including_keyword_looking_content() {
        let record = sample();
        assert_eq!(JobRecord::from_text(&record.to_text()), Ok(record.clone()));
        // A profile line that *looks* like a record keyword must survive
        // the length framing.
        let tricky = JobRecord {
            profile_text: "profile end\nresult-lines 99\n".into(),
            result: None,
            state: JobState::Queued,
            ..record
        };
        assert_eq!(JobRecord::from_text(&tricky.to_text()), Ok(tricky));
    }

    #[test]
    fn torn_records_are_refused_with_crc_diagnostics() {
        let text = sample().to_text();
        let torn = &text[..text.len() / 2];
        let err = JobRecord::from_text(torn).unwrap_err();
        assert!(err.contains("crc32"), "{err}");
        let mut flipped = text.clone().into_bytes();
        flipped[20] ^= 0x40;
        let err = JobRecord::from_text(&String::from_utf8(flipped).unwrap()).unwrap_err();
        assert!(err.contains("mismatch"), "{err}");
    }

    #[test]
    fn atomic_writes_rotate_and_recover() {
        let dir = std::env::temp_dir().join(format!("hi-serve-persist-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = record_path(&dir, 3);
        let mut record = sample();
        record.state = JobState::Queued;
        record.write_atomic(&path).unwrap();
        record.state = JobState::Done;
        record.write_atomic(&path).unwrap();
        let (loaded, fallback) = load_job_recovering(&path).unwrap();
        assert!(!fallback);
        assert_eq!(loaded.state, JobState::Done);
        // Tear the primary: recovery must surface .prev (the queued copy).
        std::fs::write(&path, "hi-serve job v1\ngarbage").unwrap();
        let (recovered, fallback) = load_job_recovering(&path).unwrap();
        assert!(fallback);
        assert_eq!(recovered.state, JobState::Queued);
        let (records, errors) = scan_records(&dir);
        assert_eq!(records.len(), 1);
        assert!(errors.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
