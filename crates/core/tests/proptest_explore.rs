//! Property-based verification of the exploration machinery:
//!
//! * the MILP encoding's pool equals the brute-force set of analytic-cost
//!   minimizers for random topological constraint sets;
//! * Algorithm 1 returns the exhaustive-search optimum whenever the
//!   simulated power respects the analytic model (α-soundness premise).

use hi_core::power::analytic_power_mw;
use hi_core::{
    exhaustive_search, explore, DesignPoint, DesignSpace, Evaluation, FnEvaluator, MilpEncoding,
    Problem, TopologyConstraints,
};
use hi_des::check::{run_cases, Gen};
use hi_net::AppParams;
use std::collections::HashSet;

fn any_constraints(g: &mut Gen) -> TopologyConstraints {
    let all: Vec<usize> = (0..10).collect();
    // Rejection-sample until the induced design space is non-empty
    // (mirrors the original `prop_filter`); generous cap so a pathological
    // seed still terminates with a witness instead of spinning.
    for _ in 0..64 {
        let mut required = g.subsequence(&all, 0.1);
        required.truncate(2);
        let groups = g.vec(0..3, |g| {
            let mut grp = g.subsequence(&all, 0.2);
            grp.truncate(3);
            if grp.is_empty() {
                grp.push(*g.choose(&all));
            }
            grp
        });
        let min_nodes = g.usize_in(2..5);
        let extra = g.usize_in(0..4);
        let c = TopologyConstraints {
            required,
            at_least_one: groups,
            implications: Vec::new(),
            min_nodes,
            max_nodes: min_nodes + extra,
        };
        if !c.feasible_placements().is_empty() {
            return c;
        }
    }
    // Fallback: the unconstrained space, always non-empty.
    TopologyConstraints {
        required: Vec::new(),
        at_least_one: Vec::new(),
        implications: Vec::new(),
        min_nodes: 2,
        max_nodes: 4,
    }
}

#[test]
fn milp_pool_equals_brute_force_minimizers() {
    run_cases(40, 0xC0_7E01, |g| {
        let constraints = any_constraints(g);
        let app = AppParams::default();
        let enc = MilpEncoding::new(&constraints, &app);
        let (pool, p_star) = enc.solve_pool().expect("solves");
        let space = DesignSpace::new(constraints);
        let points = space.points();
        assert!(!points.is_empty());
        let p_star = p_star.expect("feasible space must yield an optimum");

        // Brute force: every point attaining the minimum analytic power.
        let best = points
            .iter()
            .map(|p| analytic_power_mw(p, &app))
            .fold(f64::INFINITY, f64::min);
        assert!(
            (best - p_star).abs() < 1e-6,
            "milp {p_star} vs brute {best}"
        );
        let want: HashSet<DesignPoint> = points
            .into_iter()
            .filter(|p| (analytic_power_mw(p, &app) - best).abs() < 1e-9)
            .collect();
        let got: HashSet<DesignPoint> = pool.into_iter().collect();
        assert_eq!(got, want);
    });
}

#[test]
fn algorithm1_equals_exhaustive_under_sound_oracle() {
    run_cases(40, 0xC0_7E02, |g| {
        let constraints = any_constraints(g);
        let pdr_seed = g.u64();
        let floor = g.f64_in(0.1, 0.95);
        // Oracle: deterministic pseudo-random PDR per point, simulated
        // power exactly the analytic value (so the α bound is sound).
        let app = AppParams::default();
        let oracle = move |p: &DesignPoint| {
            let mut h = pdr_seed
                ^ (u64::from(p.placement.mask()) << 7)
                ^ ((p.tx_power as u64) << 30)
                ^ ((p.routing as u64) << 40)
                ^ ((p.mac as u64) << 50);
            h ^= h >> 33;
            h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
            h ^= h >> 33;
            let pdr = (h % 1000) as f64 / 999.0;
            let power = analytic_power_mw(p, &app);
            Evaluation {
                pdr,
                nlt_days: 2430.0 / (power * 1e-3) / 86_400.0,
                power_mw: power,
                latency_ms: 2.0 + power,
            }
        };
        let problem = Problem {
            space: DesignSpace::new(constraints),
            pdr_min: floor,
            app,
        };
        let mut a1_ev = FnEvaluator::new(oracle);
        let a1 = explore(&problem, &mut a1_ev).expect("explore");
        let mut ex_ev = FnEvaluator::new(oracle);
        let ex = exhaustive_search(&problem, &mut ex_ev);

        assert_eq!(
            a1.best.map(|(_, e)| e.power_mw.to_bits()),
            ex.best.map(|(_, e)| e.power_mw.to_bits()),
            "optimum mismatch"
        );
        assert!(a1.simulations <= ex.simulations);
    });
}
