//! MILP encoding of the relaxed problem `P̃` (everything in eq. 8 except
//! the PDR constraint, with the analytic power eq. 9 as objective).
//!
//! Variables:
//!
//! * `n_i` — site occupancy binaries (the topology vector `ν`);
//! * `p_k` — one-hot transmit-power selectors (`p1 + p2 + p3 = 1`);
//! * `mac` — MAC choice (free: the coarse power model is MAC-independent,
//!   so both choices appear in every optimal pool);
//! * `mesh` — routing selector (`Prt`);
//! * `y_N` — one-hot node-count indicators (`Σ n_i = Σ N·y_N`);
//! * `z_{N,k,r}` — products `y_N ∧ p_k ∧ (routing = r)`, linearized with
//!   the standard `z ≤ a, z ≤ b, z ≤ c, z ≥ a + b + c − 2` rows.
//!
//! The bilinear analytic power (eq. 9 multiplies the power-level choice,
//! the routing choice and an `N`-dependent factor) becomes the linear form
//! `Σ cost(N, k, r) · z_{N,k,r}` over the 18-combination lattice.

use hi_lint::{CutTracker, Finding, Report};
use hi_milp::{LinExpr, Model, Sense, Solution, SolveError, VarId};
use hi_net::{AppParams, TxPower};

use crate::constraints::TopologyConstraints;
use crate::point::{DesignPoint, MacChoice, Placement, RouteChoice};
use crate::power::radio_power_mw;
use crate::robustness::{deviation_power_mw, RobustnessSpec};

/// The growing MILP model behind Algorithm 1's `RunMILP`: construct once,
/// then alternate [`solve_pool`](MilpEncoding::solve_pool) and
/// [`add_power_cut`](MilpEncoding::add_power_cut).
#[derive(Debug, Clone)]
pub struct MilpEncoding {
    model: Model,
    site_vars: Vec<VarId>,
    power_vars: Vec<(TxPower, VarId)>,
    mac_var: VarId,
    mesh_var: VarId,
    /// Objective in mW, kept for power cuts.
    objective_mw: LinExpr,
    /// The Γ-robust objective (nominal + `Γλ + Σμ_l`), present only on
    /// encodings built by [`new_robust`](MilpEncoding::new_robust) with a
    /// non-degenerate spec; kept for robust cuts.
    robust_objective: Option<LinExpr>,
    /// The product lattice: `(analytic power incl. baseline, z var)`.
    z_vars: Vec<(f64, VarId)>,
    /// Kept for expanding the optimal solution into the full pool.
    constraints: TopologyConstraints,
    /// Fingerprints of the Algorithm-1 cuts added so far, so a cut that
    /// is no tighter than an earlier one is flagged instead of silently
    /// bloating every subsequent solve.
    cut_tracker: CutTracker,
    /// Redundancy findings the tracker produced across the cut ladder.
    cut_findings: Vec<Finding>,
}

impl MilpEncoding {
    /// Encodes `P̃` for the given topological constraints and application
    /// parameters.
    pub fn new(constraints: &TopologyConstraints, app: &AppParams) -> Self {
        let mut model = Model::new();

        let site_vars: Vec<VarId> = (0..10)
            .map(|i| model.add_binary(&format!("n{i}")))
            .collect();
        let power_vars: Vec<(TxPower, VarId)> = TxPower::ALL
            .iter()
            .enumerate()
            .map(|(k, &p)| (p, model.add_binary(&format!("p{}", k + 1))))
            .collect();
        let mac_var = model.add_binary("mac");
        let mesh_var = model.add_binary("mesh");

        // Topological constraints r_T.
        for &i in &constraints.required {
            model.add_constraint(site_vars[i] * 1.0, Sense::Eq, 1.0);
        }
        for group in &constraints.at_least_one {
            let e = LinExpr::sum(group.iter().map(|&i| site_vars[i]));
            model.add_constraint(e, Sense::Ge, 1.0);
        }
        for &(i, j) in &constraints.implications {
            model.add_constraint(site_vars[j] - site_vars[i], Sense::Le, 0.0);
        }
        let total = LinExpr::sum(site_vars.iter().copied());
        model.add_constraint(total.clone(), Sense::Ge, constraints.min_nodes as f64);
        model.add_constraint(total.clone(), Sense::Le, constraints.max_nodes as f64);

        // One-hot selectors.
        let p_sum = LinExpr::sum(power_vars.iter().map(|&(_, v)| v));
        model.add_constraint(p_sum, Sense::Eq, 1.0);

        // Node-count indicators: sum n = sum N * y_N, sum y = 1.
        let counts: Vec<usize> = (constraints.min_nodes..=constraints.max_nodes).collect();
        let count_vars: Vec<(usize, VarId)> = counts
            .iter()
            .map(|&n| (n, model.add_binary(&format!("y{n}"))))
            .collect();
        let y_sum = LinExpr::sum(count_vars.iter().map(|&(_, v)| v));
        model.add_constraint(y_sum, Sense::Eq, 1.0);
        let mut linked = LinExpr::new();
        for &(n, y) in &count_vars {
            linked.add_term(y, n as f64);
        }
        model.add_constraint(total - linked, Sense::Eq, 0.0);

        // Product lattice and the linearized objective.
        let baseline_mw = app.baseline_power_w * 1e3;
        let mut objective_mw = LinExpr::constant_expr(baseline_mw);
        let mut z_sum = LinExpr::new();
        let mut z_vars = Vec::new();
        for &(n, y) in &count_vars {
            for &(p, pv) in &power_vars {
                for r in RouteChoice::ALL {
                    let z = model.add_binary(&format!("z_{n}_{p}_{r}"));
                    // z <= y, z <= p
                    model.add_constraint(LinExpr::var(z) - y, Sense::Le, 0.0);
                    model.add_constraint(LinExpr::var(z) - pv, Sense::Le, 0.0);
                    match r {
                        RouteChoice::Mesh => {
                            // z <= mesh; z >= y + p + mesh - 2
                            model.add_constraint(LinExpr::var(z) - mesh_var, Sense::Le, 0.0);
                            model.add_constraint(
                                LinExpr::var(z) - y - pv - mesh_var,
                                Sense::Ge,
                                -2.0,
                            );
                        }
                        RouteChoice::Star => {
                            // z <= 1 - mesh; z >= y + p + (1 - mesh) - 2
                            model.add_constraint(z + mesh_var, Sense::Le, 1.0);
                            model.add_constraint(
                                LinExpr::var(z) - y - pv + mesh_var,
                                Sense::Ge,
                                -1.0,
                            );
                        }
                    }
                    let cost = radio_power_mw(n, p, r, app);
                    objective_mw.add_term(z, cost);
                    z_vars.push((baseline_mw + cost, z));
                    z_sum.add_term(z, 1.0);
                }
            }
        }
        model.add_constraint(z_sum, Sense::Eq, 1.0);
        model.minimize(objective_mw.clone());

        Self {
            model,
            site_vars,
            power_vars,
            mac_var,
            mesh_var,
            objective_mw,
            robust_objective: None,
            z_vars,
            constraints: constraints.clone(),
            cut_tracker: CutTracker::new(),
            cut_findings: Vec::new(),
        }
    }

    /// Prunes every configuration whose analytic power is at or below
    /// `power_mw` — Algorithm 1's `Update(P̃, P̄ > P̄*)` (line 11).
    pub fn add_power_cut(&mut self, power_mw: f64) {
        // Power levels are discrete and well separated; a tiny epsilon
        // turns the strict inequality into a usable `>=` row.
        self.model
            .add_constraint(self.objective_mw.clone(), Sense::Ge, power_mw + 1e-6);
        // Fingerprint the new cut (the row just appended) so a ladder that
        // stops tightening — the classic stalled-Algorithm-1 bug — is
        // reported instead of looping forever at the same power level.
        let lint_model = self.model.to_lint_model();
        if let Some(cut_row) = lint_model.rows.last() {
            if let Some(finding) = self.cut_tracker.observe(cut_row) {
                self.cut_findings.push(finding);
            }
        }
        // Presolve-strength equivalent: the analytic power is `Σ cost·z`
        // over a one-hot lattice, so `P̄ > power_mw` is exactly "no combo
        // at or below the bound" — fixing those `z` to zero keeps the LP
        // relaxation tight (the bare `>=` row alone admits fractional
        // z-mixes that sit on the bound and stall branch & bound).
        let to_fix: Vec<VarId> = self
            .z_vars
            .iter()
            .filter(|&&(cost, _)| cost <= power_mw + 1e-6)
            .map(|&(_, v)| v)
            .collect();
        for v in to_fix {
            self.model.set_bounds(v, 0.0, 0.0);
        }
        // Re-lint the augmented encoding: a cut must never make the model
        // structurally broken (that would be an encoding bug, not a normal
        // "ladder exhausted" infeasibility, which is warning-severity).
        debug_assert!(
            !self.model.lint().has_errors(),
            "power cut introduced a structural error:\n{}",
            self.model.lint()
        );
    }

    /// Encodes the Γ-robust counterpart of `P̃`: the nominal encoding plus
    /// the classic Bertsimas–Sim dualization of "up to Γ links deviate by
    /// their bounds at once".
    ///
    /// Per protected link `l = (a, b)` with deviation price
    /// `δp_l = deviation_power_mw(δ_l)`:
    ///
    /// * a continuous activation `u_l ∈ [0, 1]`, forced to 1 exactly when
    ///   the link exists in the decoded design — `u_l ≥ n_a + n_b − 1` for
    ///   hub pairs (site 0 is the star coordinator, so its links exist
    ///   under both routings), `u_l ≥ n_a + n_b + mesh − 2` for peripheral
    ///   pairs (a direct peripheral link only exists in mesh routing);
    /// * a dual `μ_l ∈ [0, δp_l]` and the shared budget dual `λ ≥ 0`, tied
    ///   by the dual feasibility row `λ + μ_l ≥ δp_l · u_l`.
    ///
    /// The objective becomes `P̄ + Γ·λ + Σ_l μ_l`, whose minimum equals
    /// the nominal power plus the worst sum of Γ active-link deviations —
    /// LP duality makes the inner adversary exact while the model stays an
    /// LP-relaxable MILP for the existing simplex / branch & bound.
    /// A degenerate spec (Γ = 0 or no protected links) returns the plain
    /// nominal encoding unchanged.
    pub fn new_robust(
        constraints: &TopologyConstraints,
        app: &AppParams,
        spec: &RobustnessSpec,
    ) -> Self {
        let mut enc = Self::new(constraints, app);
        if spec.is_degenerate() {
            return enc;
        }
        let delta_max = spec
            .deviations
            .iter()
            .map(|d| deviation_power_mw(d.delta_db, app))
            .fold(0.0f64, f64::max);
        let lambda = enc.model.add_continuous("lambda", 0.0, delta_max);
        let mut robust = enc.objective_mw.clone();
        robust.add_term(lambda, f64::from(spec.gamma));
        for d in &spec.deviations {
            let dp = deviation_power_mw(d.delta_db, app);
            if dp <= 0.0 {
                continue;
            }
            let u = enc
                .model
                .add_continuous(&format!("u_{}_{}", d.site_a, d.site_b), 0.0, 1.0);
            let (na, nb) = (enc.site_vars[d.site_a], enc.site_vars[d.site_b]);
            if d.site_a == 0 || d.site_b == 0 {
                enc.model
                    .add_constraint(LinExpr::var(u) - na - nb, Sense::Ge, -1.0);
            } else {
                enc.model
                    .add_constraint(LinExpr::var(u) - na - nb - enc.mesh_var, Sense::Ge, -2.0);
            }
            let mu = enc
                .model
                .add_continuous(&format!("mu_{}_{}", d.site_a, d.site_b), 0.0, dp);
            enc.model
                .add_constraint(lambda + mu - LinExpr::term(u, dp), Sense::Ge, 0.0);
            robust.add_term(mu, 1.0);
        }
        enc.model.minimize(robust.clone());
        enc.robust_objective = Some(robust);
        enc
    }

    /// True if this encoding carries the Γ-robust objective.
    pub fn is_robust(&self) -> bool {
        self.robust_objective.is_some()
    }

    /// Excludes the exact integer assignment of `point` (a no-good cut) —
    /// the robust engines' ladder step.
    ///
    /// An objective-threshold row like
    /// [`add_power_cut`](MilpEncoding::add_power_cut) is unsound on the
    /// robust objective: its duals (`lambda`, `mu`) are only
    /// lower-bounded by the dualization rows, so the LP can inflate them
    /// past their dual-minimal values and return the *same* design at
    /// any demanded objective — the ladder would crawl by epsilon
    /// forever. Excluding the disproven witness itself is sound:
    /// re-minimizing then yields the next-cheapest design by robust
    /// cost, ties surfacing one at a time in deterministic solver order.
    pub fn exclude_point(&mut self, point: &DesignPoint) {
        let mut row = LinExpr::new();
        let mut ones = 0.0;
        let mut bind = |row: &mut LinExpr, var: VarId, selected: bool| {
            if selected {
                row.add_term(var, 1.0);
                ones += 1.0;
            } else {
                row.add_term(var, -1.0);
            }
        };
        for (i, &v) in self.site_vars.iter().enumerate() {
            bind(&mut row, v, point.placement.contains_index(i));
        }
        for &(p, v) in &self.power_vars {
            bind(&mut row, v, p == point.tx_power);
        }
        bind(&mut row, self.mac_var, point.mac == MacChoice::Tdma);
        bind(&mut row, self.mesh_var, point.routing == RouteChoice::Mesh);
        self.model.add_constraint(row, Sense::Le, ones - 1.0);
        // Fingerprint the new cut so a ladder that re-excludes the same
        // witness — the stalled-ladder bug in robust form — is reported
        // instead of looping forever.
        let lint_model = self.model.to_lint_model();
        if let Some(cut_row) = lint_model.rows.last() {
            if let Some(finding) = self.cut_tracker.observe(cut_row) {
                self.cut_findings.push(finding);
            }
        }
        debug_assert!(
            !self.model.lint().has_errors(),
            "no-good cut introduced a structural error:\n{}",
            self.model.lint()
        );
    }

    /// Runs the MILP and returns the single decoded optimum and its
    /// objective value, or `None` if the (cut-augmented) model is
    /// infeasible.
    ///
    /// The robust engines use this instead of
    /// [`solve_pool`](MilpEncoding::solve_pool): the pool expansion there
    /// assumes the objective depends only on `(N, power, routing)`, which
    /// the placement-dependent robust objective breaks. Designs tied at
    /// the witness's robust objective surface one at a time as
    /// [`exclude_point`](MilpEncoding::exclude_point) removes each
    /// disproven witness.
    ///
    /// # Errors
    ///
    /// Propagates solver failures.
    pub fn solve_witness(&self) -> Result<Option<(DesignPoint, f64)>, SolveError> {
        let sol = self.model.solve()?;
        if !sol.is_optimal() {
            return Ok(None);
        }
        Ok(Some((self.decode(&sol), sol.objective())))
    }

    /// Pins site `site`'s occupancy binary to `occupied` — the ILP
    /// heuristic's restriction step.
    pub fn fix_site(&mut self, site: usize, occupied: bool) {
        let v = f64::from(u8::from(occupied));
        self.model.set_bounds(self.site_vars[site], v, v);
    }

    /// Releases a pinned site back to `[0, 1]` — the ILP heuristic's
    /// repair step.
    pub fn free_site(&mut self, site: usize) {
        self.model.set_bounds(self.site_vars[site], 0.0, 1.0);
    }

    /// Lints the current (cut-augmented) encoding.
    ///
    /// Combines the model-level analysis of [`hi_lint::analyze`] with the
    /// cross-iteration cut-redundancy findings accumulated by
    /// [`add_power_cut`](MilpEncoding::add_power_cut).
    pub fn lint_report(&self) -> Report {
        let mut report = self.model.lint();
        for finding in &self.cut_findings {
            report.push(finding.clone());
        }
        report
    }

    /// Runs the MILP and enumerates *all* optimal configurations —
    /// Algorithm 1's `RunMILP` returning `(S, P̄*)`.
    ///
    /// The branch & bound finds one optimum and its power level; because
    /// the analytic cost (eq. 9) depends only on `(N, power, routing)`,
    /// the remaining optimal solutions are exactly the other placements of
    /// the same size (under the same topological constraints) combined
    /// with either MAC — the pool is expanded combinatorially instead of
    /// re-solving behind no-good cuts. (For generic models,
    /// [`hi_milp::pool::enumerate_optima`] provides the cut-based
    /// equivalent.)
    ///
    /// Returns an empty set if the (cut-augmented) model is infeasible.
    ///
    /// # Errors
    ///
    /// Propagates solver failures.
    pub fn solve_pool(&self) -> Result<(Vec<DesignPoint>, Option<f64>), SolveError> {
        let sol = self.model.solve()?;
        if !sol.is_optimal() {
            return Ok((Vec::new(), None));
        }
        let p_star = sol.objective();
        let witness = self.decode(&sol);
        let n = witness.num_nodes();
        let mut points = Vec::new();
        for placement in self.constraints.feasible_placements() {
            if placement.len() != n {
                continue;
            }
            for mac in MacChoice::ALL {
                points.push(DesignPoint {
                    placement,
                    tx_power: witness.tx_power,
                    mac,
                    routing: witness.routing,
                });
            }
        }
        debug_assert!(points.contains(&witness));
        Ok((points, Some(p_star)))
    }

    /// Interprets a MILP solution as a design point.
    fn decode(&self, sol: &Solution) -> DesignPoint {
        let placement = Placement::from_indices(
            self.site_vars
                .iter()
                .enumerate()
                .filter(|(_, &v)| sol.int_value(v) == 1)
                .map(|(i, _)| i),
        );
        let tx_power = self
            .power_vars
            .iter()
            .find(|&&(_, v)| sol.int_value(v) == 1)
            .map(|&(p, _)| p)
            .expect("exactly one power level must be selected");
        let mac = if sol.int_value(self.mac_var) == 1 {
            MacChoice::Tdma
        } else {
            MacChoice::Csma
        };
        let routing = if sol.int_value(self.mesh_var) == 1 {
            RouteChoice::Mesh
        } else {
            RouteChoice::Star
        };
        DesignPoint {
            placement,
            tx_power,
            mac,
            routing,
        }
    }

    /// Read-only access to the underlying MILP model (for inspection and
    /// benchmarking).
    pub fn model(&self) -> &Model {
        &self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::power::analytic_power_mw;
    use std::collections::HashSet;

    fn paper_encoding() -> MilpEncoding {
        MilpEncoding::new(&TopologyConstraints::paper_default(), &AppParams::default())
    }

    #[test]
    fn first_pool_is_minimal_star_at_minus20() {
        let enc = paper_encoding();
        let (points, p_star) = enc.solve_pool().unwrap();
        assert!(!points.is_empty());
        let app = AppParams::default();
        for pt in &points {
            // Cheapest class: 4 nodes, -20 dBm, star (both MACs).
            assert_eq!(pt.num_nodes(), 4, "{pt}");
            assert_eq!(pt.tx_power, TxPower::Minus20Dbm, "{pt}");
            assert_eq!(pt.routing, RouteChoice::Star, "{pt}");
            assert!((analytic_power_mw(pt, &app) - p_star.unwrap()).abs() < 1e-6);
        }
        // 8 minimal placements x 2 MAC choices.
        assert_eq!(points.len(), 16);
        let macs: HashSet<_> = points.iter().map(|p| p.mac).collect();
        assert_eq!(macs.len(), 2, "both MACs must appear in the pool");
    }

    #[test]
    fn pool_entries_are_distinct_and_constraint_satisfying() {
        let enc = paper_encoding();
        let constraints = TopologyConstraints::paper_default();
        let (points, _) = enc.solve_pool().unwrap();
        let set: HashSet<_> = points.iter().collect();
        assert_eq!(set.len(), points.len());
        for pt in &points {
            assert!(constraints.is_satisfied(pt.placement), "{pt}");
        }
    }

    #[test]
    fn power_cut_advances_to_next_level() {
        let app = AppParams::default();
        let mut enc = paper_encoding();
        let (_, p1) = enc.solve_pool().unwrap();
        enc.add_power_cut(p1.unwrap());
        let (points, p2) = enc.solve_pool().unwrap();
        assert!(p2.unwrap() > p1.unwrap());
        // Second-cheapest class: 4 nodes, -10 dBm, star.
        for pt in &points {
            assert_eq!(pt.tx_power, TxPower::Minus10Dbm, "{pt}");
            assert_eq!(pt.routing, RouteChoice::Star, "{pt}");
            assert!((analytic_power_mw(pt, &app) - p2.unwrap()).abs() < 1e-6);
        }
    }

    #[test]
    fn cut_ladder_reaches_infeasibility() {
        // 18 (N, power, routing) cost levels at most; cutting repeatedly
        // must terminate with an empty pool.
        let mut enc = paper_encoding();
        let mut levels = Vec::new();
        for _ in 0..32 {
            let (points, p) = enc.solve_pool().unwrap();
            match p {
                None => break,
                Some(p) => {
                    assert!(!points.is_empty());
                    levels.push(p);
                    enc.add_power_cut(p);
                }
            }
        }
        assert!(!levels.is_empty());
        assert!(levels.len() <= 18, "at most 18 distinct cost levels");
        assert!(
            levels.windows(2).all(|w| w[1] > w[0]),
            "strictly increasing"
        );
        // After the ladder is exhausted the model must be infeasible.
        let (points, p) = enc.solve_pool().unwrap();
        assert!(points.is_empty() && p.is_none());
    }

    #[test]
    fn ladder_orders_star_before_equal_size_mesh() {
        let mut enc = paper_encoding();
        let mut first_mesh_level = None;
        let mut last_star4_level = None;
        for level in 0.. {
            let (points, p) = enc.solve_pool().unwrap();
            let Some(p) = p else { break };
            for pt in &points {
                if pt.routing == RouteChoice::Mesh && first_mesh_level.is_none() {
                    first_mesh_level = Some(level);
                }
                if pt.routing == RouteChoice::Star && pt.num_nodes() == 4 {
                    last_star4_level = Some(level);
                }
            }
            enc.add_power_cut(p);
        }
        let (fm, ls) = (first_mesh_level.unwrap(), last_star4_level.unwrap());
        assert!(
            fm > ls,
            "every 4-node star level ({ls}) must precede the first mesh level ({fm})"
        );
    }

    #[test]
    fn cut_ladder_stays_lint_clean_on_paper_scenario() {
        // Regression for the full 12,288-configuration scenario: the cuts
        // Algorithm 1 accumulates while exhausting the ladder must neither
        // break the encoding structurally nor repeat themselves.
        assert_eq!(
            crate::DesignSpace::unconstrained_size(),
            12_288,
            "paper scenario size"
        );
        let mut enc = paper_encoding();
        loop {
            let (_, p) = enc.solve_pool().unwrap();
            match p {
                Some(p) => enc.add_power_cut(p),
                None => break,
            }
        }
        let report = enc.lint_report();
        assert!(!report.has_errors(), "{report}");
        assert!(
            !report.has_rule(hi_lint::RuleId::RedundantCut),
            "a strictly rising ladder must not repeat cuts:\n{report}"
        );
    }

    #[test]
    fn repeated_power_cut_is_flagged_as_redundant() {
        let mut enc = paper_encoding();
        let (_, p) = enc.solve_pool().unwrap();
        let p = p.unwrap();
        enc.add_power_cut(p);
        enc.add_power_cut(p); // same threshold again: no progress
        let report = enc.lint_report();
        assert!(report.has_rule(hi_lint::RuleId::RedundantCut), "{report}");
    }

    #[test]
    fn required_site_always_selected() {
        let enc = paper_encoding();
        let (points, _) = enc.solve_pool().unwrap();
        for pt in points {
            assert!(pt.placement.contains_index(0), "chest required");
        }
    }

    use crate::robustness::{LinkDeviation, RobustnessSpec};
    use hi_channel::BodyLocation;

    /// Every pair deviates by 9 dB (a wideband interference burst): any
    /// witness has active protected links, so robustness must cost.
    fn wideband_spec(gamma: u32) -> RobustnessSpec {
        let mut deviations = Vec::new();
        for a in 0..BodyLocation::COUNT {
            for b in (a + 1)..BodyLocation::COUNT {
                deviations.push(LinkDeviation {
                    site_a: a,
                    site_b: b,
                    delta_db: 9.0,
                });
            }
        }
        RobustnessSpec { gamma, deviations }
    }

    #[test]
    fn robust_objective_prices_gamma_monotonically() {
        let app = AppParams::default();
        let constraints = TopologyConstraints::paper_default();
        let (_, nominal) = MilpEncoding::new(&constraints, &app)
            .solve_witness()
            .unwrap()
            .unwrap();
        let mut prev = nominal;
        for gamma in 1..=4u32 {
            let enc = MilpEncoding::new_robust(&constraints, &app, &wideband_spec(gamma));
            assert!(enc.is_robust());
            let (pt, robust) = enc.solve_witness().unwrap().unwrap();
            assert!(constraints.is_satisfied(pt.placement), "{pt}");
            assert!(
                robust > nominal,
                "Γ = {gamma}: robust {robust} must cost more than nominal {nominal}"
            );
            assert!(
                robust >= prev - 1e-9,
                "price of robustness must be non-decreasing in Γ ({robust} < {prev})"
            );
            prev = robust;
        }
    }

    #[test]
    fn degenerate_spec_builds_the_nominal_encoding() {
        let app = AppParams::default();
        let constraints = TopologyConstraints::paper_default();
        let nominal = MilpEncoding::new(&constraints, &app)
            .solve_witness()
            .unwrap()
            .unwrap()
            .1;
        for spec in [
            RobustnessSpec {
                gamma: 0,
                deviations: wideband_spec(1).deviations,
            },
            RobustnessSpec {
                gamma: 3,
                deviations: vec![],
            },
        ] {
            let enc = MilpEncoding::new_robust(&constraints, &app, &spec);
            assert!(!enc.is_robust());
            let (_, p) = enc.solve_witness().unwrap().unwrap();
            assert_eq!(p.to_bits(), nominal.to_bits(), "bit-identical to nominal");
        }
    }

    #[test]
    fn excluding_witnesses_climbs_the_robust_ladder() {
        let app = AppParams::default();
        let constraints = TopologyConstraints::paper_default();
        let mut enc = MilpEncoding::new_robust(&constraints, &app, &wideband_spec(2));
        let mut seen = Vec::new();
        let mut prev = f64::NEG_INFINITY;
        for _ in 0..6 {
            let (pt, p) = enc.solve_witness().unwrap().unwrap();
            // Ties are only equal up to float summation order (each
            // placement sums its own duals), hence the 1e-9 slack.
            assert!(
                p >= prev - 1e-9,
                "robust ladder must be monotone: {p} after {prev}"
            );
            assert!(!seen.contains(&pt), "each witness must be new: {pt}");
            prev = p;
            seen.push(pt);
            enc.exclude_point(&pt);
        }
        let report = enc.lint_report();
        assert!(!report.has_errors(), "{report}");
        assert!(
            !report.has_rule(hi_lint::RuleId::RedundantCut),
            "a climbing robust ladder must not repeat cuts:\n{report}"
        );
    }

    #[test]
    fn fix_and_free_site_bound_the_witness() {
        let app = AppParams::default();
        let constraints = TopologyConstraints::paper_default();
        let nominal = MilpEncoding::new(&constraints, &app)
            .solve_witness()
            .unwrap()
            .unwrap()
            .1;
        let mut enc = MilpEncoding::new(&constraints, &app);
        enc.fix_site(7, true);
        let (pt, p_in) = enc.solve_witness().unwrap().unwrap();
        assert!(pt.placement.contains_index(7), "pinned-in site selected");
        assert!(p_in > nominal, "forcing an extra site costs power");
        enc.fix_site(7, false);
        let (pt, _) = enc.solve_witness().unwrap().unwrap();
        assert!(!pt.placement.contains_index(7), "pinned-out site excluded");
        enc.free_site(7);
        let (_, p) = enc.solve_witness().unwrap().unwrap();
        assert_eq!(p.to_bits(), nominal.to_bits(), "freed model is nominal");
    }
}
