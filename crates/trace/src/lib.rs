//! `hi-trace` — zero-dependency observability for the hi-opt workspace.
//!
//! Structured tracing (typed spans, instants, counter samples), a metrics
//! registry (monotonic counters, gauges, log₂-bucket histograms) and three
//! sinks: a human summary table, a JSONL event stream and the Chrome trace
//! format (loadable in `chrome://tracing` / Perfetto). Std-only, like the
//! rest of the workspace.
//!
//! # Design constraints
//!
//! * **Free-ish when disabled.** [`Collector::disabled`] carries no
//!   allocation; every recording call checks a thread-local and returns
//!   before touching the clock or formatting anything.
//! * **Non-perturbing when enabled.** Instrumentation only observes —
//!   engine results must be bit-identical with tracing on and off (gated in
//!   ci.sh).
//! * **Deterministic output order.** Events buffer per thread and merge by
//!   `(epoch, lane)` where the lane is the *work item index* of a parallel
//!   batch, so the serialized stream has the same layout at any thread
//!   count.
//!
//! # Example
//!
//! ```
//! use hi_trace::{Collector, span, counter, wellknown};
//!
//! let collector = Collector::enabled();
//! {
//!     let _guard = collector.install(0, 0);
//!     let mut s = span("milp.solve");
//!     counter(wellknown::MILP_SOLVES, 1);
//!     s.arg("status", "optimal");
//! }
//! let events = collector.drain_events();
//! assert_eq!(events.len(), 2); // span begin + end
//! let summary = hi_trace::sink::render_metrics(
//!     &collector.registry().unwrap().snapshot());
//! assert!(summary.contains("milp.solves"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collector;
pub mod event;
pub mod json;
pub mod metrics;
pub mod sink;
pub mod wellknown;

pub use collector::{
    counter, counter_sample, gauge, histogram, instant, instant_with, now_ns, span, BatchToken,
    Collector, InstallGuard, SpanGuard,
};
pub use event::{ArgValue, Event, EventKind, LanedEvent};
pub use metrics::{Histogram, MetricKind, MetricSpec, MetricsRegistry, MetricsSnapshot};
