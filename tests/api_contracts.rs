//! API-contract tests across the workspace: thread-safety markers,
//! error-type behaviour and Display stability — the Rust API guideline
//! checks (C-SEND-SYNC, C-GOOD-ERR, C-COMMON-TRAITS) as executable tests.

use hi_opt::channel::{BodyLocation, Channel, ChannelParams, PathLossMatrix, StaticChannel};
use hi_opt::core::{DesignPoint, DesignSpace, Evaluation, Placement, Problem, SimEvaluator};
use hi_opt::des::{Engine, SimDuration, SimTime};
use hi_opt::milp::{LinExpr, Model, Solution, SolveError};
use hi_opt::net::{NetworkConfig, SimOutcome};

fn assert_send_sync<T: Send + Sync>() {}
fn assert_error<T: std::error::Error + Send + Sync + 'static>() {}

#[test]
fn core_types_are_send_sync() {
    assert_send_sync::<Model>();
    assert_send_sync::<LinExpr>();
    assert_send_sync::<Solution>();
    assert_send_sync::<Engine<u64>>();
    assert_send_sync::<SimTime>();
    assert_send_sync::<SimDuration>();
    assert_send_sync::<Channel>();
    assert_send_sync::<StaticChannel>();
    assert_send_sync::<PathLossMatrix>();
    assert_send_sync::<NetworkConfig>();
    assert_send_sync::<SimOutcome>();
    assert_send_sync::<DesignPoint>();
    assert_send_sync::<DesignSpace>();
    assert_send_sync::<Problem>();
    assert_send_sync::<SimEvaluator>();
    assert_send_sync::<Evaluation>();
}

#[test]
fn error_types_behave() {
    assert_error::<SolveError>();
    assert_error::<hi_opt::net::ConfigError>();
    assert_error::<hi_opt::ExploreError>();
    assert_error::<hi_opt::channel::csv::ParseMatrixError>();
    // Display messages: lowercase, no trailing period (C-GOOD-ERR style).
    let messages = [
        SolveError::MissingObjective.to_string(),
        hi_opt::net::ConfigError::TooFewNodes.to_string(),
        hi_opt::channel::csv::ParseMatrixError::WrongRowCount(2).to_string(),
    ];
    for m in messages {
        assert!(m.starts_with(char::is_lowercase), "{m}");
        assert!(!m.ends_with('.'), "{m}");
    }
}

#[test]
fn display_formats_are_stable() {
    // These strings appear in experiment output files; keep them stable.
    assert_eq!(BodyLocation::LeftAnkle.to_string(), "l-ankle");
    assert_eq!(SimTime::from_secs(1.25).to_string(), "1.250000000s");
    assert_eq!(Placement::from_indices([0, 9]).to_string(), "[0,9]");
    assert_eq!(hi_opt::net::TxPower::Minus10Dbm.to_string(), "-10dBm");
    assert_eq!(
        hi_opt::core::AppProfile::FitnessMonitoring.to_string(),
        "fitness-monitoring"
    );
}

#[test]
fn evaluators_are_usable_across_threads() {
    // A practical Send check: move an evaluator into a thread.
    let handle = std::thread::spawn(|| {
        let mut ev = SimEvaluator::new(ChannelParams::default(), SimDuration::from_secs(2.0), 1, 1);
        use hi_opt::Evaluator;
        let pt = DesignPoint {
            placement: Placement::from_indices([0, 1, 3, 5]),
            tx_power: hi_opt::net::TxPower::ZeroDbm,
            mac: hi_opt::core::MacChoice::Tdma,
            routing: hi_opt::core::RouteChoice::Star,
        };
        ev.evaluate(&pt).pdr
    });
    let pdr = handle.join().expect("thread");
    assert!((0.0..=1.0).contains(&pdr));
}
