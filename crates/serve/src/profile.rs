//! The fleet user-profile format and its total, typed parser.
//!
//! A profile file describes one *user* of the fleet service: how their
//! body scales the paper's link geometry, how their radio environment
//! shifts the channel matrix, what traffic their application generates,
//! which reliability floor and search engine their job runs under, and
//! (optionally) which fault suite hardens the answer. One file may hold
//! many `profile` blocks — that is a *fleet* submission, and every block
//! becomes its own job.
//!
//! ```text
//! # free-form comments anywhere
//! profile alice              # starts a block; id = rest of line
//! geometry 1.1               # body scale: all link distances ×1.1
//! channel 3.5                # uniform channel-matrix shift, dB
//! traffic 25 64              # packets/second [packet bytes]
//! pdrmin 0.9                 # reliability floor in [0, 1]
//! engine algorithm1          # algorithm1 | exhaustive | robust-milp | ilp-heuristic
//! gamma 2                    # Γ budget (robust engines only)
//! tsim 60                    # per-replication simulated seconds
//! runs 3                     # replications averaged per evaluation
//! seed 7                     # master seed
//! faults body.suite worst    # optional fault suite [worst|nominal|qNN]
//! ```
//!
//! The parser follows `hi_core::suitefile`'s contract: **total** (any
//! byte sequence yields a value or a typed error, never a panic), typed
//! errors carrying 1-based line numbers, `#` comments, CRLF tolerated,
//! trailing fields rejected. It deliberately accepts *semantically*
//! broken but well-formed profiles (PDRmin 1.5, zero traffic, duplicate
//! ids): semantics are `hi_lint::lint_profile`'s job (HL042), so the
//! daemon, the CLI linter and the tests all share one answer.
//!
//! Lowering is exact: a body-geometry scale `s` multiplies every link
//! distance, and under the log-distance model
//! `PL = pl0 + 10·n·log10(d/d0) + penalties` that factors out as
//! `10·n·log10(s)` added to `pl0_db`; a uniform channel shift adds
//! straight to `pl0_db` as well. Both therefore fold into the existing
//! [`SimProtocol`] without touching per-link code.

use std::fmt;
use std::str::SplitWhitespace;

use hi_channel::ChannelParams;
use hi_core::{Problem, RobustMode, SimProtocol};
use hi_des::SimDuration;
use hi_net::AppParams;

/// Which search engine a profile's job runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineChoice {
    /// The paper's Algorithm 1 (MILP-guided exploration).
    Algorithm1,
    /// Exhaustive sweep of the whole feasible space.
    Exhaustive,
    /// The Γ-robust MILP counterpart (robustness in the formulation).
    RobustMilp,
    /// The ILP restriction-and-repair heuristic over the robust model.
    IlpHeuristic,
}

impl EngineChoice {
    /// The keyword used in profile files and result blocks.
    pub fn label(self) -> &'static str {
        match self {
            EngineChoice::Algorithm1 => "algorithm1",
            EngineChoice::Exhaustive => "exhaustive",
            EngineChoice::RobustMilp => "robust-milp",
            EngineChoice::IlpHeuristic => "ilp-heuristic",
        }
    }

    /// Whether this engine consumes a Γ-robustness budget (`gamma`).
    pub fn is_robust(self) -> bool {
        matches!(self, EngineChoice::RobustMilp | EngineChoice::IlpHeuristic)
    }

    fn parse(s: &str) -> Result<Self, String> {
        match s {
            "algorithm1" => Ok(EngineChoice::Algorithm1),
            "exhaustive" => Ok(EngineChoice::Exhaustive),
            "robust-milp" => Ok(EngineChoice::RobustMilp),
            "ilp-heuristic" => Ok(EngineChoice::IlpHeuristic),
            other => Err(format!(
                "unknown engine `{other}` (expected `algorithm1`, `exhaustive`, \
                 `robust-milp` or `ilp-heuristic`)"
            )),
        }
    }
}

impl fmt::Display for EngineChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// An optional fault-suite reference: robustness as part of a profile.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultsRef {
    /// Path to the suite file, resolved by the daemon at run time.
    pub path: String,
    /// How scenario evaluations aggregate into one score.
    pub mode: RobustMode,
}

/// One fleet user: everything a job needs, parsed from one `profile`
/// block. See the [module docs](self) for the grammar and defaults.
#[derive(Debug, Clone, PartialEq)]
pub struct UserProfile {
    /// The user id results are routed back under (may be empty — HL042).
    pub id: String,
    /// Body-geometry scale: every link distance is multiplied by this.
    pub geometry_scale: f64,
    /// Uniform channel-matrix shift, dB (positive = lossier).
    pub channel_offset_db: f64,
    /// Application packet generation rate, packets/second.
    pub packets_per_second: f64,
    /// Application packet length, bytes.
    pub packet_len_bytes: usize,
    /// Reliability floor `PDRmin`.
    pub pdr_min: f64,
    /// Which search engine runs the job.
    pub engine: EngineChoice,
    /// The Γ-robustness budget. Only legal with a robust engine
    /// (`robust-milp` / `ilp-heuristic`); the parser rejects it
    /// elsewhere. `None` on a robust engine means the engine default
    /// (Γ = 1).
    pub gamma: Option<u32>,
    /// Per-replication simulated duration, seconds.
    pub t_sim_secs: f64,
    /// Replications averaged per evaluation.
    pub runs: u32,
    /// Master seed.
    pub seed: u64,
    /// Optional fault suite the exploration is hardened against.
    pub faults: Option<FaultsRef>,
}

impl UserProfile {
    /// The defaults a bare `profile <id>` block gets: the paper's §4.1
    /// traffic and channel at scale 1, a 0.9 floor, Algorithm 1, and the
    /// CLI's demo protocol (60 s, 3 runs, seed `0xDAC2017`).
    pub fn named(id: impl Into<String>) -> Self {
        Self {
            id: id.into(),
            geometry_scale: 1.0,
            channel_offset_db: 0.0,
            packets_per_second: 10.0,
            packet_len_bytes: 100,
            pdr_min: 0.9,
            engine: EngineChoice::Algorithm1,
            gamma: None,
            t_sim_secs: 60.0,
            runs: 3,
            seed: 0xDAC_2017,
            faults: None,
        }
    }

    /// The simulation protocol this profile lowers to (geometry and
    /// channel shift folded into `pl0_db`, traffic into `AppParams`).
    /// The daemon layers its own `--max-events` deadline on top.
    pub fn protocol(&self) -> SimProtocol {
        let mut channel = ChannelParams::default();
        channel.path_loss.pl0_db += 10.0 * channel.path_loss.exponent * self.geometry_scale.log10()
            + self.channel_offset_db;
        let mut protocol = SimProtocol::new(
            SimDuration::from_secs(self.t_sim_secs),
            self.runs,
            self.seed,
        )
        .with_app(AppParams {
            packet_len_bytes: self.packet_len_bytes,
            packets_per_second: self.packets_per_second,
            ..AppParams::default()
        });
        protocol.channel = channel;
        protocol
    }

    /// The optimization problem this profile poses (paper design space,
    /// the profile's floor and traffic).
    pub fn problem(&self) -> Problem {
        Problem {
            space: hi_core::DesignSpace::paper_default(),
            pdr_min: self.pdr_min,
            app: self.protocol().app,
        }
    }

    /// The *evaluation* fingerprint: a hash over exactly the fields that
    /// determine simulation results — the lowered channel, the protocol
    /// (duration, replications, seed), the traffic, and the fault suite's
    /// *content* and aggregation mode. Deliberately excluded: the profile
    /// id, `pdr_min`, `engine` and `gamma`, which steer the *search* but
    /// not any per-point evaluation — so two users who differ only there
    /// share every simulation through the fleet cache.
    pub fn eval_fingerprint(&self, suite_text: Option<&str>) -> u64 {
        let protocol = self.protocol();
        let mut h = Fnv::new();
        h.f64(protocol.channel.path_loss.pl0_db);
        h.f64(protocol.channel.path_loss.ref_distance_m);
        h.f64(protocol.channel.path_loss.exponent);
        h.f64(protocol.channel.path_loss.nlos_penalty_db);
        h.f64(protocol.channel.path_loss.limb_penalty_db);
        h.f64(self.t_sim_secs);
        h.u64(self.runs as u64);
        h.u64(self.seed);
        h.f64(protocol.app.baseline_power_w);
        h.u64(protocol.app.packet_len_bytes as u64);
        h.f64(protocol.app.packets_per_second);
        match suite_text {
            None => h.u64(0),
            Some(text) => {
                h.u64(1);
                h.bytes(text.as_bytes());
                match self.faults.as_ref().map(|f| f.mode) {
                    Some(RobustMode::Nominal) | None => h.u64(0),
                    Some(RobustMode::WorstCase) => h.u64(1),
                    Some(RobustMode::Quantile(q)) => {
                        h.u64(2);
                        h.f64(q);
                    }
                }
            }
        }
        h.finish()
    }

    /// Lowers this profile for `hi_lint::lint_profile` (HL042).
    pub fn lint_spec(&self) -> hi_lint::ProfileSpec {
        hi_lint::ProfileSpec {
            id: self.id.clone(),
            packets_per_second: self.packets_per_second,
            pdr_min: self.pdr_min,
            geometry_scale: self.geometry_scale,
            runs: self.runs,
        }
    }

    /// The canonical text of this profile: parsing it back yields an
    /// equal `UserProfile` (floats print in Rust's shortest-roundtrip
    /// form). This is what job records persist.
    pub fn to_text(&self) -> String {
        let mut out = format!("profile {}\n", self.id);
        out.push_str(&format!("geometry {}\n", self.geometry_scale));
        out.push_str(&format!("channel {}\n", self.channel_offset_db));
        out.push_str(&format!(
            "traffic {} {}\n",
            self.packets_per_second, self.packet_len_bytes
        ));
        out.push_str(&format!("pdrmin {}\n", self.pdr_min));
        out.push_str(&format!("engine {}\n", self.engine));
        if let Some(gamma) = self.gamma {
            out.push_str(&format!("gamma {gamma}\n"));
        }
        out.push_str(&format!("tsim {}\n", self.t_sim_secs));
        out.push_str(&format!("runs {}\n", self.runs));
        out.push_str(&format!("seed {}\n", self.seed));
        if let Some(faults) = &self.faults {
            let mode = match faults.mode {
                RobustMode::Nominal => "nominal".to_string(),
                RobustMode::WorstCase => "worst".to_string(),
                RobustMode::Quantile(q) => format!("q{}", q * 100.0),
            };
            out.push_str(&format!("faults {} {}\n", faults.path, mode));
        }
        out
    }
}

/// Lints a parsed fleet (HL042 over every profile in submission order).
pub fn lint_profiles(profiles: &[UserProfile]) -> hi_lint::Report {
    let specs: Vec<hi_lint::ProfileSpec> = profiles.iter().map(UserProfile::lint_spec).collect();
    hi_lint::lint_profile(&specs)
}

/// A demo fleet: three users sharing one evaluation protocol (so the
/// fleet cache dedups their simulations) plus one user with genuinely
/// different physics. Used by docs, `hi-opt lint` and the bench.
pub const DEMO_FLEET: &str = "\
# Three office workers with identical radios and bodies: their jobs
# share every simulation through the fleet cache.
profile alice
pdrmin 0.9

profile bob
pdrmin 0.85

profile carol
pdrmin 0.9
engine exhaustive

# A taller user with a lossier environment and chattier sensors:
# different physics, so a separate evaluation stream.
profile dave
geometry 1.15
channel 2.0
traffic 25 64
pdrmin 0.9
";

/// Why a profile file failed to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProfileParseError {
    /// A malformed line, by 1-based line number.
    Line {
        /// 1-based line number in the input text.
        line: usize,
        /// What was wrong.
        message: String,
    },
    /// The file contains no `profile` block at all.
    NoProfile,
}

impl fmt::Display for ProfileParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProfileParseError::Line { line, message } => {
                write!(f, "profile file line {line}: {message}")
            }
            ProfileParseError::NoProfile => {
                write!(f, "profile file declares no `profile` block")
            }
        }
    }
}

impl std::error::Error for ProfileParseError {}

fn field<'a>(fields: &mut SplitWhitespace<'a>, what: &str) -> Result<&'a str, String> {
    fields.next().ok_or_else(|| format!("missing {what}"))
}

fn finite_field(fields: &mut SplitWhitespace<'_>, what: &str) -> Result<f64, String> {
    let raw = field(fields, what)?;
    let value: f64 = raw
        .parse()
        .map_err(|_| format!("bad {what} `{raw}` (expected a number)"))?;
    if !value.is_finite() {
        return Err(format!("bad {what} `{raw}` (must be finite)"));
    }
    Ok(value)
}

fn no_trailing(fields: &mut SplitWhitespace<'_>) -> Result<(), String> {
    if let Some(extra) = fields.next() {
        return Err(format!("unexpected trailing field `{extra}`"));
    }
    Ok(())
}

/// Parses a profile file (one or more `profile` blocks) into the fleet
/// it describes. Total: any input yields profiles or a typed
/// [`ProfileParseError`] with a 1-based line number — never a panic.
pub fn parse_profiles(text: &str) -> Result<Vec<UserProfile>, ProfileParseError> {
    let mut profiles: Vec<UserProfile> = Vec::new();
    // `gamma` may legally precede the block's `engine` line, so the
    // gamma-requires-a-robust-engine check runs after the whole file is
    // read; this records where to point the error.
    let mut gamma_lines: Vec<usize> = Vec::new();
    for (index, raw) in text.lines().enumerate() {
        let err = |message: String| ProfileParseError::Line {
            line: index + 1,
            message,
        };
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut fields = line.split_whitespace();
        let keyword = fields.next().expect("non-empty line has a first field");
        if keyword == "profile" {
            // The id is the rest of the line (ids with spaces are legal;
            // an *empty* id is representable and HL042's problem).
            let id = line["profile".len()..].trim().to_string();
            profiles.push(UserProfile::named(id));
            gamma_lines.push(0);
            continue;
        }
        let current = profiles
            .last_mut()
            .ok_or_else(|| err(format!("`{keyword}` before any `profile` line")))?;
        match keyword {
            "geometry" => {
                current.geometry_scale =
                    finite_field(&mut fields, "geometry scale").map_err(&err)?;
            }
            "channel" => {
                current.channel_offset_db =
                    finite_field(&mut fields, "channel offset (dB)").map_err(&err)?;
            }
            "traffic" => {
                current.packets_per_second =
                    finite_field(&mut fields, "traffic rate (packets/s)").map_err(&err)?;
                if let Some(raw) = fields.next() {
                    let bytes: usize = raw.parse().map_err(|_| {
                        err(format!("bad packet length `{raw}` (expected an integer)"))
                    })?;
                    if bytes == 0 {
                        return Err(err("packet length must be at least 1 byte".into()));
                    }
                    current.packet_len_bytes = bytes;
                }
            }
            "pdrmin" => {
                current.pdr_min = finite_field(&mut fields, "PDRmin").map_err(&err)?;
            }
            "engine" => {
                let raw = field(&mut fields, "engine name").map_err(&err)?;
                current.engine = EngineChoice::parse(raw).map_err(&err)?;
            }
            "gamma" => {
                let raw = field(&mut fields, "gamma budget").map_err(&err)?;
                let gamma: u32 = raw.parse().map_err(|_| {
                    err(format!(
                        "bad gamma budget `{raw}` (expected a non-negative integer)"
                    ))
                })?;
                current.gamma = Some(gamma);
                *gamma_lines.last_mut().expect("current profile exists") = index + 1;
            }
            "tsim" => {
                let secs = finite_field(&mut fields, "simulated duration (s)").map_err(&err)?;
                if secs <= 0.0 {
                    return Err(err(format!(
                        "bad simulated duration `{secs}` (must be positive)"
                    )));
                }
                current.t_sim_secs = secs;
            }
            "runs" => {
                let raw = field(&mut fields, "replication count").map_err(&err)?;
                current.runs = raw.parse().map_err(|_| {
                    err(format!(
                        "bad replication count `{raw}` (expected an integer)"
                    ))
                })?;
            }
            "seed" => {
                let raw = field(&mut fields, "seed").map_err(&err)?;
                current.seed = raw
                    .parse()
                    .map_err(|_| err(format!("bad seed `{raw}` (expected an integer)")))?;
            }
            "faults" => {
                let path = field(&mut fields, "fault-suite path")
                    .map_err(&err)?
                    .to_string();
                let mode = match fields.next() {
                    None | Some("worst") => RobustMode::WorstCase,
                    Some("nominal") => RobustMode::Nominal,
                    Some(m) => {
                        // `qNN` is a percentile, matching the CLI's
                        // `--robust q25` convention.
                        let pct: f64 = m
                            .strip_prefix('q')
                            .and_then(|q| q.parse().ok())
                            .filter(|q: &f64| q.is_finite() && (0.0..=100.0).contains(q))
                            .ok_or_else(|| {
                                err(format!(
                                    "bad robust mode `{m}` (expected `worst`, `nominal` \
                                     or `qNN` with a percentile in [0, 100], e.g. q25)"
                                ))
                            })?;
                        RobustMode::Quantile(pct / 100.0)
                    }
                };
                current.faults = Some(FaultsRef { path, mode });
            }
            other => {
                return Err(err(format!("unknown keyword `{other}`")));
            }
        }
        no_trailing(&mut fields).map_err(&err)?;
    }
    if profiles.is_empty() {
        return Err(ProfileParseError::NoProfile);
    }
    for (profile, &line) in profiles.iter().zip(&gamma_lines) {
        if profile.gamma.is_some() && !profile.engine.is_robust() {
            return Err(ProfileParseError::Line {
                line,
                message: format!(
                    "`gamma` requires a robust engine (`robust-milp` or \
                     `ilp-heuristic`), but the profile uses `{}`",
                    profile.engine
                ),
            });
        }
    }
    Ok(profiles)
}

/// FNV-1a, 64-bit: tiny, dependency-free, and stable across platforms —
/// exactly what a persistent dedup key needs.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_fleet_parses_and_lints_clean() {
        let fleet = parse_profiles(DEMO_FLEET).unwrap();
        assert_eq!(fleet.len(), 4);
        assert_eq!(fleet[0].id, "alice");
        assert_eq!(fleet[1].pdr_min, 0.85);
        assert_eq!(fleet[2].engine, EngineChoice::Exhaustive);
        assert_eq!(fleet[3].packets_per_second, 25.0);
        assert_eq!(fleet[3].packet_len_bytes, 64);
        assert!(lint_profiles(&fleet).is_clean());
    }

    #[test]
    fn canonical_text_roundtrips() {
        let fleet = parse_profiles(DEMO_FLEET).unwrap();
        for profile in &fleet {
            let reparsed = parse_profiles(&profile.to_text()).unwrap();
            assert_eq!(reparsed, vec![profile.clone()], "{}", profile.to_text());
        }
        let mut robust = UserProfile::named("eve");
        robust.faults = Some(FaultsRef {
            path: "scenarios/demo.suite".into(),
            mode: RobustMode::Quantile(0.25),
        });
        let reparsed = parse_profiles(&robust.to_text()).unwrap();
        assert_eq!(reparsed, vec![robust]);
        // A Γ-robust profile round-trips through its `gamma` line too.
        let mut gamma = UserProfile::named("frank");
        gamma.engine = EngineChoice::RobustMilp;
        gamma.gamma = Some(3);
        gamma.faults = Some(FaultsRef {
            path: "scenarios/demo.suite".into(),
            mode: RobustMode::WorstCase,
        });
        assert!(gamma.to_text().contains("gamma 3\n"), "{}", gamma.to_text());
        let reparsed = parse_profiles(&gamma.to_text()).unwrap();
        assert_eq!(reparsed, vec![gamma]);
    }

    #[test]
    fn robust_engines_parse_and_carry_gamma() {
        let fleet = parse_profiles(
            "profile a\nengine robust-milp\ngamma 2\n\
             profile b\nengine ilp-heuristic\n",
        )
        .unwrap();
        assert_eq!(fleet[0].engine, EngineChoice::RobustMilp);
        assert_eq!(fleet[0].gamma, Some(2));
        assert_eq!(fleet[1].engine, EngineChoice::IlpHeuristic);
        assert_eq!(fleet[1].gamma, None, "gamma defaults to the engine's");
        assert!(EngineChoice::RobustMilp.is_robust());
        assert!(!EngineChoice::Exhaustive.is_robust());
    }

    #[test]
    fn gamma_without_a_robust_engine_is_rejected() {
        // ...even when `gamma` precedes the `engine` line, and the error
        // points at the `gamma` line.
        let err = parse_profiles("profile a\ngamma 2\nengine algorithm1\n").unwrap_err();
        assert_eq!(
            err,
            ProfileParseError::Line {
                line: 2,
                message: "`gamma` requires a robust engine (`robust-milp` or \
                          `ilp-heuristic`), but the profile uses `algorithm1`"
                    .into()
            }
        );
        let err = parse_profiles("profile a\nengine exhaustive\ngamma 1\n").unwrap_err();
        assert!(
            matches!(err, ProfileParseError::Line { line: 3, .. }),
            "{err}"
        );
        // The default engine is algorithm1, so a bare gamma bounces too.
        assert!(parse_profiles("profile a\ngamma 1\n").is_err());
        assert!(parse_profiles("profile a\nengine robust-milp\ngamma -1\n").is_err());
        assert!(parse_profiles("profile a\nengine robust-milp\ngamma two\n").is_err());
    }

    #[test]
    fn geometry_folds_exactly_into_pl0() {
        let unit = UserProfile::named("u");
        let mut scaled = UserProfile::named("s");
        scaled.geometry_scale = 2.0;
        scaled.channel_offset_db = 3.0;
        let base = unit.protocol().channel.path_loss;
        let got = scaled.protocol().channel.path_loss;
        assert_eq!(
            got.pl0_db,
            base.pl0_db + 10.0 * base.exponent * 2f64.log10() + 3.0
        );
        assert_eq!(got.exponent, base.exponent);
    }

    #[test]
    fn fingerprint_ignores_search_knobs_but_not_physics() {
        let base = UserProfile::named("a");
        let mut floor = UserProfile::named("b");
        floor.pdr_min = 0.5;
        floor.engine = EngineChoice::Exhaustive;
        assert_eq!(
            base.eval_fingerprint(None),
            floor.eval_fingerprint(None),
            "id/floor/engine must not split the cache"
        );
        let mut robust = UserProfile::named("c");
        robust.engine = EngineChoice::RobustMilp;
        robust.gamma = Some(3);
        assert_eq!(
            base.eval_fingerprint(None),
            robust.eval_fingerprint(None),
            "gamma steers the search, not the simulations"
        );
        let mut tall = base.clone();
        tall.geometry_scale = 1.2;
        assert_ne!(base.eval_fingerprint(None), tall.eval_fingerprint(None));
        let mut chatty = base.clone();
        chatty.packets_per_second = 50.0;
        assert_ne!(base.eval_fingerprint(None), chatty.eval_fingerprint(None));
        assert_ne!(
            base.eval_fingerprint(None),
            base.eval_fingerprint(Some("scenario s\n")),
            "a fault suite changes what is simulated"
        );
    }

    #[test]
    fn typed_errors_carry_one_based_lines() {
        let err = parse_profiles("profile a\ngeometry fast\n").unwrap_err();
        assert_eq!(
            err,
            ProfileParseError::Line {
                line: 2,
                message: "bad geometry scale `fast` (expected a number)".into()
            }
        );
        let err = parse_profiles("geometry 1\n").unwrap_err();
        assert!(
            matches!(err, ProfileParseError::Line { line: 1, .. }),
            "{err}"
        );
        assert_eq!(
            parse_profiles("# only comments\n"),
            Err(ProfileParseError::NoProfile)
        );
        assert_eq!(parse_profiles(""), Err(ProfileParseError::NoProfile));
    }

    #[test]
    fn trailing_fields_and_unknown_keywords_are_rejected() {
        assert!(parse_profiles("profile a\npdrmin 0.9 0.8\n").is_err());
        assert!(parse_profiles("profile a\nbandwidth 9000\n").is_err());
        assert!(parse_profiles("profile a\ntsim 0\n").is_err());
        assert!(parse_profiles("profile a\ntraffic 10 0\n").is_err());
        assert!(parse_profiles("profile a\nfaults s.suite q101\n").is_err());
        assert!(parse_profiles("profile a\nfaults s.suite sometimes\n").is_err());
        assert!(parse_profiles("profile a\ngeometry inf\n").is_err());
    }

    #[test]
    fn crlf_and_comments_are_tolerated() {
        let fleet = parse_profiles("profile a # the id\r\npdrmin 0.8\r\n").unwrap();
        assert_eq!(fleet[0].id, "a");
        assert_eq!(fleet[0].pdr_min, 0.8);
    }

    #[test]
    fn empty_id_is_representable_for_hl042() {
        let fleet = parse_profiles("profile\n").unwrap();
        assert_eq!(fleet[0].id, "");
        let report = lint_profiles(&fleet);
        assert!(report.has_rule(hi_lint::RuleId::ProfileInvalid));
    }
}
