//! Checker verdicts: violations, replayable schedules, lock usage.

use std::fmt;

/// What kind of concurrency bug the checker found.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum ViolationKind {
    /// Two accesses to one [`Data`](crate::sync::Data) cell, at least one
    /// a write, with no happens-before edge between them. The classic
    /// cause in this workspace is a too-weak `Ordering` on the atomic
    /// that was meant to publish the data (`Relaxed` creates no edge).
    DataRace,
    /// Every unfinished thread is blocked on a mutex or a join — no
    /// schedule can make progress.
    Deadlock,
    /// Progress requires waking a condvar waiter, but no runnable thread
    /// remains to notify it: the wakeup was lost (missed `notify_all`, or
    /// a notify that raced ahead of the park). A spurious wakeup *could*
    /// rescue such a state, but `std` does not guarantee spurious
    /// wakeups, so depending on one is a bug.
    LostWakeup,
    /// Two locks are acquired in opposite nesting orders somewhere in the
    /// program — a deadlock waiting for the right interleaving.
    LockOrderInversion,
    /// A thread finished while still holding a lock.
    LockLeak,
    /// A thread attempted to re-acquire a lock it already holds
    /// (self-deadlock on `std::sync::Mutex`).
    RecursiveLock,
    /// A model thread panicked (assertion failure or explicit panic).
    Panic,
    /// One execution exceeded the per-execution step budget — a livelock
    /// or an unbounded loop in the model.
    StepBudget,
    /// A replayed schedule diverged from the model's behavior: the model
    /// is not deterministic under a fixed schedule.
    ReplayDivergence,
}

impl fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ViolationKind::DataRace => "data race",
            ViolationKind::Deadlock => "deadlock",
            ViolationKind::LostWakeup => "lost wakeup",
            ViolationKind::LockOrderInversion => "lock-order inversion",
            ViolationKind::LockLeak => "lock leaked at thread exit",
            ViolationKind::RecursiveLock => "recursive lock acquisition",
            ViolationKind::Panic => "panic in model thread",
            ViolationKind::StepBudget => "step budget exceeded",
            ViolationKind::ReplayDivergence => "schedule replay diverged",
        })
    }
}

/// One concurrency bug, with the schedule that reproduces it.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The bug class.
    pub kind: ViolationKind,
    /// The scheduling decisions (chosen thread ids, `,`-separated) that
    /// lead to the bug. Feed it to [`crate::replay`] to reproduce the
    /// exact execution deterministically.
    pub schedule: String,
    /// Human-readable description naming the threads and objects involved.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} [replay: {}]",
            self.kind, self.message, self.schedule
        )
    }
}

/// Acquire/release accounting for one lock across one execution.
///
/// `hi-opt lint` lowers these into [`hi-lint`] `ModelLockSpec`s for rule
/// HL041 (a model program that never releases an acquired lock).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockUsage {
    /// The lock's name (`Mutex::named`) or `lock#<uid>`.
    pub name: String,
    /// Successful acquisitions.
    pub acquires: u64,
    /// Releases (guard drops and condvar parks).
    pub releases: u64,
}

/// The verdict of one [`crate::explore`] call.
#[derive(Debug, Clone)]
pub struct CheckReport {
    /// Executions (distinct interleavings) actually run.
    pub executions: u64,
    /// True when the bounded-preemption schedule space was exhausted;
    /// false when [`crate::Config::max_executions`] stopped exploration
    /// early.
    pub complete: bool,
    /// The first violation found, if any. Exploration stops at the first
    /// violation so the schedule stays short and replayable.
    pub violation: Option<Violation>,
    /// Lock usage observed in the last execution (sorted by name).
    pub locks: Vec<LockUsage>,
}

impl CheckReport {
    /// True when no violation was found.
    pub fn is_clean(&self) -> bool {
        self.violation.is_none()
    }

    /// The violation, panicking (with the full report) if the run was
    /// clean. Convenience for mutant self-tests.
    pub fn expect_violation(&self, context: &str) -> &Violation {
        match &self.violation {
            Some(v) => v,
            None => panic!(
                "{context}: expected a violation but {} execution(s) were clean (complete: {})",
                self.executions, self.complete
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_schedule() {
        let v = Violation {
            kind: ViolationKind::LostWakeup,
            schedule: "0,1,1,0".into(),
            message: "thread t1 parked on condvar cv#0".into(),
        };
        let text = v.to_string();
        assert!(text.contains("lost wakeup"));
        assert!(text.contains("0,1,1,0"));
    }
}
