//! The coarse analytic power model (paper eqs. 3, 5 and 9) and the
//! α optimality-gap correction of Algorithm 1.

use hi_net::{AppParams, RadioParams, TxPower};

use crate::point::{DesignPoint, RouteChoice};

/// `NreTx` — the maximum number of transmissions of one packet in a
/// two-hop flooding mesh of `n` nodes (paper §4.1: `N² − 4N + 5`).
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn nretx_two_hop(n: usize) -> f64 {
    assert!(n >= 2, "mesh needs at least two nodes");
    (n * n) as f64 - 4.0 * n as f64 + 5.0
}

/// The paper's analytic radio power `Prd` in mW (eq. 5) for a
/// non-coordinator node.
///
/// * Star (`Prt = 0`): `φ·Tpkt·(TxmW + 2(N−1)·RxmW)` — per round a node
///   transmits once and hears both the originals and the coordinator's
///   relayed copies.
/// * Mesh (`Prt = 1`): `φ·Tpkt·NreTx·(TxmW + (N−1)·RxmW)`.
pub fn radio_power_mw(n: usize, tx_power: TxPower, routing: RouteChoice, app: &AppParams) -> f64 {
    let radio = RadioParams::cc2650(tx_power);
    let tpkt = 8.0 * app.packet_len_bytes as f64 / radio.bit_rate_bps;
    let phi = app.packets_per_second;
    let tx_mw = tx_power.consumption_mw();
    let rx_mw = radio.rx_consumption_mw;
    match routing {
        RouteChoice::Star => phi * tpkt * (tx_mw + 2.0 * (n as f64 - 1.0) * rx_mw),
        RouteChoice::Mesh => phi * tpkt * nretx_two_hop(n) * (tx_mw + (n as f64 - 1.0) * rx_mw),
    }
}

/// The analytic total node power `P̄` in mW (eq. 9): baseline plus radio.
pub fn analytic_power_mw(point: &DesignPoint, app: &AppParams) -> f64 {
    app.baseline_power_w * 1e3
        + radio_power_mw(point.num_nodes(), point.tx_power, point.routing, app)
}

/// The α correction of Algorithm 1's termination test.
///
/// `P̄` assumes every packet is received and every retransmission happens;
/// a network that only achieves `PDRmin` may burn as little as
/// `P̄lb = Pbl + Tx-side + PDRmin · Rx-side`. The returned
/// `α = P̄ / P̄lb ≥ 1` therefore bounds how far the simulated power of a
/// candidate can fall below its analytic estimate, so
/// `P̄*/α > P̄min` proves no unexplored candidate can beat the incumbent.
///
/// # Panics
///
/// Panics if `pdr_min` is outside `[0, 1]`.
pub fn alpha(point: &DesignPoint, pdr_min: f64, app: &AppParams) -> f64 {
    assert!(
        (0.0..=1.0).contains(&pdr_min),
        "pdr_min must be within [0, 1], got {pdr_min}"
    );
    let radio = RadioParams::cc2650(point.tx_power);
    let tpkt = 8.0 * app.packet_len_bytes as f64 / radio.bit_rate_bps;
    let phi = app.packets_per_second;
    let n = point.num_nodes() as f64;
    let tx_mw = point.tx_power.consumption_mw();
    let rx_mw = radio.rx_consumption_mw;
    let (tx_side, rx_side) = match point.routing {
        RouteChoice::Star => (phi * tpkt * tx_mw, phi * tpkt * 2.0 * (n - 1.0) * rx_mw),
        RouteChoice::Mesh => {
            let re = nretx_two_hop(point.num_nodes());
            (
                // In a lossy mesh even the relaying transmissions dry up,
                // but a node always sends its own originals.
                phi * tpkt * (1.0 + (re - 1.0) * pdr_min) * tx_mw,
                phi * tpkt * re * (n - 1.0) * rx_mw * pdr_min,
            )
        }
    };
    let baseline = app.baseline_power_w * 1e3;
    let p_bar = analytic_power_mw(point, app);
    let p_lb = baseline
        + match point.routing {
            RouteChoice::Star => tx_side + pdr_min * rx_side,
            RouteChoice::Mesh => tx_side + rx_side,
        };
    p_bar / p_lb
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::{MacChoice, Placement};

    fn point(n: usize, tx: TxPower, routing: RouteChoice) -> DesignPoint {
        // Any placement with n nodes will do for the analytic model.
        DesignPoint {
            placement: Placement::from_indices(0..n),
            tx_power: tx,
            mac: MacChoice::Tdma,
            routing,
        }
    }

    #[test]
    fn nretx_matches_paper_examples() {
        assert_eq!(nretx_two_hop(4), 5.0);
        assert_eq!(nretx_two_hop(5), 10.0);
        assert_eq!(nretx_two_hop(6), 17.0);
    }

    #[test]
    fn star_power_hand_computed() {
        // N=4, 0 dBm: Prd = 10 * 781.25e-6 * (18.3 + 6*17.7) mW.
        let app = AppParams::default();
        let p = radio_power_mw(4, TxPower::ZeroDbm, RouteChoice::Star, &app);
        let expected = 10.0 * (800.0 / 1_024_000.0) * (18.3 + 6.0 * 17.7);
        assert!((p - expected).abs() < 1e-12);
        // ~0.97 mW: matches the order of magnitude behind Fig. 3's ~26 d.
        assert!(p > 0.9 && p < 1.05);
    }

    #[test]
    fn mesh_power_uses_nretx() {
        let app = AppParams::default();
        let p = radio_power_mw(5, TxPower::ZeroDbm, RouteChoice::Mesh, &app);
        let expected = 10.0 * (800.0 / 1_024_000.0) * 10.0 * (18.3 + 4.0 * 17.7);
        assert!((p - expected).abs() < 1e-12);
    }

    #[test]
    fn analytic_power_adds_baseline() {
        let app = AppParams::default();
        let pt = point(4, TxPower::ZeroDbm, RouteChoice::Star);
        let total = analytic_power_mw(&pt, &app);
        let radio = radio_power_mw(4, TxPower::ZeroDbm, RouteChoice::Star, &app);
        assert!((total - (0.1 + radio)).abs() < 1e-12);
    }

    #[test]
    fn power_orderings_that_drive_the_search() {
        let app = AppParams::default();
        // More Tx power costs more.
        assert!(
            analytic_power_mw(&point(4, TxPower::Minus20Dbm, RouteChoice::Star), &app)
                < analytic_power_mw(&point(4, TxPower::Minus10Dbm, RouteChoice::Star), &app)
        );
        // More nodes cost more.
        assert!(
            analytic_power_mw(&point(4, TxPower::ZeroDbm, RouteChoice::Star), &app)
                < analytic_power_mw(&point(5, TxPower::ZeroDbm, RouteChoice::Star), &app)
        );
        // Mesh costs more than star at the same size/power.
        assert!(
            analytic_power_mw(&point(5, TxPower::ZeroDbm, RouteChoice::Star), &app)
                < analytic_power_mw(&point(5, TxPower::ZeroDbm, RouteChoice::Mesh), &app)
        );
        // A 0 dBm star is cheaper than ANY -20 dBm mesh of the same size:
        // this is why the ladder visits all star powers first.
        assert!(
            analytic_power_mw(&point(4, TxPower::ZeroDbm, RouteChoice::Star), &app)
                < analytic_power_mw(&point(4, TxPower::Minus20Dbm, RouteChoice::Mesh), &app)
        );
    }

    #[test]
    fn alpha_at_full_reliability_is_one() {
        let app = AppParams::default();
        for routing in [RouteChoice::Star, RouteChoice::Mesh] {
            let pt = point(5, TxPower::ZeroDbm, routing);
            let a = alpha(&pt, 1.0, &app);
            assert!((a - 1.0).abs() < 1e-12, "alpha(1.0) = {a}");
        }
    }

    #[test]
    fn alpha_grows_as_reliability_relaxes() {
        let app = AppParams::default();
        let pt = point(5, TxPower::ZeroDbm, RouteChoice::Star);
        let a90 = alpha(&pt, 0.9, &app);
        let a50 = alpha(&pt, 0.5, &app);
        assert!(a90 > 1.0);
        assert!(a50 > a90);
    }

    #[test]
    #[should_panic(expected = "within [0, 1]")]
    fn alpha_validates_pdr() {
        let app = AppParams::default();
        alpha(&point(4, TxPower::ZeroDbm, RouteChoice::Star), 1.5, &app);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn nretx_rejects_tiny_networks() {
        nretx_two_hop(1);
    }
}
