//! Ablation studies for the design choices called out in DESIGN.md §6:
//!
//! 1. **Flooding duplicate suppression** — per-node dedup (default) vs
//!    the paper-literal history-only mode (`NreTx → N²−4N+5` redundancy):
//!    redundancy buys marginal PDR at a steep lifetime cost.
//! 2. **α-correction** — Algorithm 1 with and without the α divisor in
//!    the termination test: the naive bound can stop a level early and
//!    return a worse (false) optimum.
//! 3. **MAC protocols** — CSMA vs TDMA at identical placement/power:
//!    identical analytic power, different simulated reliability.
//!
//! ```sh
//! cargo run --release -p hi-bench --bin ablation
//! ```

use hi_bench::ExpOptions;
use hi_channel::{BodyLocation, ChannelParams};
use hi_core::{explore_with_options, ExploreOptions, Problem};
use hi_net::{simulate_averaged, FloodMode, MacKind, NetworkConfig, Routing, TxPower};

fn main() {
    let opts = ExpOptions::from_args();
    flooding_modes(&opts);
    alpha_correction(&opts);
    mac_choice(&opts);
}

fn flooding_modes(opts: &ExpOptions) {
    println!("# Ablation 1: flooding duplicate suppression (5-node mesh, 0 dBm, TDMA)");
    println!("mode\tpdr_pct\tnlt_days\ttransmissions\tworst_mw");
    let placements = vec![
        BodyLocation::Chest,
        BodyLocation::LeftHip,
        BodyLocation::LeftAnkle,
        BodyLocation::LeftWrist,
        BodyLocation::LeftUpperArm,
    ];
    for (label, mode) in [
        ("dedup-per-node", FloodMode::DedupPerNode),
        ("history-only", FloodMode::HistoryOnly),
    ] {
        let mut cfg = NetworkConfig::new(
            placements.clone(),
            TxPower::ZeroDbm,
            MacKind::tdma(),
            Routing::Mesh {
                max_hops: 2,
                flood_mode: mode,
            },
        );
        cfg.mac_buffer = 64; // history-only floods need queue headroom
        let out = simulate_averaged(
            &cfg,
            ChannelParams::default(),
            opts.t_sim,
            opts.seed,
            opts.runs,
        )
        .expect("valid config");
        println!(
            "{label}\t{:.2}\t{:.2}\t{}\t{:.3}",
            out.pdr_percent(),
            out.nlt_days,
            out.counts.transmissions,
            out.max_power_mw
        );
    }
    println!();
}

fn alpha_correction(opts: &ExpOptions) {
    println!("# Ablation 2: Algorithm 1 termination with/without the alpha correction");
    println!("pdr_min_pct\talpha\tbest_power_mw\tsims\tnote");
    for pdr_min in [0.60, 0.80, 0.95] {
        let problem = Problem::paper_default(pdr_min);
        let mut with_power = None;
        for (label, alpha) in [("on", true), ("off", false)] {
            let mut ev = opts.evaluator();
            let out = explore_with_options(
                &problem,
                &mut ev,
                ExploreOptions {
                    alpha_correction: alpha,
                    ..ExploreOptions::default()
                },
            )
            .expect("explore");
            let power = out.best.as_ref().map(|(_, e)| e.power_mw);
            let note = match (alpha, with_power, power) {
                (true, _, _) => {
                    with_power = power;
                    "reference (paper)".to_owned()
                }
                (false, Some(a), Some(b)) if b > a + 1e-9 => {
                    format!("FALSE OPTIMUM (+{:.1}% power)", (b / a - 1.0) * 100.0)
                }
                (false, Some(_), Some(_)) => "same optimum (bound inactive here)".to_owned(),
                _ => "infeasible".to_owned(),
            };
            println!(
                "{:.0}\t{}\t{}\t{}\t{}",
                pdr_min * 100.0,
                label,
                power.map_or("-".into(), |p| format!("{p:.3}")),
                out.simulations,
                note
            );
        }
    }
    println!();
}

fn mac_choice(opts: &ExpOptions) {
    println!("# Ablation 3: MAC protocol at fixed placement/power (4-node star + mesh)");
    println!("routing\tmac\tpdr_pct\tnlt_days\tcollisions");
    let placements = vec![
        BodyLocation::Chest,
        BodyLocation::LeftHip,
        BodyLocation::LeftAnkle,
        BodyLocation::LeftWrist,
    ];
    for routing in [Routing::Star { coordinator: 0 }, Routing::mesh()] {
        for mac in [MacKind::csma(), MacKind::tdma()] {
            let cfg = NetworkConfig::new(placements.clone(), TxPower::ZeroDbm, mac, routing);
            let out = simulate_averaged(
                &cfg,
                ChannelParams::default(),
                opts.t_sim,
                opts.seed,
                opts.runs,
            )
            .expect("valid config");
            println!(
                "{}\t{}\t{:.2}\t{:.2}\t{}",
                routing.label(),
                mac.label(),
                out.pdr_percent(),
                out.nlt_days,
                out.counts.collisions
            );
        }
    }
}
