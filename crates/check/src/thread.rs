//! Shadow threads: model-thread spawning and joining under the checker.

use std::sync::Arc;

use crate::runtime::{self, cur, Abort};

/// Handle to a spawned model thread; joining is a schedule point and a
/// happens-before edge (the joiner adopts everything the child did).
#[derive(Debug)]
pub struct JoinHandle<T> {
    tid: usize,
    inner: std::thread::JoinHandle<Option<T>>,
}

impl<T> JoinHandle<T> {
    /// Waits (in model time) for the thread to finish and returns its
    /// result. The `Result` mirrors `std`'s signature; under the checker
    /// a panicking thread aborts the whole execution instead, so `Err` is
    /// never actually produced.
    pub fn join(self) -> std::thread::Result<T> {
        let (exec, _) = cur();
        runtime::op_join(&exec, self.tid);
        match self.inner.join() {
            Ok(Some(value)) => Ok(value),
            // The child was unwound by an execution abort; propagate.
            _ => std::panic::panic_any(Abort),
        }
    }
}

/// Spawns a model thread. A schedule point and a happens-before edge
/// (the child starts knowing everything the parent knew).
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let (exec, _) = cur();
    let tid = runtime::op_spawn(&exec);
    if tid == usize::MAX {
        // The thread cap violation was already reported.
        std::panic::panic_any(Abort);
    }
    let spawned = std::thread::Builder::new()
        .name(format!("hi-check-t{tid}"))
        .spawn({
            let exec = Arc::clone(&exec);
            move || runtime::wrapper(exec, tid, f)
        });
    match spawned {
        Ok(inner) => JoinHandle { tid, inner },
        Err(error) => {
            // Roll back the registration so the scheduler's live-thread
            // accounting stays balanced, then abort the execution.
            runtime::undo_spawn(&exec, tid, &error.to_string());
            std::panic::panic_any(Abort);
        }
    }
}

/// A pure schedule point: lets the scheduler switch threads with no state
/// change, widening the explored interleavings around it.
pub fn yield_now() {
    let (exec, _) = cur();
    runtime::op_yield(&exec);
}
