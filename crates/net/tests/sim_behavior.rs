//! Behavioural integration tests of the WBAN simulator: routing semantics,
//! MAC properties, energy accounting and determinism.

use hi_channel::{BodyLocation, ChannelModel, ChannelParams, PathLossMatrix, StaticChannel};
use hi_des::{SimDuration, SimTime};
use hi_net::{
    simulate, simulate_averaged, simulate_stochastic, FloodMode, MacKind, NetworkConfig, Routing,
    TxPower,
};

const T: f64 = 60.0;

fn t_sim() -> SimDuration {
    SimDuration::from_secs(T)
}

fn base_placements() -> Vec<BodyLocation> {
    vec![
        BodyLocation::Chest,
        BodyLocation::LeftHip,
        BodyLocation::LeftAnkle,
        BodyLocation::LeftWrist,
    ]
}

/// A channel defined by an explicit per-pair loss table (test double).
struct TableChannel {
    loss: Vec<(BodyLocation, BodyLocation, f64)>,
    default: f64,
}

impl TableChannel {
    fn new(default: f64) -> Self {
        Self {
            loss: Vec::new(),
            default,
        }
    }

    fn with(mut self, a: BodyLocation, b: BodyLocation, loss: f64) -> Self {
        self.loss.push((a, b, loss));
        self
    }
}

impl ChannelModel for TableChannel {
    fn path_loss_db(&mut self, a: BodyLocation, b: BodyLocation, _t: SimTime) -> f64 {
        if a == b {
            return 0.0;
        }
        self.loss
            .iter()
            .find(|(x, y, _)| (*x == a && *y == b) || (*x == b && *y == a))
            .map(|(_, _, l)| *l)
            .unwrap_or(self.default)
    }
}

#[test]
fn perfect_channel_tdma_star_delivers_everything() {
    let cfg = NetworkConfig::new(
        base_placements(),
        TxPower::ZeroDbm,
        MacKind::tdma(),
        Routing::Star { coordinator: 0 },
    );
    let out = simulate(&cfg, StaticChannel::uniform(50.0), t_sim(), 1).unwrap();
    assert_eq!(out.pdr, 1.0, "lossless TDMA star must deliver all packets");
    assert_eq!(out.counts.collisions, 0);
    assert_eq!(out.counts.buffer_drops, 0);
}

#[test]
fn perfect_channel_tdma_mesh_delivers_everything() {
    let cfg = NetworkConfig::new(
        base_placements(),
        TxPower::ZeroDbm,
        MacKind::tdma(),
        Routing::mesh(),
    );
    let out = simulate(&cfg, StaticChannel::uniform(50.0), t_sim(), 1).unwrap();
    assert_eq!(out.pdr, 1.0);
    assert_eq!(out.counts.collisions, 0);
}

#[test]
fn dead_channel_delivers_nothing() {
    let cfg = NetworkConfig::new(
        base_placements(),
        TxPower::ZeroDbm,
        MacKind::tdma(),
        Routing::Star { coordinator: 0 },
    );
    let out = simulate(&cfg, StaticChannel::uniform(150.0), t_sim(), 1).unwrap();
    assert_eq!(out.pdr, 0.0);
    assert_eq!(out.counts.deliveries, 0);
    // Nodes still transmit blindly and burn tx (but no rx) energy.
    assert!(out.counts.transmissions > 0);
}

#[test]
fn tdma_never_collides() {
    for routing in [Routing::Star { coordinator: 0 }, Routing::mesh()] {
        let cfg = NetworkConfig::new(
            base_placements(),
            TxPower::ZeroDbm,
            MacKind::tdma(),
            routing,
        );
        let out = simulate(&cfg, StaticChannel::uniform(50.0), t_sim(), 3).unwrap();
        assert_eq!(out.counts.collisions, 0, "TDMA is collision-free");
    }
}

#[test]
fn star_coordinator_bridges_hidden_nodes() {
    // Hip and wrist cannot hear each other, but both hear the chest
    // coordinator, which relays.
    let ch = TableChannel::new(150.0)
        .with(BodyLocation::Chest, BodyLocation::LeftHip, 50.0)
        .with(BodyLocation::Chest, BodyLocation::LeftWrist, 50.0);
    let cfg = NetworkConfig::new(
        vec![
            BodyLocation::Chest,
            BodyLocation::LeftHip,
            BodyLocation::LeftWrist,
        ],
        TxPower::ZeroDbm,
        MacKind::tdma(),
        Routing::Star { coordinator: 0 },
    );
    let out = simulate(&cfg, ch, t_sim(), 1).unwrap();
    // All pairs deliverable: direct to/from chest, hip<->wrist via relay.
    assert_eq!(out.pdr, 1.0, "coordinator relay must bridge hidden pairs");
}

#[test]
fn star_without_relay_path_fails_hidden_pairs() {
    // Same hidden-pair topology, but coordinator placed at the *wrist*:
    // chest<->hip must fail (no relay path), pairs via wrist succeed.
    let ch = TableChannel::new(150.0)
        .with(BodyLocation::LeftWrist, BodyLocation::LeftHip, 50.0)
        .with(BodyLocation::LeftWrist, BodyLocation::Chest, 50.0);
    let cfg = NetworkConfig::new(
        vec![
            BodyLocation::Chest,
            BodyLocation::LeftHip,
            BodyLocation::LeftWrist,
        ],
        TxPower::ZeroDbm,
        MacKind::tdma(),
        Routing::Star { coordinator: 2 },
    );
    let out = simulate(&cfg, ch, t_sim(), 1).unwrap();
    assert_eq!(out.pdr, 1.0, "wrist coordinator bridges chest<->hip too");

    // Now a non-coordinator cannot bridge: coordinator at chest, which
    // nobody but the wrist can hear... chest relay reaches only wrist.
    let ch = TableChannel::new(150.0)
        .with(BodyLocation::LeftWrist, BodyLocation::LeftHip, 50.0)
        .with(BodyLocation::LeftWrist, BodyLocation::Chest, 50.0);
    let cfg = NetworkConfig::new(
        vec![
            BodyLocation::Chest,
            BodyLocation::LeftHip,
            BodyLocation::LeftWrist,
        ],
        TxPower::ZeroDbm,
        MacKind::tdma(),
        Routing::Star { coordinator: 0 },
    );
    let out = simulate(&cfg, ch, t_sim(), 1).unwrap();
    // chest<->hip pairs dead (2 of 6 ordered pairs), plus chest->hip relay
    // cannot happen. Expect PDR strictly between 0 and 1.
    assert!(out.pdr > 0.3 && out.pdr < 0.9, "pdr = {}", out.pdr);
}

#[test]
fn mesh_two_hop_reaches_across_chain() {
    // Chain chest - hip - ankle - wrist (only adjacent links audible).
    // Two re-broadcast hops suffice for end-to-end delivery.
    let ch = || {
        TableChannel::new(150.0)
            .with(BodyLocation::Chest, BodyLocation::LeftHip, 50.0)
            .with(BodyLocation::LeftHip, BodyLocation::LeftAnkle, 50.0)
            .with(BodyLocation::LeftAnkle, BodyLocation::LeftWrist, 50.0)
    };
    let mk = |max_hops| {
        let mut cfg = NetworkConfig::new(
            base_placements(),
            TxPower::ZeroDbm,
            MacKind::tdma(),
            Routing::Mesh {
                max_hops,
                flood_mode: FloodMode::DedupPerNode,
            },
        );
        cfg.mac_buffer = 64;
        cfg
    };
    let out = simulate(&mk(2), ch(), t_sim(), 1).unwrap();
    // Not exactly 1.0: a packet generated just before the horizon may not
    // finish both hops in time, and that truncation artifact depends on
    // where the generation jitter lands for the seed.
    assert!(
        out.pdr > 0.999,
        "2 hops must cover a 3-link chain: {}",
        out.pdr
    );

    // One re-broadcast hop cannot connect chest <-> wrist.
    let out = simulate(&mk(1), ch(), t_sim(), 1).unwrap();
    assert!(out.pdr < 1.0, "1 hop cannot cover a 3-link chain");
    assert!(out.pdr > 0.5);
}

#[test]
fn mesh_beats_star_on_weak_links() {
    // Same marginal channel; mesh's redundant relays must not do worse.
    let params = ChannelParams::default();
    let star = NetworkConfig::new(
        base_placements(),
        TxPower::Minus10Dbm,
        MacKind::tdma(),
        Routing::Star { coordinator: 0 },
    );
    let mesh = NetworkConfig::new(
        base_placements(),
        TxPower::Minus10Dbm,
        MacKind::tdma(),
        Routing::mesh(),
    );
    let s = simulate_averaged(&star, params, t_sim(), 10, 3).unwrap();
    let m = simulate_averaged(&mesh, params, t_sim(), 10, 3).unwrap();
    assert!(
        m.pdr > s.pdr,
        "mesh ({}) should out-deliver star ({}) on weak links",
        m.pdr,
        s.pdr
    );
    // ... at the price of shorter lifetime.
    assert!(
        m.nlt_days < s.nlt_days,
        "mesh lifetime ({}) should be below star ({})",
        m.nlt_days,
        s.nlt_days
    );
}

#[test]
fn history_only_flooding_transmits_more() {
    let mk = |mode| {
        let mut cfg = NetworkConfig::new(
            base_placements(),
            TxPower::ZeroDbm,
            MacKind::tdma(),
            Routing::Mesh {
                max_hops: 2,
                flood_mode: mode,
            },
        );
        cfg.mac_buffer = 64;
        cfg
    };
    let dedup = simulate(
        &mk(FloodMode::DedupPerNode),
        StaticChannel::uniform(50.0),
        t_sim(),
        1,
    )
    .unwrap();
    let hist = simulate(
        &mk(FloodMode::HistoryOnly),
        StaticChannel::uniform(50.0),
        t_sim(),
        1,
    )
    .unwrap();
    assert!(
        hist.counts.transmissions > dedup.counts.transmissions,
        "history-only flooding must be more redundant ({} vs {})",
        hist.counts.transmissions,
        dedup.counts.transmissions
    );
    assert!(hist.max_power_mw > dedup.max_power_mw);
}

#[test]
fn deterministic_same_seed_same_outcome() {
    let cfg = NetworkConfig::new(
        base_placements(),
        TxPower::Minus10Dbm,
        MacKind::csma(),
        Routing::mesh(),
    );
    let a = simulate_stochastic(&cfg, ChannelParams::default(), t_sim(), 99).unwrap();
    let b = simulate_stochastic(&cfg, ChannelParams::default(), t_sim(), 99).unwrap();
    assert_eq!(a, b);
    let c = simulate_stochastic(&cfg, ChannelParams::default(), t_sim(), 100).unwrap();
    assert_ne!(a, c);
}

#[test]
fn energy_matches_analytic_model_for_lossless_tdma_star() {
    // In a lossless star every round a non-coordinator transmits once and
    // receives 2(N-1) packets (originals + coordinator relays of others,
    // minus its own relay...). The paper's coarse model (eq. 5, star):
    // Prd = phi*Tpkt*(TxmW + 2(N-1) RxmW). The simulated per-node power
    // must land within ~15% of baseline + Prd.
    let n = 4.0;
    let cfg = NetworkConfig::new(
        base_placements(),
        TxPower::ZeroDbm,
        MacKind::tdma(),
        Routing::Star { coordinator: 0 },
    );
    let out = simulate(
        &cfg,
        StaticChannel::uniform(50.0),
        SimDuration::from_secs(300.0),
        1,
    )
    .unwrap();
    let phi = 10.0;
    let tpkt = 800.0 / 1_024_000.0;
    let prd_mw = phi * tpkt * (18.3 + 2.0 * (n - 1.0) * 17.7);
    let expected = 0.1 + prd_mw;
    let rel = (out.max_power_mw - expected).abs() / expected;
    assert!(
        rel < 0.15,
        "simulated {} mW vs analytic {} mW (rel err {:.3})",
        out.max_power_mw,
        expected,
        rel
    );
}

#[test]
fn csma_congestion_produces_collisions_or_backoff_drops() {
    // Crank the load (10x packet rate) on an all-audible channel.
    let mut cfg = NetworkConfig::new(
        base_placements(),
        TxPower::ZeroDbm,
        MacKind::csma(),
        Routing::mesh(),
    );
    cfg.app.packets_per_second = 100.0;
    let out = simulate(&cfg, StaticChannel::uniform(50.0), t_sim(), 5).unwrap();
    assert!(
        out.counts.collisions > 0 || out.counts.mac_drops > 0 || out.counts.buffer_drops > 0,
        "saturated CSMA must show contention"
    );
    assert!(out.pdr < 1.0);
}

#[test]
fn tiny_buffer_drops_packets() {
    let mut cfg = NetworkConfig::new(
        base_placements(),
        TxPower::ZeroDbm,
        MacKind::tdma(),
        Routing::mesh(),
    );
    cfg.mac_buffer = 1;
    cfg.app.packets_per_second = 100.0;
    let out = simulate(&cfg, StaticChannel::uniform(50.0), t_sim(), 5).unwrap();
    assert!(out.counts.buffer_drops > 0);
}

#[test]
fn coordinator_excluded_from_lifetime() {
    // The chest coordinator relays everything (highest power), yet NLT is
    // computed over the other nodes.
    let cfg = NetworkConfig::new(
        base_placements(),
        TxPower::ZeroDbm,
        MacKind::tdma(),
        Routing::Star { coordinator: 0 },
    );
    let out = simulate(&cfg, StaticChannel::uniform(50.0), t_sim(), 1).unwrap();
    let coord_power = out.node_power_mw[0];
    assert!(
        coord_power > out.max_power_mw,
        "coordinator ({} mW) should out-draw members ({} mW)",
        coord_power,
        out.max_power_mw
    );
    let worst_member_days = 2430.0 / (out.max_power_mw * 1e-3) / 86_400.0;
    assert!((out.nlt_days - worst_member_days).abs() < 1e-9);
}

#[test]
fn mesh_lifetime_counts_every_node() {
    let cfg = NetworkConfig::new(
        base_placements(),
        TxPower::ZeroDbm,
        MacKind::tdma(),
        Routing::mesh(),
    );
    let out = simulate(&cfg, StaticChannel::uniform(50.0), t_sim(), 1).unwrap();
    let worst = out.node_power_mw.iter().cloned().fold(0.0f64, f64::max);
    assert!((out.max_power_mw - worst).abs() < 1e-12);
}

#[test]
fn higher_tx_power_never_hurts_pdr_star() {
    let params = ChannelParams::default();
    let pdr_at = |p| {
        let cfg = NetworkConfig::new(
            base_placements(),
            p,
            MacKind::tdma(),
            Routing::Star { coordinator: 0 },
        );
        simulate_averaged(&cfg, params, t_sim(), 42, 3).unwrap().pdr
    };
    let lo = pdr_at(TxPower::Minus20Dbm);
    let mid = pdr_at(TxPower::Minus10Dbm);
    let hi = pdr_at(TxPower::ZeroDbm);
    assert!(lo < mid && mid < hi, "PDR ladder broken: {lo} {mid} {hi}");
}

#[test]
fn pdr_sweep_spans_paper_fig3_range() {
    // Feasible configurations should span low to ~100% PDR and single-digit
    // to >month lifetimes, as in Fig. 3.
    let params = ChannelParams::default();
    let mut min_pdr: f64 = 1.0;
    let mut max_pdr: f64 = 0.0;
    let mut min_nlt = f64::INFINITY;
    let mut max_nlt: f64 = 0.0;
    for power in TxPower::ALL {
        for routing in [Routing::Star { coordinator: 0 }, Routing::mesh()] {
            let cfg = NetworkConfig::new(base_placements(), power, MacKind::tdma(), routing);
            let out = simulate_averaged(&cfg, params, t_sim(), 7, 2).unwrap();
            min_pdr = min_pdr.min(out.pdr);
            max_pdr = max_pdr.max(out.pdr);
            min_nlt = min_nlt.min(out.nlt_days);
            max_nlt = max_nlt.max(out.nlt_days);
        }
    }
    assert!(
        min_pdr < 0.6,
        "worst config should be unreliable: {min_pdr}"
    );
    assert!(max_pdr > 0.97, "best config should be reliable: {max_pdr}");
    assert!(min_nlt < 15.0, "mesh should be power-hungry: {min_nlt}");
    assert!(max_nlt > 25.0, "weak star should be long-lived: {max_nlt}");
}

#[test]
fn from_values_matrix_roundtrip_through_simulation() {
    // A custom measured-style matrix can drive the simulation.
    let mut vals = [[60.0; 10]; 10];
    for (i, row) in vals.iter_mut().enumerate() {
        row[i] = 0.0;
    }
    let matrix = PathLossMatrix::from_values(vals);
    let cfg = NetworkConfig::new(
        base_placements(),
        TxPower::ZeroDbm,
        MacKind::tdma(),
        Routing::Star { coordinator: 0 },
    );
    let out = simulate(&cfg, StaticChannel::new(matrix), t_sim(), 1).unwrap();
    assert_eq!(out.pdr, 1.0);
}

#[test]
fn latency_reflects_mac_determinism() {
    // The paper's §2.1.2 remark: CSMA's channel access is
    // non-deterministic, TDMA's is deterministic. With equal traffic the
    // TDMA star's latency spread stays within the frame structure, while
    // CSMA's random backoffs widen the distribution tail.
    let mk = |mac| {
        NetworkConfig::new(
            base_placements(),
            TxPower::ZeroDbm,
            mac,
            Routing::Star { coordinator: 0 },
        )
    };
    let tdma = simulate(
        &mk(MacKind::tdma()),
        StaticChannel::uniform(50.0),
        t_sim(),
        2,
    )
    .unwrap();
    let csma = simulate(
        &mk(MacKind::csma()),
        StaticChannel::uniform(50.0),
        t_sim(),
        2,
    )
    .unwrap();
    assert!(tdma.latency.samples > 1000);
    assert!(csma.latency.samples > 1000);
    // TDMA: a 4-node round is 4 ms; direct packets wait <= one frame and
    // relays one more. Everything is bounded by a few frames.
    assert!(
        tdma.latency.max_ms < 20.0,
        "TDMA latency must be frame-bounded, got {} ms",
        tdma.latency.max_ms
    );
    assert!(tdma.latency.mean_ms > 0.5 && tdma.latency.mean_ms < 10.0);
    // CSMA's mean is small (immediate access on an idle channel) but its
    // jitter comes from random backoffs.
    assert!(csma.latency.std_ms > 0.0);
}

#[test]
fn latency_zero_when_nothing_delivered() {
    let cfg = NetworkConfig::new(
        base_placements(),
        TxPower::ZeroDbm,
        MacKind::tdma(),
        Routing::Star { coordinator: 0 },
    );
    let out = simulate(&cfg, StaticChannel::uniform(150.0), t_sim(), 1).unwrap();
    assert_eq!(out.latency.samples, 0);
    assert_eq!(out.latency.mean_ms, 0.0);
}

#[test]
fn mesh_relays_add_latency() {
    // Chain topology: multi-hop deliveries must be slower on average than
    // an all-direct topology.
    let chain = TableChannel::new(150.0)
        .with(BodyLocation::Chest, BodyLocation::LeftHip, 50.0)
        .with(BodyLocation::LeftHip, BodyLocation::LeftAnkle, 50.0)
        .with(BodyLocation::LeftAnkle, BodyLocation::LeftWrist, 50.0);
    let mut cfg = NetworkConfig::new(
        base_placements(),
        TxPower::ZeroDbm,
        MacKind::tdma(),
        Routing::mesh(),
    );
    cfg.mac_buffer = 64;
    let multi = simulate(&cfg, chain, t_sim(), 1).unwrap();
    let direct = simulate(&cfg, StaticChannel::uniform(50.0), t_sim(), 1).unwrap();
    assert!(
        multi.latency.mean_ms > direct.latency.mean_ms,
        "chain ({} ms) should exceed direct ({} ms)",
        multi.latency.mean_ms,
        direct.latency.mean_ms
    );
}

#[test]
fn one_persistent_csma_collides_more_under_contention() {
    // Classic result: nodes waiting out the same transmission all fire at
    // the instant the channel frees in 1-persistent mode, while
    // non-persistent backoffs spread them out.
    use hi_net::{CsmaAccessMode, CsmaParams};
    let mk = |mode| {
        let mut cfg = NetworkConfig::new(
            vec![
                BodyLocation::Chest,
                BodyLocation::LeftHip,
                BodyLocation::RightHip,
                BodyLocation::LeftWrist,
                BodyLocation::RightWrist,
                BodyLocation::Head,
            ],
            TxPower::ZeroDbm,
            MacKind::Csma(CsmaParams {
                access_mode: mode,
                ..Default::default()
            }),
            Routing::mesh(),
        );
        cfg.app.packets_per_second = 50.0; // heavy contention
        cfg.mac_buffer = 64;
        cfg
    };
    let np = simulate(
        &mk(CsmaAccessMode::NonPersistent),
        StaticChannel::uniform(50.0),
        t_sim(),
        4,
    )
    .unwrap();
    let op = simulate(
        &mk(CsmaAccessMode::one_persistent()),
        StaticChannel::uniform(50.0),
        t_sim(),
        4,
    )
    .unwrap();
    assert!(
        op.counts.collisions > np.counts.collisions,
        "1-persistent ({}) should collide more than non-persistent ({})",
        op.counts.collisions,
        np.counts.collisions
    );
}

#[test]
fn p_persistent_low_p_reduces_collisions() {
    use hi_net::{CsmaAccessMode, CsmaParams};
    let mk = |p| {
        let mut cfg = NetworkConfig::new(
            base_placements(),
            TxPower::ZeroDbm,
            MacKind::Csma(CsmaParams {
                access_mode: CsmaAccessMode::PPersistent {
                    p,
                    sense_period: hi_des::SimDuration::from_millis(0.5),
                },
                ..Default::default()
            }),
            Routing::mesh(),
        );
        cfg.app.packets_per_second = 50.0;
        cfg.mac_buffer = 64;
        cfg
    };
    let greedy = simulate(&mk(1.0), StaticChannel::uniform(50.0), t_sim(), 6).unwrap();
    let polite = simulate(&mk(0.2), StaticChannel::uniform(50.0), t_sim(), 6).unwrap();
    assert!(
        polite.counts.collisions < greedy.counts.collisions,
        "p=0.2 ({}) should collide less than p=1.0 ({})",
        polite.counts.collisions,
        greedy.counts.collisions
    );
    // ... but deferrals cost latency.
    assert!(polite.latency.mean_ms > greedy.latency.mean_ms);
}

#[test]
fn persistent_mode_never_mac_drops() {
    use hi_net::{CsmaAccessMode, CsmaParams};
    let mut cfg = NetworkConfig::new(
        base_placements(),
        TxPower::ZeroDbm,
        MacKind::Csma(CsmaParams {
            access_mode: CsmaAccessMode::one_persistent(),
            max_attempts: 1, // irrelevant in persistent mode
            ..Default::default()
        }),
        Routing::mesh(),
    );
    cfg.app.packets_per_second = 50.0;
    cfg.mac_buffer = 64;
    let out = simulate(&cfg, StaticChannel::uniform(50.0), t_sim(), 2).unwrap();
    assert_eq!(out.counts.mac_drops, 0);
    assert!(out.pdr > 0.5);
}

#[test]
fn slotted_aloha_delivers_at_sane_load() {
    let cfg = NetworkConfig::new(
        base_placements(),
        TxPower::ZeroDbm,
        MacKind::slotted_aloha(),
        Routing::Star { coordinator: 0 },
    );
    let out = simulate(&cfg, StaticChannel::uniform(50.0), t_sim(), 3).unwrap();
    // 40 pkt/s offered over 1000 slots/s at p = 0.3: mostly clean.
    assert!(out.pdr > 0.7, "pdr {}", out.pdr);
}

#[test]
fn slotted_aloha_p1_collapses_under_backlog() {
    use hi_net::AlohaParams;
    let mk = |p| {
        let mut cfg = NetworkConfig::new(
            base_placements(),
            TxPower::ZeroDbm,
            MacKind::SlottedAloha(AlohaParams {
                p,
                ..Default::default()
            }),
            Routing::Star { coordinator: 0 },
        );
        // Saturate beyond the 1000 slots/s service rate: queues never
        // drain, every slot is contended by all four nodes.
        cfg.app.packets_per_second = 2000.0;
        cfg
    };
    let greedy = simulate(&mk(1.0), StaticChannel::uniform(50.0), t_sim(), 8).unwrap();
    let tuned = simulate(&mk(0.2), StaticChannel::uniform(50.0), t_sim(), 8).unwrap();
    // With p = 1 every backlogged node fires every slot: perpetual
    // collision (and no listeners left), essentially nothing gets through
    // after the warm-up transient.
    assert!(
        greedy.pdr < 0.01,
        "saturated p=1 ALOHA should collapse, pdr {}",
        greedy.pdr
    );
    assert!(greedy.counts.collisions > 10_000);
    // Backing off to p = 0.2 restores a single-transmitter slot rate of
    // ~4 * 0.2 * 0.8^3 = 41%, visible as real deliveries.
    assert!(
        tuned.counts.deliveries > 10 * greedy.counts.deliveries.max(1),
        "tuned deliveries {} vs greedy {}",
        tuned.counts.deliveries,
        greedy.counts.deliveries
    );
    assert!(tuned.pdr > greedy.pdr);
}

#[test]
fn slotted_aloha_validates_probability() {
    use hi_net::AlohaParams;
    let mut cfg = NetworkConfig::new(
        base_placements(),
        TxPower::ZeroDbm,
        MacKind::SlottedAloha(AlohaParams {
            p: 1.5,
            ..Default::default()
        }),
        Routing::Star { coordinator: 0 },
    );
    cfg.app.packets_per_second = 10.0;
    assert_eq!(
        cfg.validate(),
        Err(hi_net::ConfigError::BadAlohaProbability)
    );
}
