//! Tests of the packet-journey trace facility.

use hi_channel::{BodyLocation, StaticChannel};
use hi_des::SimDuration;
use hi_net::trace::{packet_journey, render, TraceEvent};
use hi_net::{MacKind, NetworkConfig, NetworkSim, NodeFault, Routing, TxPower};

fn cfg() -> NetworkConfig {
    let mut cfg = NetworkConfig::new(
        vec![
            BodyLocation::Chest,
            BodyLocation::LeftHip,
            BodyLocation::LeftWrist,
        ],
        TxPower::ZeroDbm,
        MacKind::tdma(),
        Routing::Star { coordinator: 0 },
    );
    cfg.app.packets_per_second = 2.0; // sparse, readable trace
    cfg
}

#[test]
fn traced_run_matches_untraced_outcome() {
    let t = SimDuration::from_secs(10.0);
    let (traced, events) = NetworkSim::new(cfg(), StaticChannel::uniform(50.0), t, 3)
        .unwrap()
        .run_traced();
    let plain = NetworkSim::new(cfg(), StaticChannel::uniform(50.0), t, 3)
        .unwrap()
        .run();
    assert_eq!(traced, plain, "tracing must not change behaviour");
    assert!(!events.is_empty());
}

#[test]
fn trace_counts_reconcile_with_metrics() {
    let t = SimDuration::from_secs(10.0);
    let (out, events) = NetworkSim::new(cfg(), StaticChannel::uniform(50.0), t, 3)
        .unwrap()
        .run_traced();
    let count = |f: &dyn Fn(&TraceEvent) -> bool| events.iter().filter(|e| f(e)).count() as u64;
    assert_eq!(
        count(&|e| matches!(e, TraceEvent::Generated { .. })),
        out.counts.generated
    );
    assert_eq!(
        count(&|e| matches!(e, TraceEvent::TxStart { .. })),
        out.counts.transmissions
    );
    assert_eq!(
        count(&|e| matches!(e, TraceEvent::Delivered { .. })),
        out.counts.deliveries
    );
    assert_eq!(
        count(&|e| matches!(e, TraceEvent::Corrupted { .. })),
        out.counts.collisions
    );
}

#[test]
fn trace_is_time_ordered() {
    let (_, events) = NetworkSim::new(
        cfg(),
        StaticChannel::uniform(50.0),
        SimDuration::from_secs(5.0),
        1,
    )
    .unwrap()
    .run_traced();
    for w in events.windows(2) {
        assert!(w[0].time() <= w[1].time());
    }
}

#[test]
fn packet_journey_tells_the_star_story() {
    // Lossless star: a non-coordinator packet is generated, transmitted,
    // heard by everyone, relayed once by the coordinator, heard again.
    let (_, events) = NetworkSim::new(
        cfg(),
        StaticChannel::uniform(50.0),
        SimDuration::from_secs(5.0),
        1,
    )
    .unwrap()
    .run_traced();
    let journey = packet_journey(&events, 1, 0); // node 1's first packet
    let txs = journey
        .iter()
        .filter(|e| matches!(e, TraceEvent::TxStart { .. }))
        .count();
    assert_eq!(txs, 2, "original + coordinator relay: {journey:#?}");
    let deliveries = journey
        .iter()
        .filter(|e| matches!(e, TraceEvent::Delivered { .. }))
        .count();
    // Original heard by coordinator + wrist; relay heard by hip + wrist.
    assert_eq!(deliveries, 4, "{journey:#?}");
}

#[test]
fn node_failure_appears_in_trace() {
    let mut c = cfg();
    c.faults.push(NodeFault {
        node: 2,
        at: SimDuration::from_secs(2.0),
    });
    let (_, events) = NetworkSim::new(
        c,
        StaticChannel::uniform(50.0),
        SimDuration::from_secs(5.0),
        1,
    )
    .unwrap()
    .run_traced();
    assert!(events
        .iter()
        .any(|e| matches!(e, TraceEvent::NodeFailed { node: 2, .. })));
    let text = render(&events);
    assert!(text.contains("FAIL   n2"));
}
