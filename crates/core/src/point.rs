//! The design vector: node placements `ν` and stack configuration `χ`.

use std::fmt;

use hi_channel::BodyLocation;
use hi_net::{MacKind, NetworkConfig, Routing, TxPower};

/// A set of occupied body locations — the paper's topology vector
/// `ν = (n0, ..., n9)`, packed as a bitmask.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Placement(u16);

impl Placement {
    /// The empty placement.
    pub const EMPTY: Placement = Placement(0);

    /// Builds a placement from location indices.
    ///
    /// # Panics
    ///
    /// Panics if an index is `>= 10`.
    pub fn from_indices<I: IntoIterator<Item = usize>>(indices: I) -> Self {
        let mut mask = 0u16;
        for i in indices {
            assert!(i < BodyLocation::COUNT, "location index {i} out of range");
            mask |= 1 << i;
        }
        Placement(mask)
    }

    /// Builds a placement from [`BodyLocation`]s.
    pub fn from_locations<I: IntoIterator<Item = BodyLocation>>(locs: I) -> Self {
        Self::from_indices(locs.into_iter().map(|l| l.index()))
    }

    /// Builds a placement directly from a bitmask over location indices.
    ///
    /// # Panics
    ///
    /// Panics if any bit `>= 10` is set.
    pub fn from_mask(mask: u16) -> Self {
        assert!(
            mask < (1 << BodyLocation::COUNT),
            "placement mask {mask:#x} uses bits beyond the 10 sites"
        );
        Placement(mask)
    }

    /// The raw bitmask.
    pub fn mask(self) -> u16 {
        self.0
    }

    /// Whether the site with index `i` is occupied.
    pub fn contains_index(self, i: usize) -> bool {
        i < BodyLocation::COUNT && self.0 & (1 << i) != 0
    }

    /// Whether `loc` is occupied.
    pub fn contains(self, loc: BodyLocation) -> bool {
        self.contains_index(loc.index())
    }

    /// Number of occupied sites (the paper's `N`).
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// True if no site is occupied.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Adds a site, returning the extended placement.
    pub fn with(self, loc: BodyLocation) -> Placement {
        Placement(self.0 | (1 << loc.index()))
    }

    /// Removes a site, returning the reduced placement.
    pub fn without(self, loc: BodyLocation) -> Placement {
        Placement(self.0 & !(1 << loc.index()))
    }

    /// The occupied locations in index order.
    pub fn locations(self) -> Vec<BodyLocation> {
        BodyLocation::ALL
            .iter()
            .copied()
            .filter(|l| self.contains(*l))
            .collect()
    }

    /// Iterates over occupied location indices in ascending order.
    pub fn indices(self) -> impl Iterator<Item = usize> {
        let mask = self.0;
        (0..BodyLocation::COUNT).filter(move |i| mask & (1 << i) != 0)
    }
}

impl fmt::Display for Placement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let idx: Vec<String> = self.indices().map(|i| i.to_string()).collect();
        write!(f, "[{}]", idx.join(","))
    }
}

/// MAC protocol choice (`PMAC`), parameter-free at the exploration level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MacChoice {
    /// Contention-based access.
    Csma,
    /// Time-division access.
    Tdma,
}

impl MacChoice {
    /// Both options.
    pub const ALL: [MacChoice; 2] = [MacChoice::Csma, MacChoice::Tdma];
}

impl fmt::Display for MacChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MacChoice::Csma => write!(f, "CSMA"),
            MacChoice::Tdma => write!(f, "TDMA"),
        }
    }
}

/// Routing protocol choice (`Prt`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RouteChoice {
    /// Star with the chest coordinator (`ncoor = n0`, paper §4.1).
    Star,
    /// Two-hop controlled-flooding mesh (`Nhops = 2`).
    Mesh,
}

impl RouteChoice {
    /// Both options.
    pub const ALL: [RouteChoice; 2] = [RouteChoice::Star, RouteChoice::Mesh];

    /// The paper's `Prt` bit (1 for mesh).
    pub fn prt(self) -> u8 {
        match self {
            RouteChoice::Star => 0,
            RouteChoice::Mesh => 1,
        }
    }
}

impl fmt::Display for RouteChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteChoice::Star => write!(f, "Star"),
            RouteChoice::Mesh => write!(f, "Mesh"),
        }
    }
}

/// One point of the design space: `(ν, χ)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DesignPoint {
    /// Node placements (`ν`).
    pub placement: Placement,
    /// Radio transmit power level.
    pub tx_power: TxPower,
    /// MAC protocol.
    pub mac: MacChoice,
    /// Routing protocol.
    pub routing: RouteChoice,
}

impl DesignPoint {
    /// Number of nodes `N`.
    pub fn num_nodes(&self) -> usize {
        self.placement.len()
    }

    /// A unique 64-bit fingerprint of the full design vector: the
    /// placement bitmask in bits 4..14 and the stack configuration
    /// (power level, MAC bit, routing bit) in bits 0..4.
    ///
    /// This is the key of the shared evaluation cache and (split into its
    /// two halves) the input of the per-point simulation-seed derivation,
    /// so a point's measured [`Evaluation`](crate::Evaluation) depends
    /// only on the point itself — never on which engine, thread or
    /// evaluation order reached it first.
    pub fn fingerprint(&self) -> u64 {
        let p = match self.tx_power {
            TxPower::Minus20Dbm => 0u64,
            TxPower::Minus10Dbm => 1,
            TxPower::ZeroDbm => 2,
        };
        let m = match self.mac {
            MacChoice::Csma => 0u64,
            MacChoice::Tdma => 1,
        };
        let r = match self.routing {
            RouteChoice::Star => 0u64,
            RouteChoice::Mesh => 1,
        };
        (u64::from(self.placement.mask()) << 4) | p | (m << 2) | (r << 3)
    }

    /// Inverts [`fingerprint`](Self::fingerprint): decodes a design point
    /// from its 64-bit fingerprint. Returns `None` if `fp` is not a valid
    /// fingerprint (power code 3, or mask bits beyond the 10 sites) —
    /// which checkpoint files written by other tools could contain.
    pub fn from_fingerprint(fp: u64) -> Option<Self> {
        let mask = fp >> 4;
        if mask >= (1 << BodyLocation::COUNT) {
            return None;
        }
        let tx_power = match fp & 0x3 {
            0 => TxPower::Minus20Dbm,
            1 => TxPower::Minus10Dbm,
            2 => TxPower::ZeroDbm,
            _ => return None,
        };
        let mac = if fp & 0x4 == 0 {
            MacChoice::Csma
        } else {
            MacChoice::Tdma
        };
        let routing = if fp & 0x8 == 0 {
            RouteChoice::Star
        } else {
            RouteChoice::Mesh
        };
        Some(Self {
            placement: Placement::from_mask(mask as u16),
            tx_power,
            mac,
            routing,
        })
    }

    /// Lowers the design point into a simulatable [`NetworkConfig`] with
    /// the paper's §4.1 stack defaults (chest coordinator, 2-hop mesh,
    /// 1 ms TDMA slots, non-persistent CSMA).
    ///
    /// # Panics
    ///
    /// Panics if a star point does not include the chest (the coordinator
    /// site); the paper's topological constraints always place it.
    pub fn to_network_config(&self) -> NetworkConfig {
        let placements = self.placement.locations();
        let routing = match self.routing {
            RouteChoice::Star => {
                let coordinator = placements
                    .iter()
                    .position(|&l| l == BodyLocation::Chest)
                    .expect("star topology requires the chest coordinator site");
                Routing::Star { coordinator }
            }
            RouteChoice::Mesh => Routing::mesh(),
        };
        let mac = match self.mac {
            MacChoice::Csma => MacKind::csma(),
            MacChoice::Tdma => MacKind::tdma(),
        };
        NetworkConfig::new(placements, self.tx_power, mac, routing)
    }
}

impl fmt::Display for DesignPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} {} {}",
            self.placement, self.routing, self.mac, self.tx_power
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_bit_manipulation() {
        let p = Placement::from_indices([0, 3, 5]);
        assert_eq!(p.len(), 3);
        assert!(p.contains(BodyLocation::Chest));
        assert!(p.contains(BodyLocation::LeftAnkle));
        assert!(!p.contains(BodyLocation::Back));
        let q = p.with(BodyLocation::Back).without(BodyLocation::Chest);
        assert!(q.contains(BodyLocation::Back));
        assert!(!q.contains(BodyLocation::Chest));
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn placement_display_lists_indices() {
        assert_eq!(
            Placement::from_indices([0, 1, 3, 6]).to_string(),
            "[0,1,3,6]"
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn placement_rejects_bad_index() {
        Placement::from_indices([10]);
    }

    #[test]
    #[should_panic(expected = "beyond the 10 sites")]
    fn placement_rejects_bad_mask() {
        Placement::from_mask(1 << 10);
    }

    #[test]
    fn locations_round_trip() {
        let locs = vec![BodyLocation::Chest, BodyLocation::LeftWrist];
        let p = Placement::from_locations(locs.clone());
        assert_eq!(p.locations(), locs);
    }

    #[test]
    fn to_network_config_star_uses_chest_coordinator() {
        let pt = DesignPoint {
            placement: Placement::from_indices([0, 1, 3, 5]),
            tx_power: TxPower::ZeroDbm,
            mac: MacChoice::Tdma,
            routing: RouteChoice::Star,
        };
        let cfg = pt.to_network_config();
        assert_eq!(cfg.coordinator(), Some(0));
        assert_eq!(cfg.placements[0], BodyLocation::Chest);
        assert_eq!(cfg.num_nodes(), 4);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "chest coordinator")]
    fn star_without_chest_panics() {
        let pt = DesignPoint {
            placement: Placement::from_indices([1, 3, 5]),
            tx_power: TxPower::ZeroDbm,
            mac: MacChoice::Tdma,
            routing: RouteChoice::Star,
        };
        let _ = pt.to_network_config();
    }

    #[test]
    fn mesh_config_has_two_hops() {
        let pt = DesignPoint {
            placement: Placement::from_indices([0, 1, 3, 5]),
            tx_power: TxPower::Minus10Dbm,
            mac: MacChoice::Csma,
            routing: RouteChoice::Mesh,
        };
        let cfg = pt.to_network_config();
        assert!(matches!(cfg.routing, Routing::Mesh { max_hops: 2, .. }));
        assert_eq!(cfg.coordinator(), None);
    }

    #[test]
    fn display_is_fig3_style() {
        let pt = DesignPoint {
            placement: Placement::from_indices([0, 1, 3, 6]),
            tx_power: TxPower::Minus10Dbm,
            mac: MacChoice::Csma,
            routing: RouteChoice::Star,
        };
        assert_eq!(pt.to_string(), "[0,1,3,6] Star CSMA -10dBm");
    }

    #[test]
    fn fingerprint_roundtrips_through_from_fingerprint() {
        for mask in [0b1u16, 0b10_1011, 0b11_1111_1111] {
            for &tx_power in &TxPower::ALL {
                for mac in [MacChoice::Csma, MacChoice::Tdma] {
                    for routing in [RouteChoice::Star, RouteChoice::Mesh] {
                        let pt = DesignPoint {
                            placement: Placement::from_mask(mask),
                            tx_power,
                            mac,
                            routing,
                        };
                        assert_eq!(DesignPoint::from_fingerprint(pt.fingerprint()), Some(pt));
                    }
                }
            }
        }
        // Invalid encodings decode to nothing.
        assert_eq!(DesignPoint::from_fingerprint(3), None); // power code 3
        assert_eq!(DesignPoint::from_fingerprint(1 << 14), None); // mask bit 10
    }

    #[test]
    fn design_point_is_hashable_key() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        let pt = DesignPoint {
            placement: Placement::from_indices([0, 1, 3, 6]),
            tx_power: TxPower::Minus10Dbm,
            mac: MacChoice::Csma,
            routing: RouteChoice::Star,
        };
        assert!(set.insert(pt));
        assert!(!set.insert(pt));
    }
}
