//! `hi-serve` — a fleet-optimization job service for the `hi-opt`
//! workspace: a wire protocol, per-user profiles, and cross-user
//! evaluation-cache dedup.
//!
//! The paper's pipeline (channel → DES → constrained search) optimizes
//! one Human Intranet wearer at a time. A deployment has a *fleet* of
//! wearers whose design problems differ only in a few knobs — body
//! geometry, traffic mix, reliability floor — while the expensive part,
//! the per-design-point network simulation, is identical whenever the
//! lowered physics coincide. This crate turns the workspace into a
//! long-running service that exploits exactly that overlap:
//!
//! * [`profile`](UserProfile) — a per-user profile file format (body
//!   [`geometry`](UserProfile::geometry_scale) scaling, channel-matrix
//!   offset, traffic mix, PDRmin, engine choice, optional fault suite)
//!   with a total, fuzz-tested parser and a canonical
//!   [`to_text`](UserProfile::to_text) rendering;
//! * [`proto`](Request) — a line-oriented wire protocol (`SUBMIT`,
//!   `STATUS`, `RESULT`, `WAIT`, `CANCEL`, `FRONT`, `STATS`,
//!   `SHUTDOWN`) served over stdin/stdout and TCP by the same
//!   transport-generic loop;
//! * [`fleet`](FleetCache) — one shared, fingerprint-keyed evaluator
//!   pool: profiles whose lowered physics agree share a memo cache, so
//!   identical design points simulate once per fleet, not once per user;
//! * [`server`](Server) — the daemon: a persistent job queue over
//!   `hi-exec` (per-job cancel tokens, supervised retries), CRC-checked
//!   crash-safe job records and per-iteration checkpoints (a SIGKILLed
//!   daemon resumes in-flight jobs on restart, byte-identically), and
//!   `hi-trace` metrics behind `STATS`;
//! * [`front`](FrontStore) — a per-stream `hi-pareto` archive over
//!   `(power, PDR, latency)`, fed incrementally by every job through
//!   the shared cache, persisted in CRC-checked front segments beside
//!   the cache segments, and served by `FRONT` — warm after a restart,
//!   with zero fresh simulations.
//!
//! Everything is std-only and deterministic: jobs run serially in id
//! order, so the cache state any job observes is a pure function of the
//! submission history, independent of thread count or crashes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fleet;
mod front;
mod persist;
mod profile;
mod proto;
mod segment;
mod server;

pub use fleet::{
    render_result, run_profile, FleetCache, FleetEvaluator, FleetStats, ProfileOutcome, RunPolicy,
};
pub use front::{
    front_path, parse_front_entry, parse_front_segment, render_front_entry, render_front_segment,
    FrontLoad, FrontStats, FrontStore,
};
pub use persist::{
    checkpoint_path, load_job_recovering, record_path, scan_records, JobRecord, JobState,
};
pub use profile::{
    lint_profiles, parse_profiles, EngineChoice, FaultsRef, ProfileParseError, UserProfile,
    DEMO_FLEET,
};
pub use proto::{
    derive_token, err_line, ok_block, ok_line, validate_token, Request, MAX_SUBMIT_LINES,
    MAX_TOKEN_LEN,
};
pub use segment::{
    frame_entry, parse_entry, parse_segment, render_entry, render_segment, segment_path,
    CachedOutcome, SegmentLoad, SegmentStats, SegmentStore, SettleOutcome,
};
pub use server::{run, serve_connection, ServeConfig, Server};
