//! The typed per-point evaluation failure.

use std::any::Any;
use std::fmt;

/// How a failed evaluation should be treated by supervision.
///
/// The classification drives the retry decision in
/// [`Supervisor::run`](crate::Supervisor::run) and nothing else: two
/// errors with the same message but different kinds produce the same
/// cached value, printed diagnostics and exit codes — they only differ in
/// whether a bounded retry is worth attempting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ErrorKind {
    /// The failure is not expected to repeat on an identical retry
    /// (injected chaos, a lost worker). Eligible for bounded retries.
    Transient,
    /// The failure is deterministic: retrying the same inputs would fail
    /// the same way (a panic in the evaluator, an invalid design point).
    /// Never retried.
    #[default]
    Permanent,
    /// A *logical* deadline tripped — the evaluation exceeded its
    /// DES-event or simplex-pivot budget. Deterministic by construction
    /// (budgets count events, never wall clock), therefore never retried.
    DeadlineExceeded,
}

impl fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ErrorKind::Transient => "transient",
            ErrorKind::Permanent => "permanent",
            ErrorKind::DeadlineExceeded => "deadline-exceeded",
        })
    }
}

/// A single evaluation failed (typically: the evaluator panicked).
///
/// The hardened execution paths degrade a panicking task to one of these
/// instead of poisoning the pool or aborting the whole batch: the point
/// is reported broken, every other point completes, and — because a
/// failed compute is cached like a successful one — racing threads agree
/// on the failure without recomputing it.
///
/// Every error carries an [`ErrorKind`] so the supervision layer can tell
/// a retriable hiccup from a deterministic failure. The plain
/// constructors ([`new`](Self::new), [`from_panic`](Self::from_panic))
/// produce [`ErrorKind::Permanent`], matching the pre-supervision
/// behaviour where no failure was ever retried.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct EvalError {
    message: String,
    kind: ErrorKind,
}

impl EvalError {
    /// A permanent error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
            kind: ErrorKind::Permanent,
        }
    }

    /// A transient error: eligible for bounded, deterministic retries.
    pub fn transient(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
            kind: ErrorKind::Transient,
        }
    }

    /// A logical-deadline trip ([`ErrorKind::DeadlineExceeded`]).
    pub fn deadline(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
            kind: ErrorKind::DeadlineExceeded,
        }
    }

    /// Converts a caught panic payload into a typed error, preserving
    /// `panic!`/`assert!` messages where they are recoverable. Panics are
    /// classified permanent: the evaluator is deterministic, so the same
    /// inputs would panic again.
    pub fn from_panic(payload: &(dyn Any + Send)) -> Self {
        let message = if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_owned()
        } else {
            "evaluation panicked (non-string payload)".to_owned()
        };
        Self::new(format!("evaluation panicked: {message}"))
    }

    /// The human-readable failure description.
    pub fn message(&self) -> &str {
        &self.message
    }

    /// The supervision classification of this failure.
    pub fn kind(&self) -> ErrorKind {
        self.kind
    }

    /// True for failures a bounded retry may clear
    /// ([`ErrorKind::Transient`]).
    pub fn is_transient(&self) -> bool {
        self.kind == ErrorKind::Transient
    }
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for EvalError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_panic_preserves_string_payloads() {
        let payload = std::panic::catch_unwind(|| panic!("boom {}", 7)).unwrap_err();
        let err = EvalError::from_panic(payload.as_ref());
        assert_eq!(err.message(), "evaluation panicked: boom 7");
        assert_eq!(err.kind(), ErrorKind::Permanent);

        let payload = std::panic::catch_unwind(|| panic!("static")).unwrap_err();
        let err = EvalError::from_panic(payload.as_ref());
        assert!(err.to_string().contains("static"));
    }

    #[test]
    fn constructors_classify() {
        assert_eq!(EvalError::new("x").kind(), ErrorKind::Permanent);
        assert!(!EvalError::new("x").is_transient());
        assert_eq!(EvalError::transient("x").kind(), ErrorKind::Transient);
        assert!(EvalError::transient("x").is_transient());
        assert_eq!(EvalError::deadline("x").kind(), ErrorKind::DeadlineExceeded);
        assert!(!EvalError::deadline("x").is_transient());
    }

    #[test]
    fn display_is_the_message_alone() {
        // stdout stability: the kind never leaks into printed diagnostics.
        assert_eq!(EvalError::transient("flaky link").to_string(), "flaky link");
        assert_eq!(ErrorKind::DeadlineExceeded.to_string(), "deadline-exceeded");
    }

    #[test]
    fn kind_participates_in_equality() {
        assert_ne!(EvalError::new("x"), EvalError::transient("x"));
        assert_eq!(EvalError::transient("x"), EvalError::transient("x"));
    }
}
