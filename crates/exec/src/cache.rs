//! A sharded concurrent memo cache with exactly-once compute semantics.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasher, Hash, RandomState};
use std::sync::atomic::Ordering;

use crate::sync::{AtomicU64, Condvar, Mutex};

struct ShardState<K, V> {
    map: HashMap<K, V>,
    /// Keys some thread is currently computing. Racing threads wait on the
    /// shard's condvar instead of duplicating the (expensive) compute.
    in_flight: HashSet<K>,
}

struct Shard<K, V> {
    state: Mutex<ShardState<K, V>>,
    settled: Condvar,
}

impl<K, V> Shard<K, V> {
    fn new(index: usize) -> Self {
        Self {
            state: Mutex::named(
                ShardState {
                    map: HashMap::new(),
                    in_flight: HashSet::new(),
                },
                &format!("cache.shard{index}"),
            ),
            settled: Condvar::new(),
        }
    }
}

/// Removes the in-flight marker even if the compute panics, so waiters
/// wake up and retry (one of them becomes the new computer) instead of
/// hanging forever.
struct InFlightGuard<'a, K: Eq + Hash + Clone, V> {
    shard: &'a Shard<K, V>,
    key: &'a K,
    armed: bool,
}

impl<K: Eq + Hash + Clone, V> Drop for InFlightGuard<'_, K, V> {
    fn drop(&mut self) {
        if self.armed {
            let mut state = self.shard.state.lock();
            state.in_flight.remove(self.key);
            drop(state);
            self.shard.settled.notify_all();
        }
    }
}

/// A concurrent memoization cache keyed by cheap fingerprints.
///
/// The map is split over mutex-protected shards so lookups from different
/// workers rarely contend, and no lock is ever held *during* a compute.
/// When two workers miss the same key simultaneously, one computes while
/// the other waits on the shard's condvar and then reads the cached value:
/// every key is computed **exactly once** per process. That makes the
/// miss counter — the workspace's "unique simulations" metric —
/// independent of the thread count, which the cross-thread determinism
/// suite asserts.
///
/// Values are returned by clone; keep them small and `Copy`-like (the
/// workspace caches 24-byte `Evaluation` structs).
pub struct EvalCache<K, V> {
    shards: Box<[Shard<K, V>]>,
    /// Shard selection must be stable for the cache's lifetime, so one
    /// hasher instance is fixed at construction (per-`HashMap` random
    /// states would disagree with each other).
    hasher: RandomState,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<K, V> std::fmt::Debug for EvalCache<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EvalCache")
            .field("shards", &self.shards.len())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .finish()
    }
}

impl<K, V> EvalCache<K, V> {
    /// Lookups answered from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Unique computes performed — the workspace's "unique simulations"
    /// count. Independent of thread count by the exactly-once contract.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

impl<K: Eq + Hash + Clone, V: Clone> Default for EvalCache<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Eq + Hash + Clone, V: Clone> EvalCache<K, V> {
    /// A cache with the default shard count (32).
    pub fn new() -> Self {
        Self::with_shards(32)
    }

    /// A cache with `shards` shards (rounded up to a power of two, at
    /// least 1).
    pub fn with_shards(shards: usize) -> Self {
        let count = shards.max(1).next_power_of_two();
        Self {
            shards: (0..count).map(Shard::new).collect(),
            hasher: RandomState::new(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &K) -> &Shard<K, V> {
        let index = self.hasher.hash_one(key) as usize & (self.shards.len() - 1);
        &self.shards[index]
    }

    /// Returns the cached value for `key`, or runs `compute` (without
    /// holding any lock) and caches its result.
    ///
    /// Concurrent callers with the same key are coalesced: exactly one
    /// runs `compute`, the rest block until the value lands. If the
    /// compute panics, the panic propagates to its caller and one of the
    /// waiters retries the computation.
    pub fn get_or_compute(&self, key: K, compute: impl FnOnce() -> V) -> V {
        let shard = self.shard(&key);
        {
            let mut state = shard.state.lock();
            loop {
                if let Some(value) = state.map.get(&key) {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return value.clone();
                }
                if state.in_flight.contains(&key) {
                    // Predicate wait: immune to spurious wakeups, and the
                    // in-flight set (not a boolean) is the predicate, so a
                    // wakeup for a *different* key on this shard loops too.
                    state = shard
                        .settled
                        .wait_while(state, |s| s.in_flight.contains(&key));
                    continue;
                }
                state.in_flight.insert(key.clone());
                break;
            }
        }
        let mut guard = InFlightGuard {
            shard,
            key: &key,
            armed: true,
        };
        let value = compute();
        {
            let mut state = shard.state.lock();
            state.map.insert(key.clone(), value.clone());
            state.in_flight.remove(&key);
        }
        guard.armed = false;
        shard.settled.notify_all();
        self.misses.fetch_add(1, Ordering::Relaxed);
        value
    }

    /// The cached value for `key`, if present.
    pub fn get(&self, key: &K) -> Option<V> {
        let state = self.shard(key).state.lock();
        state.map.get(key).cloned()
    }

    /// Inserts `value` for `key` if nothing is cached yet, *without*
    /// counting a miss — the import half of cache persistence. A seeded
    /// entry is indistinguishable from a computed one to later lookups
    /// (they count hits as usual), so a daemon restarted over a spilled
    /// segment reports the same hit/miss arithmetic as one that never
    /// died. Returns whether the value was inserted; an existing entry
    /// (or an in-flight compute, whose result is authoritative) wins.
    pub fn seed(&self, key: K, value: V) -> bool {
        let mut state = self.shard(&key).state.lock();
        if state.map.contains_key(&key) || state.in_flight.contains(&key) {
            return false;
        }
        state.map.insert(key, value);
        true
    }

    /// Clones out every settled entry — the export half of cache
    /// persistence. In-flight computes are not included (they have no
    /// value yet). Iteration order is unspecified (per-shard `HashMap`
    /// order); callers that need determinism sort by key.
    pub fn snapshot(&self) -> Vec<(K, V)> {
        let mut out = Vec::new();
        for shard in self.shards.iter() {
            let state = shard.state.lock();
            out.extend(state.map.iter().map(|(k, v)| (k.clone(), v.clone())));
        }
        out
    }

    /// Drops the cached entry for `key`, returning whether one existed.
    ///
    /// The next [`get_or_compute`](Self::get_or_compute) for the key runs
    /// its compute again (and counts another miss). A concurrent in-flight
    /// compute for the key is unaffected: its result lands after the
    /// removal, exactly as if the removal had happened first. This exists
    /// for the chaos-injection layer, which drops entries to prove the
    /// exactly-once machinery recomputes identical values.
    pub fn remove(&self, key: &K) -> bool {
        let mut state = self.shard(key).state.lock();
        state.map.remove(key).is_some()
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.state.lock().map.len()).sum()
    }

    /// True if nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(all(test, not(feature = "shadow")))]
mod tests {
    use super::*;

    #[test]
    fn caches_and_counts() {
        let cache: EvalCache<u64, u64> = EvalCache::new();
        assert!(cache.is_empty());
        assert_eq!(cache.get_or_compute(3, || 30), 30);
        assert_eq!(cache.get_or_compute(3, || unreachable!("cached")), 30);
        assert_eq!(cache.get(&3), Some(30));
        assert_eq!(cache.get(&4), None);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        let cache: EvalCache<u64, u64> = EvalCache::with_shards(3);
        assert_eq!(cache.shards.len(), 4);
        let cache: EvalCache<u64, u64> = EvalCache::with_shards(0);
        assert_eq!(cache.shards.len(), 1);
    }

    #[test]
    fn remove_forces_a_recompute() {
        let cache: EvalCache<u64, u64> = EvalCache::new();
        assert_eq!(cache.get_or_compute(5, || 50), 50);
        assert!(cache.remove(&5));
        assert!(!cache.remove(&5));
        assert_eq!(cache.get(&5), None);
        assert_eq!(cache.get_or_compute(5, || 50), 50);
        assert_eq!((cache.hits(), cache.misses()), (0, 2));
    }

    #[test]
    fn seed_and_snapshot_bypass_the_miss_counter() {
        let cache: EvalCache<u64, u64> = EvalCache::new();
        assert!(cache.seed(7, 70));
        assert!(!cache.seed(7, 71), "an existing entry wins");
        assert_eq!(cache.get_or_compute(7, || unreachable!("seeded")), 70);
        // The seed cost no miss; the lookup was an ordinary hit.
        assert_eq!((cache.hits(), cache.misses()), (1, 0));
        cache.get_or_compute(8, || 80);
        let mut snap = cache.snapshot();
        snap.sort_unstable();
        assert_eq!(snap, vec![(7, 70), (8, 80)]);
    }

    #[test]
    fn panicking_compute_unblocks_waiters() {
        let cache: EvalCache<u64, u64> = EvalCache::with_shards(1);
        let boom = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            cache.get_or_compute(9, || panic!("compute failed"))
        }));
        assert!(boom.is_err());
        // The in-flight marker was cleaned up; a retry computes normally.
        assert_eq!(cache.get_or_compute(9, || 90), 90);
    }
}
