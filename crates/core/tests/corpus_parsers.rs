//! Corpus fuzz tests for the two on-disk text formats hi-opt parses:
//! explore checkpoints (`ExploreCheckpoint::from_text`) and fault suites
//! (`parse_fault_suite`).
//!
//! Both parsers promise to be *total*: any byte soup — truncation at any
//! boundary, bit-flipped hex floats, overlong lines, CRLF endings, one
//! format fed to the other's parser — yields a typed error, never a
//! panic and never a silently-partial result. The corpus under
//! `tests/corpus/` pins real-world shapes (files a crashed writer or a
//! flaky disk actually produces); the tests below additionally mutate
//! the well-formed seeds systematically.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;

use hi_core::{parse_fault_suite, ExploreCheckpoint, SuiteParseError};

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

fn corpus_file(name: &str) -> String {
    let path = corpus_dir().join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("corpus file {} unreadable: {e}", path.display()))
}

fn corpus_files() -> Vec<(String, String)> {
    let mut files: Vec<(String, String)> = std::fs::read_dir(corpus_dir())
        .expect("tests/corpus exists")
        .map(|entry| entry.expect("corpus entry readable").file_name())
        .map(|name| name.to_string_lossy().into_owned())
        .map(|name| (corpus_file(&name), name))
        .map(|(text, name)| (name, text))
        .collect();
    files.sort();
    assert!(files.len() >= 10, "corpus went missing: {files:?}");
    files
}

/// Runs both parsers on `text` and asserts neither panics; returns the
/// checkpoint parser's verdict for callers that care.
fn both_parsers_survive(context: &str, text: &str) -> Result<ExploreCheckpoint, String> {
    let checkpoint = catch_unwind(AssertUnwindSafe(|| ExploreCheckpoint::from_text(text)))
        .unwrap_or_else(|_| panic!("checkpoint parser panicked on {context}"));
    let _ = catch_unwind(AssertUnwindSafe(|| parse_fault_suite(text)))
        .unwrap_or_else(|_| panic!("suite parser panicked on {context}"));
    checkpoint
}

#[test]
fn every_corpus_file_feeds_both_parsers_without_panicking() {
    // Cross-feeding is deliberate: a user pointing --resume at a fault
    // suite (or --faults at a checkpoint) must get a diagnostic, not a
    // crash.
    for (name, text) in corpus_files() {
        let _ = both_parsers_survive(&name, &text);
    }
}

#[test]
fn wellformed_corpus_checkpoints_parse() {
    let feasible = ExploreCheckpoint::from_text(&corpus_file("checkpoint_v2_feasible.ck"))
        .expect("the committed v2 checkpoint is valid");
    assert!(feasible.best.is_some());
    assert_eq!(feasible.cuts.len(), 3);

    let infeasible = ExploreCheckpoint::from_text(&corpus_file("checkpoint_v2_infeasible.ck"))
        .expect("the committed infeasible checkpoint is valid");
    assert!(infeasible.best.is_none());

    // v1 (pre-CRC) files remain loadable, with and without CRLF endings:
    // they carry no trailer, so line endings are free to vary.
    let legacy = ExploreCheckpoint::from_text(&corpus_file("checkpoint_v1_legacy.ck"))
        .expect("the legacy v1 checkpoint still parses");
    let legacy_crlf = ExploreCheckpoint::from_text(&corpus_file("checkpoint_v1_crlf.ck"))
        .expect("a CRLF-rewritten v1 checkpoint still parses");
    assert_eq!(legacy, legacy_crlf);
    assert_eq!(legacy.best, feasible.best);
}

#[test]
fn wellformed_corpus_suites_parse() {
    let (suite, windows) = parse_fault_suite(&corpus_file("suite_demo.suite"))
        .expect("the committed demo suite is valid");
    assert_eq!(suite.len(), 3);
    assert_eq!(windows.len(), 4);

    let (crlf, crlf_windows) = parse_fault_suite(&corpus_file("suite_crlf.suite"))
        .expect("a CRLF-rewritten suite parses identically");
    assert_eq!(crlf.len(), suite.len());
    assert_eq!(crlf_windows, windows);
}

#[test]
fn malformed_corpus_checkpoints_yield_typed_errors() {
    let check = |name: &str, needle: &str| {
        let err = ExploreCheckpoint::from_text(&corpus_file(name))
            .expect_err("the corpus file is malformed on purpose");
        assert!(err.contains(needle), "{name}: {err:?} lacks {needle:?}");
    };
    check("checkpoint_torn_mid_float.ck", "missing crc32 trailer");
    check("checkpoint_bit_rot.ck", "crc32 mismatch");
    check("checkpoint_wrong_header.ck", "line 1");
    // An overlong (64 KiB) hex field is named with its line, not OOM'd or
    // panicked over.
    check("checkpoint_overlong_line.ck", "line 7");
    // CRLF inside a *v2* file corrupts the CRC-covered body, so it is
    // named corrupt — resuming from it would not be bit-identical.
    check("checkpoint_v2_crlf.ck", "crc32 mismatch");
}

#[test]
fn malformed_corpus_suites_yield_typed_errors() {
    match parse_fault_suite(&corpus_file("suite_comments_only.suite")) {
        Err(SuiteParseError::NoScenario) => {}
        other => panic!("comments-only suite: {other:?}"),
    }
    match parse_fault_suite(&corpus_file("suite_entry_before_scenario.suite")) {
        Err(SuiteParseError::Line { line: 1, message }) => {
            assert!(message.contains("before any `scenario`"), "{message}");
        }
        other => panic!("entry-before-scenario suite: {other:?}"),
    }
    // The first bad line wins, 1-based.
    match parse_fault_suite(&corpus_file("suite_bad_fields.suite")) {
        Err(SuiteParseError::Line { line: 2, message }) => {
            assert!(message.contains("out of range"), "{message}");
        }
        other => panic!("bad-fields suite: {other:?}"),
    }
}

#[test]
fn truncation_at_every_byte_never_panics_and_never_silently_resumes() {
    let text = corpus_file("checkpoint_v2_feasible.ck");
    // Dropping only the final newline loses no protected byte, so the
    // file is still whole; any shorter prefix must be rejected.
    let whole = text.trim_end().len();
    for cut in 0..text.len() {
        if !text.is_char_boundary(cut) {
            continue;
        }
        let prefix = &text[..cut];
        let result =
            both_parsers_survive(&format!("v2 checkpoint truncated at byte {cut}"), prefix);
        assert_eq!(
            result.is_err(),
            cut < whole,
            "truncation at byte {cut} parsed as a valid checkpoint"
        );
    }

    // Suites have no trailer, so a prefix ending on a line boundary may
    // legitimately parse (it is a shorter well-formed suite) — but no
    // truncation point may panic.
    let suite = corpus_file("suite_demo.suite");
    for cut in 0..suite.len() {
        if suite.is_char_boundary(cut) {
            let _ = both_parsers_survive(&format!("suite truncated at byte {cut}"), &suite[..cut]);
        }
    }
}

#[test]
fn bit_flips_in_v2_hex_floats_are_always_caught() {
    // CRC-32 detects every single-bit error, so any flip inside the
    // CRC-covered body must surface as *some* error — usually the CRC
    // mismatch, occasionally a trailer/heading error when the flip lands
    // on structure. Never Ok, never a panic.
    let text = corpus_file("checkpoint_v2_feasible.ck");
    let body_len = text.rfind("crc32 ").expect("v2 file has a trailer");
    let bytes = text.as_bytes();
    for at in 0..body_len {
        for bit in 0..8 {
            let mut mutated = bytes.to_vec();
            mutated[at] ^= 1 << bit;
            let Ok(mutated) = String::from_utf8(mutated) else {
                continue; // the parsers take &str; invalid UTF-8 can't reach them
            };
            let result =
                both_parsers_survive(&format!("v2 checkpoint bit {bit} of byte {at}"), &mutated);
            assert!(
                result.is_err(),
                "flipping bit {bit} of byte {at} went undetected"
            );
        }
    }
}

#[test]
fn bit_flips_in_v1_hex_floats_never_panic() {
    // v1 has no CRC: a flipped hex digit may even parse to a different
    // float (exactly the silent-corruption window v2 closes). The
    // contract v1 still owes is totality — no flip may panic.
    let text = corpus_file("checkpoint_v1_legacy.ck");
    let bytes = text.as_bytes();
    for at in 0..bytes.len() {
        for bit in 0..8 {
            let mut mutated = bytes.to_vec();
            mutated[at] ^= 1 << bit;
            if let Ok(mutated) = String::from_utf8(mutated) {
                let _ = both_parsers_survive(
                    &format!("v1 checkpoint bit {bit} of byte {at}"),
                    &mutated,
                );
            }
        }
    }
}

#[test]
fn overlong_lines_are_rejected_or_ignored_but_never_panic() {
    // Synthetic monsters beyond the committed corpus: megabyte lines in
    // every structural position of both formats.
    let long = "x".repeat(1 << 20);
    let checkpoint = corpus_file("checkpoint_v2_feasible.ck");
    let suite = corpus_file("suite_demo.suite");
    let cases = [
        format!("{long}\n"),
        format!("hi-opt explore checkpoint v2\npdr_min {long}\n"),
        checkpoint.replace("cut ", &format!("cut {long}")),
        format!("{checkpoint}{long}"),
        format!("scenario {long}\noutage 5 1 3\n"),
        suite.replace("outage 5", &format!("outage {long}")),
        format!("# {long}\n{suite}"),
    ];
    for (i, case) in cases.iter().enumerate() {
        let _ = both_parsers_survive(&format!("overlong case {i}"), case);
    }
}

#[test]
fn suite_overlong_numerals_degrade_to_typed_results() {
    // A 4096-digit literal overflows f64 to +inf, which the grammar
    // accepts only where `inf` is legal (window ends). The committed
    // corpus file exercises that path; whichever way it lands, it must
    // be a typed Result.
    let text = corpus_file("suite_overlong_line.suite");
    let result = catch_unwind(AssertUnwindSafe(|| parse_fault_suite(&text)))
        .expect("suite parser panicked on overlong numerals");
    if let Ok((suite, _)) = result {
        assert_eq!(suite.len(), 1);
    }
}
