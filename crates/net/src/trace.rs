//! Packet-journey tracing.
//!
//! A traced run records every application, MAC and radio milestone with
//! its timestamp, so a packet's fate — generated, transmitted, relayed,
//! collided, delivered or dropped — can be reconstructed exactly.
//! Tracing is off by default (zero overhead); turn it on with
//! [`NetworkSim::run_traced`](crate::NetworkSim::run_traced).

use hi_des::SimTime;

/// One traced milestone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// The application layer emitted a packet.
    Generated {
        /// Timestamp.
        t: SimTime,
        /// Generating node.
        node: usize,
        /// Sequence number.
        seq: u32,
    },
    /// A node put a packet on the air.
    TxStart {
        /// Timestamp.
        t: SimTime,
        /// Transmitting node.
        node: usize,
        /// Packet origin.
        origin: usize,
        /// Packet sequence number.
        seq: u32,
        /// Whether this is a relayed copy.
        relay: bool,
    },
    /// A clean copy reached a node's stack.
    Delivered {
        /// Timestamp (end of reception).
        t: SimTime,
        /// Receiving node.
        rx: usize,
        /// Packet origin.
        origin: usize,
        /// Packet sequence number.
        seq: u32,
    },
    /// A reception was corrupted by a collision (or the receiver turned
    /// transmitter mid-reception).
    Corrupted {
        /// Timestamp (end of the corrupted reception).
        t: SimTime,
        /// The would-be receiver.
        rx: usize,
        /// The transmitter whose packet was lost at `rx`.
        tx: usize,
    },
    /// A packet was rejected by a full MAC buffer.
    BufferDrop {
        /// Timestamp.
        t: SimTime,
        /// Dropping node.
        node: usize,
    },
    /// Non-persistent CSMA exhausted its attempts and abandoned a packet.
    MacDrop {
        /// Timestamp.
        t: SimTime,
        /// Dropping node.
        node: usize,
    },
    /// A scheduled fault killed a node.
    NodeFailed {
        /// Timestamp.
        t: SimTime,
        /// The failed node.
        node: usize,
    },
    /// A crash/recover window closed and the node rebooted.
    NodeRecovered {
        /// Timestamp.
        t: SimTime,
        /// The recovered node.
        node: usize,
    },
}

impl TraceEvent {
    /// The event's timestamp.
    pub fn time(&self) -> SimTime {
        match *self {
            TraceEvent::Generated { t, .. }
            | TraceEvent::TxStart { t, .. }
            | TraceEvent::Delivered { t, .. }
            | TraceEvent::Corrupted { t, .. }
            | TraceEvent::BufferDrop { t, .. }
            | TraceEvent::MacDrop { t, .. }
            | TraceEvent::NodeFailed { t, .. }
            | TraceEvent::NodeRecovered { t, .. } => t,
        }
    }
}

impl std::fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            TraceEvent::Generated { t, node, seq } => {
                write!(f, "{t} gen    n{node} seq {seq}")
            }
            TraceEvent::TxStart {
                t,
                node,
                origin,
                seq,
                relay,
            } => write!(
                f,
                "{t} tx     n{node} ({}{origin}:{seq})",
                if relay { "relay " } else { "" }
            ),
            TraceEvent::Delivered { t, rx, origin, seq } => {
                write!(f, "{t} rx     n{rx} <- {origin}:{seq}")
            }
            TraceEvent::Corrupted { t, rx, tx } => {
                write!(f, "{t} COLL   n{rx} lost frame from n{tx}")
            }
            TraceEvent::BufferDrop { t, node } => write!(f, "{t} DROP-Q n{node}"),
            TraceEvent::MacDrop { t, node } => write!(f, "{t} DROP-M n{node}"),
            TraceEvent::NodeFailed { t, node } => write!(f, "{t} FAIL   n{node}"),
            TraceEvent::NodeRecovered { t, node } => write!(f, "{t} RECOV  n{node}"),
        }
    }
}

/// Renders a trace as one line per event.
pub fn render(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&e.to_string());
        out.push('\n');
    }
    out
}

/// Follows one packet `(origin, seq)` through a trace.
pub fn packet_journey(events: &[TraceEvent], origin: usize, seq: u32) -> Vec<TraceEvent> {
    events
        .iter()
        .filter(|e| match **e {
            TraceEvent::Generated { node, seq: s, .. } => node == origin && s == seq,
            TraceEvent::TxStart {
                origin: o, seq: s, ..
            }
            | TraceEvent::Delivered {
                origin: o, seq: s, ..
            } => o == origin && s == seq,
            _ => false,
        })
        .copied()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn display_formats() {
        let e = TraceEvent::Delivered {
            t: t(1_000),
            rx: 2,
            origin: 0,
            seq: 7,
        };
        assert_eq!(e.to_string(), "0.000001000s rx     n2 <- 0:7");
    }

    #[test]
    fn journey_filters_by_identity() {
        let events = vec![
            TraceEvent::Generated {
                t: t(0),
                node: 0,
                seq: 1,
            },
            TraceEvent::Generated {
                t: t(0),
                node: 1,
                seq: 1,
            },
            TraceEvent::TxStart {
                t: t(10),
                node: 0,
                origin: 0,
                seq: 1,
                relay: false,
            },
            TraceEvent::Delivered {
                t: t(20),
                rx: 2,
                origin: 0,
                seq: 1,
            },
            TraceEvent::Delivered {
                t: t(30),
                rx: 2,
                origin: 1,
                seq: 1,
            },
        ];
        let j = packet_journey(&events, 0, 1);
        assert_eq!(j.len(), 3);
        assert!(matches!(j[2], TraceEvent::Delivered { rx: 2, .. }));
    }

    #[test]
    fn render_is_one_line_per_event() {
        let events = vec![
            TraceEvent::BufferDrop { t: t(5), node: 3 },
            TraceEvent::NodeFailed { t: t(9), node: 1 },
        ];
        let s = render(&events);
        assert_eq!(s.lines().count(), 2);
        assert!(s.contains("DROP-Q n3"));
        assert!(s.contains("FAIL   n1"));
    }

    #[test]
    fn time_accessor() {
        let e = TraceEvent::MacDrop { t: t(42), node: 0 };
        assert_eq!(e.time(), t(42));
    }
}
