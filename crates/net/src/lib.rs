//! WBAN network simulator for the Human Intranet.
//!
//! This crate is the discrete-event network-simulation substrate of the
//! `hi-opt` workspace (the role Castalia/OMNeT++ plays in the DAC 2017
//! paper). It models the four-layer node stack of the paper's §2.1.2 over
//! the [`hi_des`] kernel and the [`hi_channel`] body channel:
//!
//! * **Radio** — the TI CC2650 of Table 1 ([`RadioParams::cc2650`]), with
//!   three selectable transmit power levels ([`TxPower`]), a link-budget
//!   reception rule and per-transmission/reception energy metering.
//! * **MAC** — non-persistent CSMA (Castalia's `TunableMAC` flavour) or
//!   round-robin TDMA with 1 ms slots ([`MacKind`]).
//! * **Routing** — star with a relaying coordinator, or controlled
//!   flooding mesh with hop counter and visited history ([`Routing`]).
//! * **Application** — periodic fixed-size packets with sequence numbers,
//!   from which the packet delivery ratio (eqs. 6–7) and network lifetime
//!   (eq. 4) are computed ([`SimOutcome`]).
//!
//! # Example
//!
//! Simulate the paper's 4-node star at 0 dBm for one simulated minute:
//!
//! ```
//! use hi_channel::{BodyLocation, ChannelParams};
//! use hi_des::SimDuration;
//! use hi_net::{simulate_stochastic, MacKind, NetworkConfig, Routing, TxPower};
//!
//! # fn main() -> Result<(), hi_net::ConfigError> {
//! let cfg = NetworkConfig::new(
//!     vec![
//!         BodyLocation::Chest,
//!         BodyLocation::LeftHip,
//!         BodyLocation::LeftAnkle,
//!         BodyLocation::LeftWrist,
//!     ],
//!     TxPower::ZeroDbm,
//!     MacKind::csma(),
//!     Routing::Star { coordinator: 0 },
//! );
//! let out = simulate_stochastic(&cfg, ChannelParams::default(),
//!                               SimDuration::from_secs(60.0), 7)?;
//! assert!(out.pdr > 0.5 && out.pdr <= 1.0);
//! assert!(out.nlt_days > 1.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod fault;
pub mod medium;
mod metrics;
mod packet;
mod params;
mod runner;
mod sim;
pub mod trace;

pub use fault::{
    BatteryDepletion, FaultScenario, InterferenceBurst, LinkBlackout, SiteOutage, BLACKOUT_LOSS_DB,
};
pub use hi_des::fault::Window;
pub use metrics::{
    average_outcomes, network_lifetime_days, LatencyStats, SimOutcome, TrafficCounts,
};
pub use packet::Packet;
pub use params::{
    AlohaParams, AppParams, ConfigError, CsmaAccessMode, CsmaParams, FloodMode, HybridParams,
    MacKind, NetworkConfig, NodeFault, RadioParams, Routing, TdmaParams, TxPower, CR2032_ENERGY_J,
};
pub use runner::{
    simulate, simulate_averaged, simulate_averaged_budgeted, simulate_stochastic,
    simulate_stochastic_budgeted, SimError,
};
pub use sim::{DeadlineExceeded, NetworkSim};
