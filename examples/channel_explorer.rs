//! Inspect the body-area channel model: the average path-loss matrix over
//! the ten candidate sites (the synthetic stand-in for the paper's NICTA
//! measurement dataset) and a fading trace from the conditional
//! (Gauss–Markov) temporal-variation process of eq. (1).
//!
//! ```sh
//! cargo run --release -p hi-opt --example channel_explorer
//! ```

use hi_opt::channel::{
    BodyLocation, Channel, ChannelModel, ChannelParams, PathLossMatrix, PathLossParams,
};
use hi_opt::des::SimTime;
use hi_opt::net::{RadioParams, TxPower};

fn main() {
    let params = PathLossParams::default();
    let matrix = PathLossMatrix::synthetic(&params);

    println!("average path loss PL̄_ij (dB) over the 10 candidate sites:\n");
    print!("{:>8}", "");
    for b in BodyLocation::ALL {
        print!("{:>8}", b.name());
    }
    println!();
    for a in BodyLocation::ALL {
        print!("{:>8}", a.name());
        for b in BodyLocation::ALL {
            print!("{:>8.1}", matrix.loss_db(a, b));
        }
        println!();
    }

    println!(
        "\nrange: {:.1} .. {:.1} dB",
        matrix.min_loss_db(),
        matrix.max_loss_db()
    );

    // Which links close at each CC2650 power level?
    println!("\nlink budget (mean path loss vs CC2650 sensitivity of -97 dBm):");
    for power in TxPower::ALL {
        let radio = RadioParams::cc2650(power);
        let mut open = 0;
        let mut total = 0;
        for a in BodyLocation::ALL {
            for b in BodyLocation::ALL {
                if a.index() < b.index() {
                    total += 1;
                    if radio.link_closes(matrix.loss_db(a, b)) {
                        open += 1;
                    }
                }
            }
        }
        println!("  {power:>7}: {open}/{total} links close on average");
    }

    // A short fading trace on the hardest standard link.
    println!("\nfading trace chest->l-ankle, 100 ms steps (PL̄ + δPL(t), dB):");
    let mut channel = Channel::new(ChannelParams::default(), 2024);
    let mean = matrix.loss_db(BodyLocation::Chest, BodyLocation::LeftAnkle);
    for k in 0..20 {
        let t = SimTime::from_secs(0.1 * (k + 1) as f64);
        let pl = channel.path_loss_db(BodyLocation::Chest, BodyLocation::LeftAnkle, t);
        let bar = "#".repeat(((pl - mean + 15.0).max(0.0) / 1.5) as usize);
        println!("  t={:>4.1}s  {:6.1} dB  {}", t.as_secs_f64(), pl, bar);
    }
}
