//! In-flight packet representation.

/// A physical-layer packet, as tracked by the simulator.
///
/// The application payload is abstract; what the simulator carries is the
/// metadata the routing and PDR machinery needs: originator, sequence
/// number, hop counter and visited-node history (the paper's controlled
/// flooding puts the last two in the payload).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Packet {
    /// Index of the node that generated the packet.
    pub origin: usize,
    /// Per-origin sequence number (application layer).
    pub seq: u32,
    /// Number of re-broadcasting hops this copy has traversed.
    pub hops: u8,
    /// Bitmask of node indices this copy has visited (supports up to 16
    /// nodes; the paper's design space tops out at 6).
    pub visited: u16,
    /// Whether this copy is a relay/rebroadcast rather than the original.
    pub relay: bool,
}

impl Packet {
    /// A freshly generated packet from `origin`.
    pub fn new(origin: usize, seq: u32) -> Self {
        Self {
            origin,
            seq,
            hops: 0,
            visited: 1 << origin,
            relay: false,
        }
    }

    /// The unique identity of the underlying application packet.
    pub fn key(&self) -> (usize, u32) {
        (self.origin, self.seq)
    }

    /// Whether `node` appears in this copy's visited history.
    pub fn has_visited(&self, node: usize) -> bool {
        self.visited & (1 << node) != 0
    }

    /// The copy a relaying `node` would rebroadcast: hop counter bumped,
    /// history extended, marked as a relay.
    pub fn relayed_by(&self, node: usize) -> Packet {
        Packet {
            origin: self.origin,
            seq: self.seq,
            hops: self.hops + 1,
            visited: self.visited | (1 << node),
            relay: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_packet_has_visited_origin() {
        let p = Packet::new(3, 17);
        assert!(p.has_visited(3));
        assert!(!p.has_visited(0));
        assert_eq!(p.hops, 0);
        assert!(!p.relay);
        assert_eq!(p.key(), (3, 17));
    }

    #[test]
    fn relay_extends_history_and_bumps_hops() {
        let p = Packet::new(0, 5).relayed_by(2);
        assert!(p.has_visited(0));
        assert!(p.has_visited(2));
        assert!(!p.has_visited(1));
        assert_eq!(p.hops, 1);
        assert!(p.relay);
        assert_eq!(p.key(), (0, 5)); // identity preserved
    }

    #[test]
    fn chained_relays() {
        let p = Packet::new(1, 9).relayed_by(4).relayed_by(7);
        assert_eq!(p.hops, 2);
        assert!(p.has_visited(1) && p.has_visited(4) && p.has_visited(7));
    }
}
