//! `hi-opt` — Optimized Design of a Human Intranet Network.
//!
//! Umbrella crate for the open-source reproduction of Moin, Nuzzo,
//! Sangiovanni-Vincentelli and Rabaey, *"Optimized Design of a Human
//! Intranet Network"*, DAC 2017. It re-exports the workspace crates under
//! one roof:
//!
//! * [`exec`] — the deterministic parallel execution engine (work-stealing
//!   pool, shared evaluation cache, cancellation);
//! * [`check`] — the loom-style model checker that verifies [`exec`]'s
//!   concurrency protocols across thread interleavings;
//! * [`milp`] — the exact MILP solver (simplex + branch & bound + pools);
//! * [`lint`] — the static analyzer over models, schedules and spaces;
//! * [`des`] — the discrete-event simulation kernel;
//! * [`channel`] — the time-varying on-body wireless channel;
//! * [`net`] — the WBAN stack simulator (radio / MAC / routing / app);
//! * [`trace`] — the observability subsystem (structured tracing, metrics
//!   registry, JSONL / Chrome-trace export);
//! * [`serve`] — the fleet-optimization job service (wire protocol,
//!   per-user profiles, cross-user evaluation-cache dedup);
//! * [`core`] — the design-space explorer (Algorithm 1 and baselines),
//!   whose items are also re-exported at the top level.
//!
//! The [`cli`] module carries the `hi-opt` binary's shared plumbing
//! (trace sessions, stop notices) so it stays unit-testable.
//!
//! # Example
//!
//! ```
//! use hi_opt::{explore, Problem, SimEvaluator};
//! use hi_opt::channel::ChannelParams;
//! use hi_opt::des::SimDuration;
//!
//! # fn main() -> Result<(), hi_opt::ExploreError> {
//! let problem = Problem::paper_default(0.60);
//! let mut sim = SimEvaluator::new(ChannelParams::default(),
//!                                 SimDuration::from_secs(10.0), 1, 1);
//! let outcome = explore(&problem, &mut sim)?;
//! assert!(outcome.is_feasible());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use hi_channel as channel;
pub use hi_check as check;
pub use hi_core as core;
pub use hi_des as des;
pub use hi_exec as exec;
pub use hi_lint as lint;
pub use hi_milp as milp;
pub use hi_net as net;
pub use hi_pareto as pareto;
pub use hi_serve as serve;
pub use hi_trace as trace;

pub mod cli;

pub use hi_core::{
    deviation_power_mw, exhaustive_search, exhaustive_search_par, explore, explore_par,
    explore_par_from, explore_par_observed, explore_tradeoff, explore_tradeoff_par,
    explore_with_options, ilp_heuristic_search, load_checkpoint_file, load_recovering,
    parse_fault_suite, robust_milp_search, simulated_annealing, simulated_annealing_restarts,
    supervision_spec, warmup_events_floor, AppProfile, CancelToken, ChaosPolicy,
    CheckpointLoadError, CheckpointRecovery, DesignPoint, DesignSpace, EvalError, Evaluation,
    Evaluator, ExecContext, ExhaustiveOutcome, ExplorationOutcome, ExploreCheckpoint, ExploreError,
    ExploreOptions, FaultSuite, FnEvaluator, LinkDeviation, MacChoice, MilpEncoding, Placement,
    PointEvaluator, Problem, RetryPolicy, RobustEvaluation, RobustEvaluator, RobustMode,
    RobustOutcome, RobustnessSpec, RouteChoice, SaOutcome, SaParams, SharedSimEvaluator,
    SimEvaluator, SimProtocol, StopReason, SuiteParseError, SupervisedEvaluator, Supervisor,
    TopologyConstraints, TradeoffPoint, DEVIATION_CAP_DB, ENGINE_ALGORITHM1, ENGINE_ILP_HEURISTIC,
    ENGINE_ROBUST_MILP,
};
