//! Wireless body-area channel model for the Human Intranet.
//!
//! The DAC 2017 paper models the instantaneous path loss between two
//! on-body locations `(i, j)` as (its eq. 1)
//!
//! ```text
//! PL_ij(t) = PL̄_ij + δPL_ij(t)
//! ```
//!
//! where `PL̄_ij` is a per-link average inferred from a two-hour measurement
//! campaign on human subjects (the NICTA open dataset) and `δPL_ij(t)` is a
//! temporally correlated random process whose conditional density depends
//! on the previously observed value and the elapsed time — exactly the
//! conditional-probability link model of Smith, Boulis & Tselishchev.
//!
//! **Substitution note (see DESIGN.md §2).** The measurement dataset is not
//! redistributable, so this crate generates `PL̄_ij` *synthetically* from
//! the geometry of the ten named body sites ([`BodyLocation`]): log-distance
//! path loss plus an around-torso non-line-of-sight penalty, calibrated to
//! the dynamic range reported for on-body 2.4 GHz links (≈45–90 dB). The
//! temporal term is an Ornstein–Uhlenbeck (Gauss–Markov) process: its
//! conditional density given the last observation `δ0` after elapsed `Δt`
//! is `N(ρ·δ0, σ²(1−ρ²))` with `ρ = exp(−Δt/τ)` — the same
//! "depends on the previous value and the elapsed time" structure as the
//! paper's empirical model, with a stationary `N(0, σ²)` marginal.
//!
//! # Example
//!
//! ```
//! use hi_channel::{BodyLocation, Channel, ChannelModel, ChannelParams};
//! use hi_des::SimTime;
//!
//! let mut ch = Channel::new(ChannelParams::default(), 42);
//! let pl = ch.path_loss_db(BodyLocation::Chest, BodyLocation::LeftWrist,
//!                          SimTime::from_secs(1.0));
//! assert!(pl > 30.0 && pl < 120.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod csv;
pub mod linkstats;
mod location;
mod pathloss;
pub mod posture;
mod sampler;
mod variation;

pub use location::BodyLocation;
pub use pathloss::{PathLossMatrix, PathLossParams};
pub use sampler::{Channel, ChannelModel, ChannelParams, StaticChannel};
pub use variation::{OuProcess, VariationParams};
