//! Run-statistics collectors.
//!
//! These are the standard DES observation tools: event [`Counter`]s,
//! sample [`Tally`]s (Welford mean/variance), [`TimeWeighted`] averages for
//! state variables (e.g. queue length, radio power state) and a fixed-bin
//! [`Histogram`].

use crate::{SimDuration, SimTime};

/// A monotonically increasing event counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments by one.
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// The current count.
    pub fn count(&self) -> u64 {
        self.0
    }
}

/// Welford's online mean/variance over observed samples.
#[derive(Debug, Clone, Copy, Default)]
pub struct Tally {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Tally {
    /// Creates an empty tally.
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (0 with fewer than 2 samples).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample (`+inf` if empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample (`-inf` if empty).
    pub fn max(&self) -> f64 {
        self.max
    }
}

/// Time-weighted average of a piecewise-constant state variable.
///
/// Call [`update`](TimeWeighted::update) whenever the value changes; the
/// integral `∫ value dt` accumulates between updates.
#[derive(Debug, Clone, Copy)]
pub struct TimeWeighted {
    value: f64,
    last_change: SimTime,
    integral: f64,
    start: SimTime,
}

impl TimeWeighted {
    /// Starts observation at `t0` with the given initial value.
    pub fn new(t0: SimTime, initial: f64) -> Self {
        Self {
            value: initial,
            last_change: t0,
            integral: 0.0,
            start: t0,
        }
    }

    /// Sets a new value effective at time `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` precedes the previous update (time must be monotone).
    pub fn update(&mut self, t: SimTime, value: f64) {
        let dt = t.duration_since(self.last_change);
        self.integral += self.value * dt.as_secs_f64();
        self.value = value;
        self.last_change = t;
    }

    /// The current value.
    pub fn value(&self) -> f64 {
        self.value
    }

    /// `∫ value dt` from start through `t` divided by the elapsed time.
    /// Returns the current value if no time has elapsed.
    pub fn average(&self, t: SimTime) -> f64 {
        let dt = t.duration_since(self.last_change);
        let total = t.duration_since(self.start).as_secs_f64();
        if total == 0.0 {
            return self.value;
        }
        (self.integral + self.value * dt.as_secs_f64()) / total
    }

    /// `∫ value dt` from the start of observation through `t`.
    pub fn integral(&self, t: SimTime) -> f64 {
        let dt = t.duration_since(self.last_change);
        self.integral + self.value * dt.as_secs_f64()
    }
}

/// A histogram with uniform bins over `[lo, hi)` plus under/overflow bins.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram with `nbins` uniform bins over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `nbins == 0` or `lo >= hi`.
    pub fn new(lo: f64, hi: f64, nbins: usize) -> Self {
        assert!(nbins > 0, "histogram needs at least one bin");
        assert!(lo < hi, "histogram range must be non-empty");
        Self {
            lo,
            hi,
            bins: vec![0; nbins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let n = self.bins.len();
            let idx = ((x - self.lo) / (self.hi - self.lo) * n as f64) as usize;
            self.bins[idx.min(n - 1)] += 1;
        }
    }

    /// Per-bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Count of samples below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Count of samples at or above the range's end.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total samples recorded, including under/overflow.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// The `(low_edge, high_edge)` of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn bin_edges(&self, i: usize) -> (f64, f64) {
        assert!(i < self.bins.len());
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        (self.lo + w * i as f64, self.lo + w * (i + 1) as f64)
    }
}

/// Batch-means estimator for steady-state simulation output.
///
/// Correlated observation streams (per-packet latencies, rolling PDR)
/// violate the independence assumption behind naive confidence
/// intervals; grouping consecutive observations into fixed-size batches
/// and treating the batch means as (approximately) independent is the
/// standard remedy. Used to justify the paper's "Tsim = 600 s, 3 runs,
/// <0.5% error" protocol (experiment E4).
#[derive(Debug, Clone)]
pub struct BatchMeans {
    batch_size: u64,
    current_sum: f64,
    current_count: u64,
    batch_means: Vec<f64>,
}

impl BatchMeans {
    /// Creates an estimator with the given batch size.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size` is zero.
    pub fn new(batch_size: u64) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        Self {
            batch_size,
            current_sum: 0.0,
            current_count: 0,
            batch_means: Vec::new(),
        }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        self.current_sum += x;
        self.current_count += 1;
        if self.current_count == self.batch_size {
            self.batch_means
                .push(self.current_sum / self.batch_size as f64);
            self.current_sum = 0.0;
            self.current_count = 0;
        }
    }

    /// Number of completed batches.
    pub fn batches(&self) -> usize {
        self.batch_means.len()
    }

    /// Grand mean over completed batches (0 with no complete batch).
    pub fn mean(&self) -> f64 {
        if self.batch_means.is_empty() {
            return 0.0;
        }
        self.batch_means.iter().sum::<f64>() / self.batch_means.len() as f64
    }

    /// Approximate 95% confidence half-width over the batch means
    /// (normal critical value; `None` with fewer than two batches).
    pub fn half_width_95(&self) -> Option<f64> {
        let k = self.batch_means.len();
        if k < 2 {
            return None;
        }
        let mean = self.mean();
        let var = self
            .batch_means
            .iter()
            .map(|m| (m - mean).powi(2))
            .sum::<f64>()
            / (k - 1) as f64;
        Some(1.96 * (var / k as f64).sqrt())
    }
}

/// Convenience: converts an energy (joules) spent over a duration to the
/// average power in milliwatts.
pub fn average_power_mw(energy_j: f64, elapsed: SimDuration) -> f64 {
    let secs = elapsed.as_secs_f64();
    if secs == 0.0 {
        0.0
    } else {
        energy_j / secs * 1e3
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let mut c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.count(), 5);
    }

    #[test]
    fn tally_mean_and_variance() {
        let mut t = Tally::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            t.record(x);
        }
        assert!((t.mean() - 5.0).abs() < 1e-12);
        // Population variance is 4; sample variance = 32/7.
        assert!((t.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(t.min(), 2.0);
        assert_eq!(t.max(), 9.0);
        assert_eq!(t.count(), 8);
    }

    #[test]
    fn empty_tally_is_safe() {
        let t = Tally::new();
        assert_eq!(t.mean(), 0.0);
        assert_eq!(t.variance(), 0.0);
    }

    #[test]
    fn time_weighted_average() {
        let mut tw = TimeWeighted::new(SimTime::ZERO, 0.0);
        tw.update(SimTime::from_secs(1.0), 10.0); // value 0 for 1 s
        tw.update(SimTime::from_secs(3.0), 0.0); // value 10 for 2 s
        let avg = tw.average(SimTime::from_secs(4.0)); // value 0 for 1 s
        assert!((avg - 20.0 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn time_weighted_integral() {
        let mut tw = TimeWeighted::new(SimTime::ZERO, 1.0);
        tw.update(SimTime::from_secs(2.0), 3.0);
        assert!((tw.integral(SimTime::from_secs(3.0)) - (2.0 + 3.0)).abs() < 1e-12);
    }

    #[test]
    fn histogram_bins_and_overflow() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for x in [0.5, 1.5, 2.5, 9.9, 10.0, -0.1] {
            h.record(x);
        }
        assert_eq!(h.bins(), &[2, 1, 0, 0, 1]);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.total(), 6);
        assert_eq!(h.bin_edges(0), (0.0, 2.0));
    }

    #[test]
    fn batch_means_groups_correctly() {
        let mut bm = BatchMeans::new(3);
        for x in [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0] {
            bm.record(x);
        }
        // Two complete batches: means 2 and 5; the trailing 7 is pending.
        assert_eq!(bm.batches(), 2);
        assert!((bm.mean() - 3.5).abs() < 1e-12);
    }

    #[test]
    fn batch_means_ci_shrinks_with_data() {
        // Deterministic pseudo-noise around 10.
        let mut state = 1u64;
        let mut noise = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) as f64 / (1u64 << 31) as f64) - 0.5
        };
        let mut small = BatchMeans::new(10);
        let mut large = BatchMeans::new(10);
        for i in 0..10_000 {
            let x = 10.0 + noise();
            if i < 200 {
                small.record(x);
            }
            large.record(x);
        }
        let hw_small = small.half_width_95().unwrap();
        let hw_large = large.half_width_95().unwrap();
        assert!(hw_large < hw_small / 2.0, "{hw_large} !< {hw_small}/2");
        assert!((large.mean() - 10.0).abs() < 0.05);
    }

    #[test]
    fn batch_means_needs_two_batches_for_ci() {
        let mut bm = BatchMeans::new(5);
        for _ in 0..5 {
            bm.record(1.0);
        }
        assert_eq!(bm.batches(), 1);
        assert!(bm.half_width_95().is_none());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn batch_means_rejects_zero_size() {
        let _ = BatchMeans::new(0);
    }

    #[test]
    fn average_power_helper() {
        let p = average_power_mw(0.6, SimDuration::from_secs(600.0));
        assert!((p - 1.0).abs() < 1e-12); // 0.6 J over 600 s = 1 mW
    }
}
