//! The ten candidate on-body node locations of the paper's design example.

use std::fmt;

/// A candidate node placement site on the human body.
///
/// The indices match the paper's design example (§4.1): `n0` must be the
/// chest (respiration monitoring and the star coordinator), `n1 + n2 ≥ 1`
/// covers gait analysis at the hip, `n3 + n4 ≥ 1` at the foot, and
/// `n5 + n6 ≥ 1` at the wrist; `n7` is the shoulder/upper-arm site that the
/// optimizer adds for full-reliability mesh configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum BodyLocation {
    /// Sternum, front of torso — index 0.
    Chest = 0,
    /// Left hip — index 1.
    LeftHip = 1,
    /// Right hip — index 2.
    RightHip = 2,
    /// Left ankle — index 3.
    LeftAnkle = 3,
    /// Right ankle — index 4.
    RightAnkle = 4,
    /// Left wrist — index 5.
    LeftWrist = 5,
    /// Right wrist — index 6.
    RightWrist = 6,
    /// Left upper arm / shoulder — index 7.
    LeftUpperArm = 7,
    /// Head (behind the ear) — index 8.
    Head = 8,
    /// Middle of the back — index 9.
    Back = 9,
}

impl BodyLocation {
    /// All ten locations in index order.
    pub const ALL: [BodyLocation; 10] = [
        BodyLocation::Chest,
        BodyLocation::LeftHip,
        BodyLocation::RightHip,
        BodyLocation::LeftAnkle,
        BodyLocation::RightAnkle,
        BodyLocation::LeftWrist,
        BodyLocation::RightWrist,
        BodyLocation::LeftUpperArm,
        BodyLocation::Head,
        BodyLocation::Back,
    ];

    /// Number of candidate locations (the paper's `M`).
    pub const COUNT: usize = 10;

    /// The dense index (0..10) of this location.
    pub const fn index(self) -> usize {
        self as usize
    }

    /// The location with the given dense index.
    ///
    /// Returns `None` if `index >= 10`.
    pub fn from_index(index: usize) -> Option<BodyLocation> {
        Self::ALL.get(index).copied()
    }

    /// Approximate position in a standing body frame, metres:
    /// `x` lateral (left negative), `y` depth (front positive), `z` height.
    ///
    /// Used by the synthetic path-loss model; see
    /// [`PathLossParams`](crate::PathLossParams).
    pub const fn position(self) -> [f64; 3] {
        match self {
            BodyLocation::Chest => [0.00, 0.12, 1.35],
            BodyLocation::LeftHip => [-0.15, 0.10, 1.00],
            BodyLocation::RightHip => [0.15, 0.10, 1.00],
            BodyLocation::LeftAnkle => [-0.12, 0.05, 0.10],
            BodyLocation::RightAnkle => [0.12, 0.05, 0.10],
            BodyLocation::LeftWrist => [-0.35, 0.05, 0.90],
            BodyLocation::RightWrist => [0.35, 0.05, 0.90],
            BodyLocation::LeftUpperArm => [-0.22, 0.00, 1.45],
            BodyLocation::Head => [0.05, 0.00, 1.70],
            BodyLocation::Back => [0.00, -0.12, 1.25],
        }
    }

    /// Whether the site faces the front of the torso. Links between a
    /// front and a back site suffer an around-torso shadowing penalty.
    pub const fn is_front(self) -> bool {
        !matches!(self, BodyLocation::Back)
    }

    /// Whether the site sits on a distal limb (wrist/ankle). Limb-to-limb
    /// links suffer extra body blockage and swing with posture.
    pub const fn is_distal(self) -> bool {
        matches!(
            self,
            BodyLocation::LeftAnkle
                | BodyLocation::RightAnkle
                | BodyLocation::LeftWrist
                | BodyLocation::RightWrist
        )
    }

    /// Euclidean distance in metres to another site.
    pub fn distance_m(self, other: BodyLocation) -> f64 {
        let a = self.position();
        let b = other.position();
        ((a[0] - b[0]).powi(2) + (a[1] - b[1]).powi(2) + (a[2] - b[2]).powi(2)).sqrt()
    }

    /// Short human-readable name (e.g. `"chest"`, `"l-wrist"`).
    pub const fn name(self) -> &'static str {
        match self {
            BodyLocation::Chest => "chest",
            BodyLocation::LeftHip => "l-hip",
            BodyLocation::RightHip => "r-hip",
            BodyLocation::LeftAnkle => "l-ankle",
            BodyLocation::RightAnkle => "r-ankle",
            BodyLocation::LeftWrist => "l-wrist",
            BodyLocation::RightWrist => "r-wrist",
            BodyLocation::LeftUpperArm => "l-arm",
            BodyLocation::Head => "head",
            BodyLocation::Back => "back",
        }
    }
}

impl fmt::Display for BodyLocation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_dense_and_stable() {
        for (i, loc) in BodyLocation::ALL.iter().enumerate() {
            assert_eq!(loc.index(), i);
            assert_eq!(BodyLocation::from_index(i), Some(*loc));
        }
        assert_eq!(BodyLocation::from_index(10), None);
    }

    #[test]
    fn paper_constraint_sites() {
        assert_eq!(BodyLocation::Chest.index(), 0);
        assert_eq!(BodyLocation::LeftHip.index(), 1);
        assert_eq!(BodyLocation::RightHip.index(), 2);
        assert_eq!(BodyLocation::LeftAnkle.index(), 3);
        assert_eq!(BodyLocation::RightAnkle.index(), 4);
        assert_eq!(BodyLocation::LeftWrist.index(), 5);
        assert_eq!(BodyLocation::RightWrist.index(), 6);
        assert_eq!(BodyLocation::LeftUpperArm.index(), 7);
    }

    #[test]
    fn distance_is_symmetric_and_positive() {
        for &a in &BodyLocation::ALL {
            for &b in &BodyLocation::ALL {
                let d = a.distance_m(b);
                assert!((d - b.distance_m(a)).abs() < 1e-12);
                if a == b {
                    assert_eq!(d, 0.0);
                } else {
                    assert!(d > 0.05, "{a}-{b} too close: {d}");
                }
            }
        }
    }

    #[test]
    fn chest_to_ankle_is_longest_class() {
        let far = BodyLocation::Chest.distance_m(BodyLocation::LeftAnkle);
        let near = BodyLocation::LeftHip.distance_m(BodyLocation::RightHip);
        assert!(far > near);
        assert!(far > 1.0);
    }

    #[test]
    fn only_back_is_rear_facing() {
        let rear: Vec<_> = BodyLocation::ALL.iter().filter(|l| !l.is_front()).collect();
        assert_eq!(rear, vec![&BodyLocation::Back]);
    }

    #[test]
    fn display_names() {
        assert_eq!(BodyLocation::Chest.to_string(), "chest");
        assert_eq!(BodyLocation::LeftUpperArm.to_string(), "l-arm");
    }
}
