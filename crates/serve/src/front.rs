//! Durable Pareto-front segments: each evaluator stream's archive
//! spilled to disk, so a restarted daemon answers `FRONT` queries warm —
//! `simulations 0` — instead of re-sweeping the design space.
//!
//! One file per stream, `front-<key>.seg` next to the evaluation-cache
//! segments (`key` is the profile's evaluation fingerprint, so a physics
//! change keys a different file and old fronts never leak):
//!
//! ```text
//! hi-serve pareto front v1
//! key 00000afc1d2e3f40
//! entry 85 1a2b3c4d
//! p 0000000000000216 3ff3ae147ae147ae 3fee666666666666 4010cccccccccccd 4056ab851eb851ec
//! ```
//!
//! A front point travels as its fingerprint plus four bit-exact floats —
//! power, PDR, latency, lifetime. The framing, torn-tail recovery, and
//! bit-rot quarantine discipline are exactly the cache segments'
//! ([`crate::segment`]): both formats share [`parse_framed`] and differ
//! only in header line and payload grammar, so a cross-fed file fails
//! fast with a "not a pareto front" (or "not a cache segment")
//! diagnostic instead of being half-parsed.
//!
//! The log is **append-only over accepted points**: settle appends every
//! front member not yet on disk, and displaced members are *not*
//! scrubbed eagerly. Hydration re-offers every logged point to a fresh
//! [`ParetoArchive`], whose insertion-order-invariant dominance filters
//! the stale ones — the disk format never has to encode deletions.
//! Compaction (every `compact_threshold` appends, at drain, or over a
//! chaos-torn tail) rewrites the file with the *current* front only.

use std::collections::{BTreeMap, BTreeSet};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use hi_core::{ChaosPolicy, DesignPoint};
use hi_pareto::FrontPoint;

use crate::segment::{frame_entry, parse_framed, write_atomic_bytes};

const FRONT_HEADER: &str = "hi-serve pareto front v1";

/// Renders one front point's payload line (no framing, no newline).
/// Floats travel as exact bit patterns, so a hydrated archive is
/// bit-identical to the one that was persisted.
pub fn render_front_entry(point: &FrontPoint) -> String {
    format!(
        "p {:016x} {:016x} {:016x} {:016x} {:016x}",
        point.fingerprint,
        point.power_mw.to_bits(),
        point.pdr.to_bits(),
        point.latency_ms.to_bits(),
        point.nlt_days.to_bits()
    )
}

/// Parses one payload line back into a [`FrontPoint`].
pub fn parse_front_entry(payload: &str) -> Result<FrontPoint, String> {
    let mut tokens = payload.split_ascii_whitespace();
    match tokens.next() {
        Some("p") => {}
        Some(other) => return Err(format!("unknown front entry kind `{other}`")),
        None => return Err("empty front entry payload".to_string()),
    }
    let fp_token = tokens
        .next()
        .ok_or("missing point fingerprint".to_string())?;
    let fingerprint = u64::from_str_radix(fp_token, 16)
        .map_err(|_| format!("bad point fingerprint `{fp_token}`"))?;
    if DesignPoint::from_fingerprint(fingerprint).is_none() {
        return Err(format!(
            "fingerprint {fingerprint:016x} encodes no valid design point"
        ));
    }
    let mut take = |what: &str| -> Result<f64, String> {
        let token = tokens.next().ok_or(format!("{what}: missing field"))?;
        u64::from_str_radix(token, 16)
            .map(f64::from_bits)
            .map_err(|_| format!("{what}: bad hex `{token}`"))
    };
    let point = FrontPoint {
        fingerprint,
        power_mw: take("power")?,
        pdr: take("pdr")?,
        latency_ms: take("latency")?,
        nlt_days: take("lifetime")?,
    };
    if tokens.next().is_some() {
        return Err("trailing fields after front entry payload".to_string());
    }
    Ok(point)
}

/// The outcome of parsing one front segment file.
#[derive(Debug, Clone, PartialEq)]
pub struct FrontLoad {
    /// The stream key stated in the file's `key` line.
    pub key: u64,
    /// Intact points, in file (append) order.
    pub points: Vec<FrontPoint>,
    /// `Some(note)` if a torn tail was found after the intact prefix.
    pub torn: Option<String>,
}

/// Parses a front segment file, separating torn tails from bit rot —
/// same contract as [`crate::parse_segment`], different payload grammar.
pub fn parse_front_segment(bytes: &[u8]) -> Result<FrontLoad, String> {
    let raw = parse_framed(bytes, FRONT_HEADER, "pareto front")?;
    let mut points = Vec::with_capacity(raw.payloads.len());
    for (index, (payload, entry_at)) in raw.payloads.iter().enumerate() {
        points.push(
            parse_front_entry(payload)
                .map_err(|e| format!("entry {index} at byte {entry_at}: {e}"))?,
        );
    }
    Ok(FrontLoad {
        key: raw.key,
        points,
        torn: raw.torn,
    })
}

/// Renders a complete front segment file (header, key line, framed
/// entries).
pub fn render_front_segment(key: u64, points: &[FrontPoint]) -> Vec<u8> {
    let mut out = format!("{FRONT_HEADER}\nkey {key:016x}\n").into_bytes();
    for point in points {
        out.extend_from_slice(&frame_entry(&render_front_entry(point)));
    }
    out
}

/// The front segment path for stream `key` under `cache_dir`.
pub fn front_path(cache_dir: &Path, key: u64) -> PathBuf {
    cache_dir.join(format!("front-{key:016x}.seg"))
}

#[derive(Debug, Default)]
struct KeyState {
    /// Fingerprints known to be durably logged on disk.
    persisted: BTreeSet<u64>,
    /// Appends since the file was last fully rewritten.
    appends_since_compact: u32,
    /// Settle-batch counter: the chaos roll index, so injection is a
    /// pure function of `(key, batch)` and replays identically.
    sequence: u32,
    /// Set after a chaos-torn append: the next settle must compact.
    needs_compact: bool,
}

/// Cumulative [`FrontStore`] counters, mirrored into the
/// `serve.pareto.*` wellknown metrics and printed by `STATS`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FrontStats {
    /// Points hydrated back from disk at open.
    pub loaded: u64,
    /// Points written durably (appends + compaction folds).
    pub persisted: u64,
    /// Full-file compactions performed.
    pub compactions: u64,
    /// Files quarantined for bit rot at open.
    pub quarantined: u64,
}

/// The durable side of the Pareto archives: one append-mostly front
/// segment per evaluator stream, sharing the cache directory (and the
/// crash-consistency discipline) with [`crate::SegmentStore`].
#[derive(Debug)]
pub struct FrontStore {
    dir: PathBuf,
    compact_threshold: u32,
    chaos: Option<ChaosPolicy>,
    state: Mutex<BTreeMap<u64, KeyState>>,
    /// Points recovered at open, waiting for their stream's archive to
    /// claim (re-insert) them.
    preloaded: Mutex<BTreeMap<u64, Vec<FrontPoint>>>,
    loaded: AtomicU64,
    persisted_total: AtomicU64,
    compactions: AtomicU64,
    quarantined: AtomicU64,
}

impl FrontStore {
    /// Opens the front store over `dir` (created if needed), loading and
    /// verifying every `front-*.seg` in it. Returns the store plus
    /// human-readable notes for anything abnormal — same contract as
    /// [`crate::SegmentStore::open`]: damaged streams start cold, the
    /// daemon always starts.
    pub fn open(
        dir: PathBuf,
        compact_threshold: u32,
        chaos: Option<ChaosPolicy>,
    ) -> std::io::Result<(Self, Vec<String>)> {
        std::fs::create_dir_all(&dir)?;
        let store = Self {
            dir,
            compact_threshold: compact_threshold.max(1),
            chaos,
            state: Mutex::new(BTreeMap::new()),
            preloaded: Mutex::new(BTreeMap::new()),
            loaded: AtomicU64::new(0),
            persisted_total: AtomicU64::new(0),
            compactions: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
        };
        let notes = store.load_existing()?;
        Ok((store, notes))
    }

    /// The directory front segments live in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn load_existing(&self) -> std::io::Result<Vec<String>> {
        let mut notes = Vec::new();
        let mut keys: Vec<u64> = std::fs::read_dir(&self.dir)?
            .filter_map(|e| e.ok())
            .filter_map(|e| {
                let name = e.file_name();
                let name = name.to_str()?;
                u64::from_str_radix(name.strip_prefix("front-")?.strip_suffix(".seg")?, 16).ok()
            })
            .collect();
        keys.sort_unstable();
        keys.dedup();
        for key in keys {
            let path = front_path(&self.dir, key);
            let bytes = match std::fs::read(&path) {
                Ok(b) => b,
                Err(e) => {
                    notes.push(format!("{}: unreadable: {e}", path.display()));
                    continue;
                }
            };
            match parse_front_segment(&bytes) {
                Ok(load) => {
                    if !load.points.is_empty() && load.key != key {
                        self.quarantine(
                            &path,
                            &mut notes,
                            &format!(
                                "key line says {:016x} but the file is named for {key:016x}",
                                load.key
                            ),
                        );
                        continue;
                    }
                    if let Some(torn) = &load.torn {
                        let repaired = render_front_segment(key, &load.points);
                        write_atomic_bytes(&path, &repaired)?;
                        notes.push(format!(
                            "{}: torn tail truncated ({torn}); {} front points recovered",
                            path.display(),
                            load.points.len()
                        ));
                    }
                    hi_trace::counter(
                        hi_trace::wellknown::SERVE_PARETO_LOADED,
                        load.points.len() as u64,
                    );
                    self.loaded
                        .fetch_add(load.points.len() as u64, Ordering::Relaxed);
                    let mut state = self.state.lock().expect("front store poisoned");
                    let entry = state.entry(key).or_default();
                    entry
                        .persisted
                        .extend(load.points.iter().map(|p| p.fingerprint));
                    drop(state);
                    if !load.points.is_empty() {
                        self.preloaded
                            .lock()
                            .expect("front store poisoned")
                            .insert(key, load.points);
                    }
                }
                Err(diag) => self.quarantine(&path, &mut notes, &diag),
            }
        }
        Ok(notes)
    }

    fn quarantine(&self, path: &Path, notes: &mut Vec<String>, diag: &str) {
        let mut target = path.as_os_str().to_os_string();
        target.push(".quarantine");
        let verdict = match std::fs::rename(path, &target) {
            Ok(()) => format!("quarantined as {}", PathBuf::from(&target).display()),
            Err(e) => format!("quarantine rename failed ({e}); file left in place, ignored"),
        };
        hi_trace::counter(hi_trace::wellknown::SERVE_CACHE_QUARANTINED, 1);
        self.quarantined.fetch_add(1, Ordering::Relaxed);
        notes.push(format!(
            "{}: bit rot: {diag}; {verdict}; front starts cold",
            path.display()
        ));
    }

    /// Claims the points recovered for `key` at open, if any. Re-insert
    /// each into the stream's fresh archive: dominance is insertion-order
    /// invariant, so the log's stale (displaced) points filter out and
    /// the hydrated front is bit-identical to the persisted one.
    pub fn hydrate(&self, key: u64) -> Vec<FrontPoint> {
        self.preloaded
            .lock()
            .expect("front store poisoned")
            .remove(&key)
            .unwrap_or_default()
    }

    /// Persists whatever of `front` (the stream archive's current front)
    /// disk does not yet hold. Points already logged are skipped; fresh
    /// ones are appended (one fsync per batch), and every
    /// `compact_threshold` appends the file is rewritten atomically with
    /// the current front only, folding out displaced points.
    pub fn settle(&self, key: u64, front: &[FrontPoint]) -> std::io::Result<crate::SettleOutcome> {
        let mut state = self.state.lock().expect("front store poisoned");
        let entry = state.entry(key).or_default();
        let fresh: Vec<&FrontPoint> = front
            .iter()
            .filter(|p| !entry.persisted.contains(&p.fingerprint))
            .collect();
        if fresh.is_empty() {
            return Ok(crate::SettleOutcome::default());
        }
        let sequence = entry.sequence;
        entry.sequence += 1;
        if let Some(chaos) = &self.chaos {
            if chaos.drops_segment(key, sequence) {
                hi_trace::counter(hi_trace::wellknown::EXEC_CHAOS_EVENTS, 1);
                return Ok(crate::SettleOutcome {
                    chaos_dropped: true,
                    ..crate::SettleOutcome::default()
                });
            }
        }
        let path = front_path(&self.dir, key);
        let compact =
            entry.needs_compact || entry.appends_since_compact + 1 >= self.compact_threshold;
        if compact {
            write_atomic_bytes(&path, &render_front_segment(key, front))?;
            entry.persisted = front.iter().map(|p| p.fingerprint).collect();
            entry.appends_since_compact = 0;
            entry.needs_compact = false;
            hi_trace::counter(hi_trace::wellknown::SERVE_CACHE_COMPACTIONS, 1);
            hi_trace::counter(
                hi_trace::wellknown::SERVE_PARETO_PERSISTED,
                fresh.len() as u64,
            );
            self.compactions.fetch_add(1, Ordering::Relaxed);
            self.persisted_total
                .fetch_add(fresh.len() as u64, Ordering::Relaxed);
            return Ok(crate::SettleOutcome {
                persisted: fresh.len(),
                compacted: true,
                ..crate::SettleOutcome::default()
            });
        }
        let mut batch = Vec::new();
        let mut complete = Vec::new();
        for point in &fresh {
            batch.extend_from_slice(&frame_entry(&render_front_entry(point)));
            complete.push(point.fingerprint);
        }
        let mut chaos_torn = false;
        if let Some(chaos) = &self.chaos {
            if chaos.tears_segment(key, sequence) {
                let last = frame_entry(&render_front_entry(fresh[fresh.len() - 1]));
                batch.truncate(batch.len() - last.len() + last.len() / 2);
                complete.pop();
                chaos_torn = true;
                hi_trace::counter(hi_trace::wellknown::EXEC_CHAOS_EVENTS, 1);
            }
        }
        {
            let mut file = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)?;
            if file.metadata()?.len() == 0 {
                file.write_all(format!("{FRONT_HEADER}\nkey {key:016x}\n").as_bytes())?;
            }
            file.write_all(&batch)?;
            file.sync_all()?;
        }
        let persisted = complete.len();
        entry.persisted.extend(complete);
        entry.appends_since_compact += 1;
        entry.needs_compact = chaos_torn;
        hi_trace::counter(
            hi_trace::wellknown::SERVE_PARETO_PERSISTED,
            persisted as u64,
        );
        self.persisted_total
            .fetch_add(persisted as u64, Ordering::Relaxed);
        Ok(crate::SettleOutcome {
            persisted,
            chaos_torn,
            ..crate::SettleOutcome::default()
        })
    }

    /// Drain-time flush: compacts `key`'s front segment unconditionally
    /// from the archive's current front, leaving one clean, tear-free,
    /// displaced-point-free file for the next process.
    pub fn flush(&self, key: u64, front: &[FrontPoint]) -> std::io::Result<()> {
        if front.is_empty() {
            return Ok(());
        }
        let mut state = self.state.lock().expect("front store poisoned");
        let entry = state.entry(key).or_default();
        let path = front_path(&self.dir, key);
        // Skip only if disk provably holds exactly the current front —
        // no pending tear, no logged-but-displaced extras to fold out.
        let clean = !entry.needs_compact
            && path.exists()
            && entry.persisted.len() == front.len()
            && front
                .iter()
                .all(|p| entry.persisted.contains(&p.fingerprint));
        if clean {
            return Ok(());
        }
        write_atomic_bytes(&path, &render_front_segment(key, front))?;
        entry.persisted = front.iter().map(|p| p.fingerprint).collect();
        entry.appends_since_compact = 0;
        entry.needs_compact = false;
        hi_trace::counter(hi_trace::wellknown::SERVE_CACHE_COMPACTIONS, 1);
        self.compactions.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Cumulative counters since open.
    pub fn stats(&self) -> FrontStats {
        FrontStats {
            loaded: self.loaded.load(Ordering::Relaxed),
            persisted: self.persisted_total.load(Ordering::Relaxed),
            compactions: self.compactions.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
        }
    }

    /// Number of points known durably logged for `key`.
    pub fn persisted_len(&self, key: u64) -> usize {
        self.state
            .lock()
            .expect("front store poisoned")
            .get(&key)
            .map_or(0, |s| s.persisted.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::{render_segment, segment_path, CachedOutcome};
    use hi_core::{Evaluation, MacChoice, Placement, RouteChoice};
    use hi_net::TxPower;
    use hi_pareto::ParetoArchive;

    fn design(i: u8) -> DesignPoint {
        DesignPoint {
            placement: Placement::from_indices([0, 1, 3, (5 + i % 3) as usize]),
            tx_power: TxPower::ZeroDbm,
            mac: MacChoice::Tdma,
            routing: if i.is_multiple_of(2) {
                RouteChoice::Star
            } else {
                RouteChoice::Mesh
            },
        }
    }

    fn point(i: u8, power: f64, pdr: f64, latency: f64) -> FrontPoint {
        FrontPoint {
            fingerprint: design(i).fingerprint(),
            power_mw: power,
            pdr,
            latency_ms: latency,
            nlt_days: 101.25 / power,
        }
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("hi-front-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn front_entries_roundtrip_bit_for_bit() {
        let p = point(0, 1.25, 0.9137, 5.5);
        assert_eq!(parse_front_entry(&render_front_entry(&p)).unwrap(), p);
        let weird = FrontPoint {
            fingerprint: design(1).fingerprint(),
            power_mw: f64::MIN_POSITIVE,
            pdr: -0.0,
            latency_ms: f64::INFINITY,
            nlt_days: f64::NAN,
        };
        let parsed = parse_front_entry(&render_front_entry(&weird)).unwrap();
        assert_eq!(parsed.power_mw.to_bits(), f64::MIN_POSITIVE.to_bits());
        assert_eq!(parsed.pdr.to_bits(), (-0.0f64).to_bits());
        assert!(parsed.nlt_days.is_nan());
    }

    #[test]
    fn malformed_front_entries_are_rejected_precisely() {
        for (payload, needle) in [
            ("", "empty front entry"),
            ("q 0000000000000216", "unknown front entry kind"),
            ("p", "missing point fingerprint"),
            ("p zzzz", "bad point fingerprint"),
            ("p ffffffffffffffff 0 0 0 0", "no valid design point"),
            ("p 0000000000000216 3ff0", "pdr: missing field"),
            ("p 0000000000000216 0 0 0 0 deadbeef", "trailing fields"),
        ] {
            let err = parse_front_entry(payload).unwrap_err();
            assert!(err.contains(needle), "`{payload}` → {err}");
        }
    }

    #[test]
    fn front_segments_roundtrip_and_cross_feeding_fails_fast() {
        let points = vec![point(0, 1.0, 0.9, 5.0), point(1, 0.8, 0.85, 6.0)];
        let bytes = render_front_segment(0xabc, &points);
        let load = parse_front_segment(&bytes).unwrap();
        assert_eq!(load.key, 0xabc);
        assert_eq!(load.points, points);
        assert_eq!(load.torn, None);
        // A cache segment fed to the front parser (and vice versa) is
        // rejected at the header, not half-parsed.
        let cache = render_segment(
            0xabc,
            &[CachedOutcome::Nominal {
                point: design(0),
                eval: Evaluation {
                    pdr: 0.9,
                    nlt_days: 40.0,
                    power_mw: 1.0,
                    latency_ms: 5.0,
                },
            }],
        );
        let err = parse_front_segment(&cache).unwrap_err();
        assert!(err.contains("not a pareto front"), "{err}");
        let err = crate::parse_segment(&bytes).unwrap_err();
        assert!(err.contains("not a cache segment"), "{err}");
    }

    #[test]
    fn torn_front_tails_keep_the_intact_prefix() {
        let points = vec![point(0, 1.0, 0.9, 5.0), point(1, 0.8, 0.85, 6.0)];
        let bytes = render_front_segment(7, &points);
        let first_end = render_front_segment(7, &points[..1]).len();
        for cut in (first_end + 1)..bytes.len() {
            let load = parse_front_segment(&bytes[..cut]).unwrap();
            assert_eq!(load.points, points[..1], "cut at {cut}");
            assert!(load.torn.is_some(), "cut at {cut}");
        }
    }

    #[test]
    fn store_settles_hydrates_and_filters_stale_points_across_reopen() {
        let dir = tmpdir("reopen");
        let key = 0x51;
        let better = point(2, 0.7, 0.95, 4.0); // dominates point(0)
        {
            let (store, notes) = FrontStore::open(dir.clone(), 256, None).unwrap();
            assert!(notes.is_empty(), "{notes:?}");
            let out = store
                .settle(key, &[point(0, 1.0, 0.9, 5.0), point(1, 0.5, 0.6, 9.0)])
                .unwrap();
            assert_eq!(out.persisted, 2);
            // The archive evolves: point(0) is displaced, `better` joins.
            // Settle sees only the current front and appends the delta.
            let out = store
                .settle(key, &[better, point(1, 0.5, 0.6, 9.0)])
                .unwrap();
            assert_eq!(out.persisted, 1);
            assert_eq!(store.persisted_len(key), 3);
        }
        // Reopen: the log holds all three points; re-inserting them into
        // a fresh archive filters the displaced one.
        let (store, notes) = FrontStore::open(dir.clone(), 256, None).unwrap();
        assert!(notes.is_empty(), "{notes:?}");
        let logged = store.hydrate(key);
        assert_eq!(logged.len(), 3);
        let mut archive = ParetoArchive::default();
        for p in &logged {
            archive.insert(*p);
        }
        let front = archive.front();
        assert_eq!(front.len(), 2);
        assert!(front.contains(&better));
        assert!(store.hydrate(key).is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn flush_folds_displaced_points_out_of_the_file() {
        let dir = tmpdir("flush");
        let key = 0x90;
        let (store, _) = FrontStore::open(dir.clone(), 256, None).unwrap();
        store.settle(key, &[point(0, 1.0, 0.9, 5.0)]).unwrap();
        // point(0) has since been displaced; only point(2) remains.
        let current = [point(2, 0.7, 0.95, 4.0)];
        store.flush(key, &current).unwrap();
        let load = parse_front_segment(&std::fs::read(front_path(&dir, key)).unwrap()).unwrap();
        assert_eq!(load.points, current);
        assert_eq!(load.torn, None);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_files_repair_and_rotted_files_quarantine_at_open() {
        let dir = tmpdir("repair");
        let torn_key = 0x60;
        let rot_key = 0x61;
        let bytes = render_front_segment(
            torn_key,
            &[point(0, 1.0, 0.9, 5.0), point(1, 0.5, 0.6, 9.0)],
        );
        std::fs::write(front_path(&dir, torn_key), &bytes[..bytes.len() - 3]).unwrap();
        let mut rotted = render_front_segment(rot_key, &[point(2, 0.7, 0.95, 4.0)]);
        let at = rotted.len() - 10;
        rotted[at] ^= 0x01;
        std::fs::write(front_path(&dir, rot_key), &rotted).unwrap();
        let (store, notes) = FrontStore::open(dir.clone(), 256, None).unwrap();
        assert_eq!(notes.len(), 2, "{notes:?}");
        assert!(
            notes.iter().any(|n| n.contains("torn tail truncated")),
            "{notes:?}"
        );
        assert!(notes.iter().any(|n| n.contains("bit rot")), "{notes:?}");
        assert_eq!(store.hydrate(torn_key).len(), 1);
        assert!(store.hydrate(rot_key).is_empty());
        assert!(front_path(&dir, rot_key)
            .with_extension("seg.quarantine")
            .exists());
        assert_eq!(store.stats().quarantined, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn chaos_torn_append_recovers_via_forced_compaction() {
        let dir = tmpdir("chaos");
        let key = 0x80;
        let chaos = ChaosPolicy::parse("seed=5,torn=1").unwrap();
        let (store, _) = FrontStore::open(dir.clone(), 256, Some(chaos)).unwrap();
        let out = store.settle(key, &[point(0, 1.0, 0.9, 5.0)]).unwrap();
        assert!(out.chaos_torn);
        assert_eq!(out.persisted, 0);
        let load = parse_front_segment(&std::fs::read(front_path(&dir, key)).unwrap()).unwrap();
        assert!(load.torn.is_some());
        let out = store
            .settle(key, &[point(0, 1.0, 0.9, 5.0), point(1, 0.5, 0.6, 9.0)])
            .unwrap();
        assert!(out.compacted);
        assert_eq!(out.persisted, 2);
        let load = parse_front_segment(&std::fs::read(front_path(&dir, key)).unwrap()).unwrap();
        assert_eq!(load.torn, None);
        assert_eq!(load.points.len(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn front_and_cache_segments_share_a_directory_without_collisions() {
        let dir = tmpdir("shared");
        let key = 0x33;
        std::fs::write(
            segment_path(&dir, key),
            render_segment(
                key,
                &[CachedOutcome::Nominal {
                    point: design(0),
                    eval: Evaluation {
                        pdr: 0.9,
                        nlt_days: 40.0,
                        power_mw: 1.0,
                        latency_ms: 5.0,
                    },
                }],
            ),
        )
        .unwrap();
        std::fs::write(
            front_path(&dir, key),
            render_front_segment(key, &[point(0, 1.0, 0.9, 5.0)]),
        )
        .unwrap();
        // Each store sees only its own files.
        let (fronts, notes) = FrontStore::open(dir.clone(), 256, None).unwrap();
        assert!(notes.is_empty(), "{notes:?}");
        assert_eq!(fronts.hydrate(key).len(), 1);
        let (caches, notes) = crate::SegmentStore::open(dir.clone(), 256, None).unwrap();
        assert!(notes.is_empty(), "{notes:?}");
        assert_eq!(caches.hydrate(key).len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn miskeyed_front_files_are_quarantined() {
        let dir = tmpdir("miskey");
        std::fs::write(
            front_path(&dir, 0xAA),
            render_front_segment(0xBB, &[point(0, 1.0, 0.9, 5.0)]),
        )
        .unwrap();
        let (store, notes) = FrontStore::open(dir.clone(), 256, None).unwrap();
        assert!(notes.iter().any(|n| n.contains("named for")), "{notes:?}");
        assert!(store.hydrate(0xAA).is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
