//! The analyzer's own lightweight model IR.
//!
//! `hi-lint` sits *below* the solver crates in the dependency graph (so
//! `hi-milp` can run it before every solve), which means it cannot use the
//! solver's types. Producers convert their model into this IR — plain
//! vectors of variables and rows — and hand it to
//! [`analyze`](crate::analyze).

/// Comparison sense of a [`LintRow`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RowSense {
    /// `lhs <= rhs`
    Le,
    /// `lhs == rhs`
    Eq,
    /// `lhs >= rhs`
    Ge,
}

/// A decision variable as the analyzer sees it.
#[derive(Debug, Clone, PartialEq)]
pub struct LintVar {
    /// Display name.
    pub name: String,
    /// Lower bound (`-inf` allowed).
    pub lower: f64,
    /// Upper bound (`+inf` allowed).
    pub upper: f64,
    /// True for integer/binary variables.
    pub integer: bool,
}

/// One linear constraint row: `sum terms (sense) rhs`.
#[derive(Debug, Clone, PartialEq)]
pub struct LintRow {
    /// Display name.
    pub name: String,
    /// `(variable index, coefficient)` pairs.
    pub terms: Vec<(usize, f64)>,
    /// Comparison sense.
    pub sense: RowSense,
    /// Right-hand side.
    pub rhs: f64,
}

/// The full model handed to the analyzer.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LintModel {
    /// Variables, indexed by the `usize` used in rows.
    pub vars: Vec<LintVar>,
    /// Constraint rows.
    pub rows: Vec<LintRow>,
    /// Objective terms (may be empty; linting does not require one).
    pub objective: Vec<(usize, f64)>,
}

impl LintModel {
    /// An empty model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a variable and returns its index.
    pub fn var(&mut self, name: &str, lower: f64, upper: f64, integer: bool) -> usize {
        self.vars.push(LintVar {
            name: name.to_owned(),
            lower,
            upper,
            integer,
        });
        self.vars.len() - 1
    }

    /// Adds a row.
    pub fn row(&mut self, name: &str, terms: Vec<(usize, f64)>, sense: RowSense, rhs: f64) {
        self.rows.push(LintRow {
            name: name.to_owned(),
            terms,
            sense,
            rhs,
        });
    }
}

/// Coefficients with magnitude at or below this are treated as zero.
pub(crate) const ZERO_TOL: f64 = 1e-12;

/// General feasibility/comparison tolerance used by the rules.
pub(crate) const TOL: f64 = 1e-9;

/// Quantization scale for normalized-row fingerprints.
const QUANT: f64 = 1e9;

/// A scaling-invariant fingerprint of a row, used for duplicate, dominance
/// and cut-redundancy detection.
///
/// Normalization: drop (near-)zero coefficients, sort terms by variable,
/// flip `Ge` rows to `Le` (and canonicalize `Eq` rows so their first
/// coefficient is positive), divide by the largest coefficient magnitude,
/// then quantize to `1e-9` resolution so float noise does not defeat the
/// comparison. Rows whose fingerprints share `kind` + `terms` have the same
/// left-hand side up to positive scaling.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct NormRow {
    /// `Le` for inequalities (after flipping `Ge`), `Eq` for equalities.
    pub kind: NormKind,
    /// Quantized `(var, coeff)` pairs, sorted by `var`.
    pub terms: Vec<(usize, i64)>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum NormKind {
    Le,
    Eq,
}

/// The normalized form of a row: its fingerprint plus the scaled rhs kept
/// in full precision (the rhs is *not* part of the fingerprint so that
/// same-LHS rows can be compared for dominance).
#[derive(Debug, Clone)]
pub(crate) struct Normalized {
    pub key: NormRow,
    pub rhs: f64,
}

/// Normalizes `row`; returns `None` for empty rows or rows containing
/// non-finite numbers (other rules report those).
pub(crate) fn normalize(row: &LintRow) -> Option<Normalized> {
    let mut terms: Vec<(usize, f64)> = row
        .terms
        .iter()
        .filter(|(_, c)| c.abs() > ZERO_TOL)
        .copied()
        .collect();
    if terms.is_empty() || terms.iter().any(|(_, c)| !c.is_finite()) || !row.rhs.is_finite() {
        return None;
    }
    terms.sort_by_key(|&(v, _)| v);
    // Merge duplicate variables within one row (a + a -> 2a).
    let mut merged: Vec<(usize, f64)> = Vec::with_capacity(terms.len());
    for (v, c) in terms {
        match merged.last_mut() {
            Some((lv, lc)) if *lv == v => *lc += c,
            _ => merged.push((v, c)),
        }
    }
    merged.retain(|(_, c)| c.abs() > ZERO_TOL);
    if merged.is_empty() {
        return None;
    }

    let mut rhs = row.rhs;
    let mut sign = 1.0;
    let kind = match row.sense {
        RowSense::Le => NormKind::Le,
        RowSense::Ge => {
            sign = -1.0;
            NormKind::Le
        }
        RowSense::Eq => {
            // Canonical sign: first coefficient positive.
            if merged[0].1 < 0.0 {
                sign = -1.0;
            }
            NormKind::Eq
        }
    };
    let scale = merged.iter().map(|(_, c)| c.abs()).fold(0.0f64, f64::max);
    let factor = sign / scale;
    let quantized: Vec<(usize, i64)> = merged
        .iter()
        .map(|&(v, c)| (v, (c * factor * QUANT).round() as i64))
        .collect();
    rhs *= factor;
    Some(Normalized {
        key: NormRow {
            kind,
            terms: quantized,
        },
        rhs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(terms: Vec<(usize, f64)>, sense: RowSense, rhs: f64) -> LintRow {
        LintRow {
            name: "r".into(),
            terms,
            sense,
            rhs,
        }
    }

    #[test]
    fn scaling_does_not_change_fingerprint() {
        let a = normalize(&row(vec![(0, 1.0), (1, 2.0)], RowSense::Le, 3.0)).unwrap();
        let b = normalize(&row(vec![(0, 10.0), (1, 20.0)], RowSense::Le, 30.0)).unwrap();
        assert_eq!(a.key, b.key);
        assert!((a.rhs - b.rhs).abs() < 1e-12);
    }

    #[test]
    fn ge_flips_to_le() {
        let a = normalize(&row(vec![(0, 1.0)], RowSense::Ge, 2.0)).unwrap();
        let b = normalize(&row(vec![(0, -1.0)], RowSense::Le, -2.0)).unwrap();
        assert_eq!(a.key, b.key);
        assert!((a.rhs - b.rhs).abs() < 1e-12);
    }

    #[test]
    fn eq_sign_is_canonical() {
        let a = normalize(&row(vec![(0, -1.0), (1, 2.0)], RowSense::Eq, 1.0)).unwrap();
        let b = normalize(&row(vec![(0, 1.0), (1, -2.0)], RowSense::Eq, -1.0)).unwrap();
        assert_eq!(a.key, b.key);
        assert!((a.rhs - b.rhs).abs() < 1e-12);
    }

    #[test]
    fn zero_coefficients_are_dropped() {
        let a = normalize(&row(vec![(0, 1.0), (1, 0.0)], RowSense::Le, 1.0)).unwrap();
        let b = normalize(&row(vec![(0, 1.0)], RowSense::Le, 1.0)).unwrap();
        assert_eq!(a.key, b.key);
    }

    #[test]
    fn repeated_variable_terms_merge() {
        let a = normalize(&row(vec![(0, 1.0), (0, 1.0)], RowSense::Le, 2.0)).unwrap();
        let b = normalize(&row(vec![(0, 2.0)], RowSense::Le, 2.0)).unwrap();
        assert_eq!(a.key, b.key);
        assert!((a.rhs - b.rhs).abs() < 1e-12);
    }

    #[test]
    fn empty_and_nonfinite_rows_normalize_to_none() {
        assert!(normalize(&row(vec![], RowSense::Le, 1.0)).is_none());
        assert!(normalize(&row(vec![(0, 0.0)], RowSense::Le, 1.0)).is_none());
        assert!(normalize(&row(vec![(0, f64::NAN)], RowSense::Le, 1.0)).is_none());
        assert!(normalize(&row(vec![(0, 1.0)], RowSense::Le, f64::INFINITY)).is_none());
    }

    #[test]
    fn canceling_terms_normalize_to_none() {
        assert!(normalize(&row(vec![(0, 1.0), (0, -1.0)], RowSense::Le, 1.0)).is_none());
    }
}
