//! The ILP restriction-and-repair heuristic: robust-MILP quality at a
//! fraction of the solve time.
//!
//! The full Γ-robust counterpart ([`robust_milp_search`]) prices every
//! protected link into one MILP. This heuristic shrinks that model
//! first:
//!
//! 1. **Restrict** — solve the *nominal* MILP once (analytic, zero
//!    simulations) and pin every body site the fault suite does not
//!    target to its nominal occupancy. Targeted sites — those with at
//!    least two [`DEVIATION_CAP_DB`]-sized bounds on their links
//!    (blackouts, outages, depletions) — stay free: those are the
//!    decisions robustness can actually flip.
//! 2. **Solve** the robust counterpart on the restricted model with the
//!    shared witness ladder — same budget / checkpoint / cancel /
//!    verification contract as the full engine.
//! 3. **Repair** — if the restricted model goes infeasible with pins
//!    remaining, release the lowest-index pinned site and re-solve.
//!    The repair order is a deterministic function of the cut ladder, so
//!    checkpoint-resumed runs replay it bit-identically.
//!
//! The restriction removes integer branching on the pinned sites, so the
//! heuristic is faster per level; because the pins come from the nominal
//! optimum, its objective stays within a few percent of the full robust
//! MILP on realistic suites (gated in CI at 5% on the demo scenario).

use hi_channel::BodyLocation;

use crate::algorithm1::{explore_par_observed, ExploreError, ExploreOptions, Problem};
use crate::checkpoint::{ExploreCheckpoint, ENGINE_ILP_HEURISTIC};
use crate::evaluator::PointEvaluator;
use crate::milp_encode::MilpEncoding;
use crate::parallel::ExecContext;
use crate::robust_milp::{robust_milp_search, run_witness_ladder, validate_resume, RobustOutcome};
use crate::robustness::{RobustnessSpec, DEVIATION_CAP_DB};

/// Runs the restriction-and-repair heuristic (see the
/// [module docs](self)).
///
/// A degenerate `spec` delegates to plain Algorithm 1 bit for bit. If
/// the nominal model is already infeasible there is nothing to restrict
/// and the call falls back to [`robust_milp_search`] on the full model.
///
/// # Errors
///
/// Returns [`ExploreError::Checkpoint`] on a resume checkpoint recorded
/// by another engine or under different problem/options, and
/// [`ExploreError::Milp`] if the solver fails.
pub fn ilp_heuristic_search<P: PointEvaluator>(
    problem: &Problem,
    spec: &RobustnessSpec,
    evaluator: &P,
    options: ExploreOptions,
    exec: &ExecContext,
    resume: Option<&ExploreCheckpoint>,
    observer: &mut dyn FnMut(&ExploreCheckpoint),
) -> Result<RobustOutcome, ExploreError> {
    if spec.is_degenerate() {
        return explore_par_observed(problem, evaluator, options, exec, resume, observer).map(
            |outcome| RobustOutcome {
                outcome,
                nominal_power_mw: None,
                robust_power_mw: None,
                repairs: 0,
            },
        );
    }
    validate_resume(resume, ENGINE_ILP_HEURISTIC, problem, options)?;
    let constraints = problem.space.constraints();
    // Step 1: the nominal witness seeds both the restriction and the
    // price-of-robustness baseline. One MILP solve, zero simulations.
    let Some((nominal, nominal_mw)) =
        MilpEncoding::new(constraints, &problem.app).solve_witness()?
    else {
        // Nothing to restrict around: run the full robust model.
        return robust_milp_search(problem, spec, evaluator, options, exec, resume, observer);
    };
    // Fault-targeted sites are where robustness can flip the placement;
    // everything else gets pinned to the nominal optimum. A site with a
    // single capped link is merely the surviving endpoint of the *other*
    // site's death (an outage of s caps every (i, s) pair), so targeting
    // needs at least two capped links: dead sites accumulate one per
    // neighbor and blackout endpoints one per blackout plus the
    // bystander caps.
    let mut capped = [0usize; BodyLocation::COUNT];
    for d in &spec.deviations {
        if d.delta_db >= DEVIATION_CAP_DB {
            capped[d.site_a] += 1;
            capped[d.site_b] += 1;
        }
    }
    let heavy = |site: usize| capped[site] >= 2;
    let mut encoding = MilpEncoding::new_robust(constraints, &problem.app, spec);
    let mut pinned = Vec::new();
    for site in 0..BodyLocation::COUNT {
        if !heavy(site) {
            encoding.fix_site(site, nominal.placement.contains_index(site));
            pinned.push(site);
        }
    }
    let (outcome, robust_power_mw, repairs) = run_witness_ladder(
        problem,
        options,
        evaluator,
        exec,
        resume,
        observer,
        &mut encoding,
        pinned,
        ENGINE_ILP_HEURISTIC,
    )?;
    Ok(RobustOutcome {
        outcome,
        nominal_power_mw: Some(nominal_mw),
        robust_power_mw,
        repairs,
    })
}
