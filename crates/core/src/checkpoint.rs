//! Checkpoint/resume for Algorithm 1.
//!
//! An [`ExploreCheckpoint`] captures the full exploration state after any
//! completed iteration: the power-cut ladder (which determines the MILP's
//! remaining admissible region), the incumbent, and the effort counters.
//! Replaying the ladder into a fresh encoding visits exactly the levels a
//! straight-through run would have visited next, so checkpoint-and-resume
//! is bit-identical to never stopping (`resume_is_bit_identical` in
//! `tests/determinism.rs` certifies this; CI byte-diffs the CLI
//! transcripts).
//!
//! The on-disk format is a line-oriented text file. Every `f64` is
//! round-tripped through [`f64::to_bits`] as 16 hex digits — decimal
//! formatting would lose bits and silently break the bit-identity
//! contract. The design point travels as its
//! [`fingerprint`](DesignPoint::fingerprint). No external serialization
//! crate is involved.

use crate::evaluator::Evaluation;
use crate::point::DesignPoint;

/// The resumable state of an Algorithm 1 exploration.
#[derive(Debug, Clone, PartialEq)]
pub struct ExploreCheckpoint {
    /// The reliability floor the exploration ran at (resume validates it).
    pub pdr_min: f64,
    /// Whether the α-corrected bound was active (resume validates it).
    pub alpha_correction: bool,
    /// The power-cut ladder, in application order.
    pub cuts: Vec<f64>,
    /// MILP iterations completed.
    pub iterations: u32,
    /// Candidates proposed so far.
    pub candidates_proposed: u64,
    /// Unique simulations spent so far.
    pub simulations: u64,
    /// The incumbent, if any.
    pub best: Option<(DesignPoint, Evaluation)>,
}

const HEADER: &str = "hi-opt explore checkpoint v1";

fn f64_to_hex(x: f64) -> String {
    format!("{:016x}", x.to_bits())
}

fn f64_from_hex(s: &str) -> Result<f64, String> {
    if s.len() != 16 {
        return Err(format!("expected 16 hex digits, got {s:?}"));
    }
    u64::from_str_radix(s, 16)
        .map(f64::from_bits)
        .map_err(|_| format!("bad float bits {s:?}"))
}

impl ExploreCheckpoint {
    /// Captures the state of a finished (or budget-stopped) exploration.
    pub fn from_outcome(
        pdr_min: f64,
        alpha_correction: bool,
        outcome: &crate::ExplorationOutcome,
    ) -> Self {
        Self {
            pdr_min,
            alpha_correction,
            cuts: outcome.cuts.clone(),
            iterations: outcome.iterations,
            candidates_proposed: outcome.candidates_proposed,
            simulations: outcome.simulations,
            best: outcome.best,
        }
    }

    /// Renders the checkpoint as its text format.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(HEADER);
        out.push('\n');
        out.push_str(&format!("pdr_min {}\n", f64_to_hex(self.pdr_min)));
        out.push_str(&format!(
            "alpha_correction {}\n",
            u8::from(self.alpha_correction)
        ));
        out.push_str(&format!("iterations {}\n", self.iterations));
        out.push_str(&format!("candidates {}\n", self.candidates_proposed));
        out.push_str(&format!("simulations {}\n", self.simulations));
        for cut in &self.cuts {
            out.push_str(&format!("cut {}\n", f64_to_hex(*cut)));
        }
        match &self.best {
            None => out.push_str("best none\n"),
            Some((point, eval)) => out.push_str(&format!(
                "best {:x} {} {} {}\n",
                point.fingerprint(),
                f64_to_hex(eval.pdr),
                f64_to_hex(eval.nlt_days),
                f64_to_hex(eval.power_mw),
            )),
        }
        out.push_str("end\n");
        out
    }

    /// Parses the text format written by [`to_text`](Self::to_text).
    ///
    /// # Errors
    ///
    /// Returns a line-attributed message on any malformed content.
    pub fn from_text(text: &str) -> Result<Self, String> {
        let mut lines = text.lines().enumerate();
        let (_, header) = lines.next().ok_or("empty checkpoint file")?;
        if header.trim() != HEADER {
            return Err(format!("line 1: expected {HEADER:?}, got {header:?}"));
        }
        let mut pdr_min = None;
        let mut alpha_correction = None;
        let mut iterations = None;
        let mut candidates = None;
        let mut simulations = None;
        let mut cuts = Vec::new();
        let mut best: Option<Option<(DesignPoint, Evaluation)>> = None;
        let mut ended = false;
        for (i, line) in lines {
            let lineno = i + 1;
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if ended {
                return Err(format!("line {lineno}: content after \"end\""));
            }
            let bad = |what: &str| format!("line {lineno}: {what}");
            let (key, rest) = line.split_once(' ').unwrap_or((line, ""));
            match key {
                "pdr_min" => pdr_min = Some(f64_from_hex(rest).map_err(|e| bad(&e))?),
                "alpha_correction" => {
                    alpha_correction = Some(match rest {
                        "0" => false,
                        "1" => true,
                        other => return Err(bad(&format!("bad alpha flag {other:?}"))),
                    })
                }
                "iterations" => {
                    iterations = Some(
                        rest.parse::<u32>()
                            .map_err(|_| bad("bad iteration count"))?,
                    )
                }
                "candidates" => {
                    candidates = Some(
                        rest.parse::<u64>()
                            .map_err(|_| bad("bad candidate count"))?,
                    )
                }
                "simulations" => {
                    simulations = Some(
                        rest.parse::<u64>()
                            .map_err(|_| bad("bad simulation count"))?,
                    )
                }
                "cut" => cuts.push(f64_from_hex(rest).map_err(|e| bad(&e))?),
                "best" if rest == "none" => best = Some(None),
                "best" => {
                    let fields: Vec<&str> = rest.split_whitespace().collect();
                    if fields.len() != 4 {
                        return Err(bad("best needs <fingerprint> <pdr> <nlt> <power>"));
                    }
                    let fp =
                        u64::from_str_radix(fields[0], 16).map_err(|_| bad("bad fingerprint"))?;
                    let point = DesignPoint::from_fingerprint(fp)
                        .ok_or_else(|| bad("fingerprint decodes to no design point"))?;
                    let eval = Evaluation {
                        pdr: f64_from_hex(fields[1]).map_err(|e| bad(&e))?,
                        nlt_days: f64_from_hex(fields[2]).map_err(|e| bad(&e))?,
                        power_mw: f64_from_hex(fields[3]).map_err(|e| bad(&e))?,
                    };
                    best = Some(Some((point, eval)));
                }
                "end" => ended = true,
                other => return Err(bad(&format!("unknown key {other:?}"))),
            }
        }
        if !ended {
            return Err("truncated checkpoint: missing \"end\" line".into());
        }
        Ok(Self {
            pdr_min: pdr_min.ok_or("missing pdr_min")?,
            alpha_correction: alpha_correction.ok_or("missing alpha_correction")?,
            cuts,
            iterations: iterations.ok_or("missing iterations")?,
            candidates_proposed: candidates.ok_or("missing candidates")?,
            simulations: simulations.ok_or("missing simulations")?,
            best: best.ok_or("missing best")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::{MacChoice, Placement, RouteChoice};
    use hi_net::TxPower;

    fn sample() -> ExploreCheckpoint {
        ExploreCheckpoint {
            pdr_min: 0.9,
            alpha_correction: true,
            cuts: vec![1.25, 1.5000000000000002, f64::MIN_POSITIVE],
            iterations: 3,
            candidates_proposed: 71,
            simulations: 68,
            best: Some((
                DesignPoint {
                    placement: Placement::from_indices([0, 2, 4, 7]),
                    tx_power: TxPower::Minus10Dbm,
                    mac: MacChoice::Csma,
                    routing: RouteChoice::Mesh,
                },
                Evaluation {
                    pdr: 0.9375,
                    nlt_days: 181.2345678901234,
                    power_mw: 1.0000000000000004,
                },
            )),
        }
    }

    #[test]
    fn text_roundtrip_is_bit_exact() {
        let cp = sample();
        let parsed = ExploreCheckpoint::from_text(&cp.to_text()).unwrap();
        assert_eq!(parsed, cp);
        // PartialEq on f64 misses the -0.0/0.0 and NaN subtleties; check
        // the actual bits of every float too.
        let (_, e1) = cp.best.unwrap();
        let (_, e2) = parsed.best.unwrap();
        assert_eq!(e1.power_mw.to_bits(), e2.power_mw.to_bits());
        for (a, b) in cp.cuts.iter().zip(&parsed.cuts) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn infeasible_checkpoint_roundtrips() {
        let cp = ExploreCheckpoint {
            best: None,
            cuts: vec![],
            ..sample()
        };
        assert_eq!(ExploreCheckpoint::from_text(&cp.to_text()).unwrap(), cp);
    }

    #[test]
    fn malformed_files_are_rejected_with_line_numbers() {
        assert!(ExploreCheckpoint::from_text("").is_err());
        assert!(ExploreCheckpoint::from_text("not a checkpoint\n")
            .unwrap_err()
            .contains("line 1"));
        let truncated = sample().to_text().replace("end\n", "");
        assert!(ExploreCheckpoint::from_text(&truncated)
            .unwrap_err()
            .contains("truncated"));
        let garbled = sample().to_text().replace("cut ", "cut zz");
        assert!(ExploreCheckpoint::from_text(&garbled).is_err());
        let bad_fp = sample().to_text();
        let bad_fp = bad_fp.replace("best ", "best ffffffffffffffff ");
        // Five fields after "best" — rejected before fingerprint decode.
        assert!(ExploreCheckpoint::from_text(&bad_fp).is_err());
    }
}
