//! Supervised evaluation: retries, logical deadlines and chaos, wired
//! into the exploration engines.
//!
//! [`SupervisedEvaluator`] wraps any [`PointEvaluator`] in an
//! [`hi_exec::Supervisor`]: transient failures are retried up to the
//! policy's attempt bound, deadline trips and permanent failures are
//! surfaced unchanged, and an optional [`hi_exec::ChaosPolicy`] injects
//! panics, spurious transient errors and cache-entry drops keyed by
//! `(fingerprint, attempt)` only — so a chaos run is bit-identical at
//! every thread count, and a chaos-free supervised run executes exactly
//! one attempt per point and is byte-identical to an unsupervised one.
//!
//! The wrapper is also where the supervision trace counters live
//! (`hi-exec` sits below `hi-trace` in the workspace graph and stays
//! dependency-free): `exec.retry` ticks per extra attempt, `exec.chaos`
//! per injection; `exec.deadline` is emitted at the simulation boundary
//! where the trip is detected.

use hi_exec::{EvalError, Supervisor};

use crate::evaluator::{Evaluation, PointEvaluator};
use crate::point::DesignPoint;

/// The DES warm-up horizon of the paper's design space: each of the (at
/// most [`max_nodes`](crate::TopologyConstraints::max_nodes)) nodes
/// schedules one initial application event, and the end-of-run event
/// always exists, so a per-replication event budget below this floor
/// trips before a single packet moves. Lint rule HL038 flags such
/// budgets.
pub fn warmup_events_floor() -> u64 {
    crate::constraints::TopologyConstraints::paper_default().max_nodes as u64 + 1
}

/// Lowers a supervision configuration into the dependency-free spec the
/// HL038/HL039 lint rules analyze. `event_budget` is the protocol's
/// [`max_events`](crate::SimProtocol::max_events); `robust_run` marks
/// fault-suite scoring.
pub fn supervision_spec(
    supervisor: &Supervisor,
    event_budget: Option<u64>,
    robust_run: bool,
) -> hi_lint::SupervisionSpec {
    hi_lint::SupervisionSpec {
        max_attempts: supervisor.retry.max_attempts,
        retry_permanent: supervisor.retry.retry_permanent,
        event_budget,
        warmup_events: warmup_events_floor(),
        chaos_enabled: supervisor
            .chaos
            .as_ref()
            .is_some_and(|chaos| !chaos.is_noop()),
        release_build: !cfg!(debug_assertions),
        robust_run,
    }
}

/// A [`PointEvaluator`] driving every evaluation through a
/// [`Supervisor`] (see the module docs).
#[derive(Debug, Clone)]
pub struct SupervisedEvaluator<P: PointEvaluator> {
    inner: P,
    supervisor: Supervisor,
}

impl<P: PointEvaluator> SupervisedEvaluator<P> {
    /// Wraps `inner` under `supervisor`.
    ///
    /// # Panics
    ///
    /// In debug builds, panics if the policy fails the HL038 lint (zero
    /// attempts, retrying permanent failures) — the CLI lints the same
    /// spec with full context and rejects it before construction, so
    /// tripping this means a library caller built a policy no run
    /// should ever carry.
    pub fn new(inner: P, supervisor: Supervisor) -> Self {
        #[cfg(debug_assertions)]
        {
            let spec = supervision_spec(&supervisor, None, false);
            let report = hi_lint::lint_supervision(&spec);
            debug_assert!(
                !report.has_errors(),
                "supervision policy fails lint:\n{report}"
            );
        }
        Self { inner, supervisor }
    }

    /// The wrapped evaluator.
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// The supervision policy in force.
    pub fn supervisor(&self) -> &Supervisor {
        &self.supervisor
    }
}

impl<P: PointEvaluator> PointEvaluator for SupervisedEvaluator<P> {
    fn try_eval(&self, point: &DesignPoint) -> Result<Evaluation, EvalError> {
        let fingerprint = point.fingerprint();
        let (result, report) = self
            .supervisor
            .run(fingerprint, |_attempt| self.inner.try_eval(point));
        if report.retries > 0 {
            hi_trace::counter(hi_trace::wellknown::EXEC_RETRIES, u64::from(report.retries));
        }
        let chaos_events = report.chaos_events();
        if chaos_events > 0 {
            hi_trace::counter(
                hi_trace::wellknown::EXEC_CHAOS_EVENTS,
                u64::from(chaos_events),
            );
        }
        if report.drop_requested && result.is_ok() {
            // Chaos cache drop: the next request for this point recomputes
            // it. Deterministic evaluators recompute the same value, so
            // only effort counters can tell — which is the point.
            self.inner.drop_cached(point);
        }
        result
    }

    fn unique_evaluations(&self) -> u64 {
        self.inner.unique_evaluations()
    }

    fn drop_cached(&self, point: &DesignPoint) -> bool {
        self.inner.drop_cached(point)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::SimProtocol;
    use crate::point::{MacChoice, Placement, RouteChoice};
    use hi_des::SimDuration;
    use hi_exec::{ChaosPolicy, RetryPolicy};
    use hi_net::TxPower;

    fn pt() -> DesignPoint {
        DesignPoint {
            placement: Placement::from_indices([0, 1, 3, 5]),
            tx_power: TxPower::ZeroDbm,
            mac: MacChoice::Tdma,
            routing: RouteChoice::Star,
        }
    }

    fn protocol() -> SimProtocol {
        SimProtocol::new(SimDuration::from_secs(2.0), 1, 99)
    }

    #[test]
    fn chaos_free_supervision_is_bit_identical_and_attempt_free() {
        let plain = protocol().shared_evaluator();
        let supervised =
            SupervisedEvaluator::new(protocol().shared_evaluator(), Supervisor::default());
        let a = plain.try_eval(&pt()).unwrap();
        let b = supervised.try_eval(&pt()).unwrap();
        assert_eq!(a.pdr.to_bits(), b.pdr.to_bits());
        assert_eq!(a.nlt_days.to_bits(), b.nlt_days.to_bits());
        assert_eq!(a.power_mw.to_bits(), b.power_mw.to_bits());
        assert_eq!(supervised.unique_evaluations(), 1, "exactly one attempt");
    }

    #[test]
    fn injected_transients_are_ridden_out_deterministically() {
        // 1-in-2 transient odds: some attempts are injected, and whether
        // the 3-attempt budget clears is a pure function of the policy
        // and the point's fingerprint — so derive the expectation from
        // the policy instead of hard-coding it.
        let chaos = ChaosPolicy::parse("seed=5,transient=2").unwrap();
        let point = pt();
        let fp = point.fingerprint();
        // Pick expectations from the policy itself: the run must succeed
        // iff some attempt below the bound is injection-free.
        let clears = (0..3).any(|a| !chaos.injects_transient(fp, a));
        let supervised = SupervisedEvaluator::new(
            protocol().shared_evaluator(),
            Supervisor::new(RetryPolicy::new(3), Some(chaos)),
        );
        let first = supervised.try_eval(&point);
        assert_eq!(first.is_ok(), clears);
        // Chaos decisions depend only on (fingerprint, attempt): rerunning
        // on a fresh evaluator reproduces the outcome bit for bit.
        let again = SupervisedEvaluator::new(
            protocol().shared_evaluator(),
            Supervisor::new(RetryPolicy::new(3), Some(chaos)),
        )
        .try_eval(&point);
        match (&first, &again) {
            (Ok(a), Ok(b)) => assert_eq!(a.pdr.to_bits(), b.pdr.to_bits()),
            (Err(a), Err(b)) => assert_eq!(a, b),
            _ => panic!("chaos outcome must be reproducible"),
        }
    }

    #[test]
    fn chaos_drops_force_recomputes_but_not_result_changes() {
        // 1-in-1 drop odds: every success immediately evicts its entry.
        let chaos = ChaosPolicy::parse("seed=3,drop=1").unwrap();
        let supervised = SupervisedEvaluator::new(
            protocol().shared_evaluator(),
            Supervisor::new(RetryPolicy::new(1), Some(chaos)),
        );
        let a = supervised.try_eval(&pt()).unwrap();
        let b = supervised.try_eval(&pt()).unwrap();
        assert_eq!(a.pdr.to_bits(), b.pdr.to_bits());
        assert_eq!(
            supervised.unique_evaluations(),
            2,
            "each lookup recomputed: the cached entry was chaos-dropped"
        );
    }

    #[test]
    fn deadline_trips_pass_through_unretried() {
        let budgeted = protocol().with_max_events(Some(3));
        let supervised = SupervisedEvaluator::new(
            budgeted.shared_evaluator(),
            Supervisor::new(RetryPolicy::new(5), None),
        );
        let err = supervised.try_eval(&pt()).unwrap_err();
        assert_eq!(err.kind(), hi_exec::ErrorKind::DeadlineExceeded);
        assert_eq!(
            supervised.unique_evaluations(),
            1,
            "deadline trips are deterministic; retrying would re-trip"
        );
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "supervision policy fails lint")]
    fn debug_construction_rejects_hl038_policies() {
        let _ = SupervisedEvaluator::new(
            protocol().shared_evaluator(),
            Supervisor::new(
                RetryPolicy {
                    max_attempts: 3,
                    retry_permanent: true,
                },
                None,
            ),
        );
    }
}
