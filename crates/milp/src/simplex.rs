//! Dense two-phase primal simplex for the LP relaxation.
//!
//! The solver converts a [`Model`] to standard form (`Ax = b`, `x >= 0`)
//! by shifting, mirroring or splitting variables according to their bounds,
//! then runs the classic tableau method: phase 1 minimizes the sum of
//! artificial variables to find a basic feasible solution, phase 2 optimizes
//! the true objective. Bland's rule is used throughout, so the method
//! terminates on degenerate instances.
//!
//! Problem sizes in this workspace are tiny (tens of rows/columns), so a
//! dense `Vec<Vec<f64>>` tableau is simpler and faster than a revised
//! implementation would be.

use crate::{Model, Objective, Sense, SolveError, TOL};

/// Status of an LP relaxation solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LpStatus {
    /// Proven optimal.
    Optimal,
    /// Empty feasible region.
    Infeasible,
    /// Objective unbounded in the optimization direction.
    Unbounded,
}

/// Result of solving the LP relaxation of a model.
#[derive(Debug, Clone)]
pub struct LpResult {
    /// Solve outcome.
    pub status: LpStatus,
    /// Values of the *original* model variables (empty unless optimal).
    pub values: Vec<f64>,
    /// Objective value in the model's own direction (0 unless optimal).
    pub objective: f64,
}

/// How an original variable is represented in standard form.
#[derive(Debug, Clone, Copy)]
enum VarMap {
    /// `x = lb + x'`, `x' >= 0`; optional explicit upper-bound row.
    Shifted { col: usize, lb: f64 },
    /// `x = ub - x'`, `x' >= 0` (used when only an upper bound is finite).
    Mirrored { col: usize, ub: f64 },
    /// `x = x+ - x-` (free variable).
    Split { pos: usize, neg: usize },
    /// Fixed variable (`lb == ub`): substituted out entirely.
    Fixed { value: f64 },
}

/// A row of the standard-form system before slack/artificial augmentation.
#[derive(Debug, Clone)]
struct StdRow {
    coeffs: Vec<f64>,
    sense: Sense,
    rhs: f64,
}

/// Solves the LP relaxation of `model` (integrality dropped, bounds kept).
///
/// # Errors
///
/// Returns [`SolveError::IterationLimit`] if the simplex cycles past its
/// safety limit (should not happen with Bland's rule, but guards against
/// numerical pathologies).
pub fn solve_lp(model: &Model) -> Result<LpResult, SolveError> {
    let (dir, obj) = match &model.objective {
        Some((d, e)) => (*d, e.clone()),
        None => return Err(SolveError::MissingObjective),
    };

    // --- 1. Map variables to non-negative standard-form columns. ----------
    let mut maps = Vec::with_capacity(model.vars.len());
    let mut ncols = 0usize;
    for v in &model.vars {
        if v.lb > v.ub + TOL {
            return Ok(LpResult {
                status: LpStatus::Infeasible,
                values: Vec::new(),
                objective: 0.0,
            });
        }
        let map = if (v.ub - v.lb).abs() <= TOL && v.lb.is_finite() {
            VarMap::Fixed { value: v.lb }
        } else if v.lb.is_finite() {
            let m = VarMap::Shifted {
                col: ncols,
                lb: v.lb,
            };
            ncols += 1;
            m
        } else if v.ub.is_finite() {
            let m = VarMap::Mirrored {
                col: ncols,
                ub: v.ub,
            };
            ncols += 1;
            m
        } else {
            let m = VarMap::Split {
                pos: ncols,
                neg: ncols + 1,
            };
            ncols += 2;
            m
        };
        maps.push(map);
    }

    // --- 2. Build standard-form rows from constraints and finite ranges. --
    let mut rows: Vec<StdRow> = Vec::new();
    let mut obj_coeffs = vec![0.0; ncols];
    let mut obj_const = obj.constant();

    let apply_term = |coeffs: &mut [f64], rhs: &mut f64, var: usize, c: f64| match maps[var] {
        VarMap::Shifted { col, lb } => {
            coeffs[col] += c;
            *rhs -= c * lb;
        }
        VarMap::Mirrored { col, ub } => {
            coeffs[col] -= c;
            *rhs -= c * ub;
        }
        VarMap::Split { pos, neg } => {
            coeffs[pos] += c;
            coeffs[neg] -= c;
        }
        VarMap::Fixed { value } => {
            *rhs -= c * value;
        }
    };

    for con in &model.constraints {
        let mut coeffs = vec![0.0; ncols];
        let mut rhs = con.rhs;
        for (v, c) in con.expr.iter() {
            apply_term(&mut coeffs, &mut rhs, v.0, c);
        }
        rows.push(StdRow {
            coeffs,
            sense: con.sense,
            rhs,
        });
    }
    // Upper-bound rows for shifted variables with a finite upper bound.
    for (i, v) in model.vars.iter().enumerate() {
        if let VarMap::Shifted { col, lb } = maps[i] {
            if v.ub.is_finite() {
                let mut coeffs = vec![0.0; ncols];
                coeffs[col] = 1.0;
                rows.push(StdRow {
                    coeffs,
                    sense: Sense::Le,
                    rhs: v.ub - lb,
                });
            }
        }
    }
    // Objective in standard-form columns, normalized to minimization.
    {
        let mut rhs_dummy = 0.0;
        let mut coeffs = vec![0.0; ncols];
        for (v, c) in obj.iter() {
            apply_term(&mut coeffs, &mut rhs_dummy, v.0, c);
        }
        obj_const -= rhs_dummy; // rhs_dummy accumulated -(c*shift)
        obj_coeffs = coeffs;
    }
    let sign = match dir {
        Objective::Minimize => 1.0,
        Objective::Maximize => -1.0,
    };
    for c in &mut obj_coeffs {
        *c *= sign;
    }

    // --- 3. Run the tableau method. ---------------------------------------
    let mut tableau = Tableau::new(ncols, &rows, &obj_coeffs)?;
    let outcome = tableau.optimize()?;
    hi_trace::counter(hi_trace::wellknown::MILP_PIVOTS, tableau.pivots);

    match outcome {
        TableauOutcome::Infeasible => Ok(LpResult {
            status: LpStatus::Infeasible,
            values: Vec::new(),
            objective: 0.0,
        }),
        TableauOutcome::Unbounded => Ok(LpResult {
            status: LpStatus::Unbounded,
            values: Vec::new(),
            objective: 0.0,
        }),
        TableauOutcome::Optimal { col_values, cost } => {
            let mut values = vec![0.0; model.vars.len()];
            for (i, map) in maps.iter().enumerate() {
                values[i] = match *map {
                    VarMap::Shifted { col, lb } => lb + col_values[col],
                    VarMap::Mirrored { col, ub } => ub - col_values[col],
                    VarMap::Split { pos, neg } => col_values[pos] - col_values[neg],
                    VarMap::Fixed { value } => value,
                };
            }
            let objective = sign * cost + obj_const;
            Ok(LpResult {
                status: LpStatus::Optimal,
                values,
                objective,
            })
        }
    }
}

enum TableauOutcome {
    Optimal { col_values: Vec<f64>, cost: f64 },
    Infeasible,
    Unbounded,
}

/// Dense simplex tableau with explicit basis bookkeeping.
struct Tableau {
    /// `rows x (total_cols + 1)`; last column is the rhs.
    t: Vec<Vec<f64>>,
    /// Basic variable (column index) of each row.
    basis: Vec<usize>,
    /// Number of structural columns (standard-form variables).
    nstruct: usize,
    /// Total columns excluding rhs (struct + slack/surplus + artificial).
    ncols: usize,
    /// Column indices of artificial variables.
    artificials: Vec<usize>,
    /// Phase-2 cost of every column (artificials get 0; they are banned).
    costs: Vec<f64>,
    /// Pivot operations performed (both phases + artificial purge);
    /// flushed to the `milp.pivots` metric once per `solve_lp`.
    pivots: u64,
}

impl Tableau {
    fn new(nstruct: usize, rows: &[StdRow], obj: &[f64]) -> Result<Self, SolveError> {
        let m = rows.len();
        // Count augmentation columns.
        let mut nslack = 0;
        let mut nart = 0;
        for r in rows {
            // Flip rows with negative rhs so b >= 0.
            let (sense, rhs) = normalized(r);
            match sense {
                Sense::Le => nslack += 1,
                Sense::Ge => {
                    nslack += 1;
                    if rhs > TOL {
                        nart += 1;
                    }
                }
                Sense::Eq => nart += 1,
            }
        }
        let ncols = nstruct + nslack + nart;
        let mut t = vec![vec![0.0; ncols + 1]; m];
        let mut basis = vec![usize::MAX; m];
        let mut artificials = Vec::with_capacity(nart);

        let mut next_slack = nstruct;
        let mut next_art = nstruct + nslack;
        for (i, r) in rows.iter().enumerate() {
            let flip = r.rhs < -TOL;
            let s = if flip { -1.0 } else { 1.0 };
            for (j, &c) in r.coeffs.iter().enumerate() {
                t[i][j] = s * c;
            }
            t[i][ncols] = s * r.rhs;
            let sense = flipped_sense(r.sense, flip);
            match sense {
                Sense::Le => {
                    t[i][next_slack] = 1.0;
                    basis[i] = next_slack;
                    next_slack += 1;
                }
                Sense::Ge => {
                    t[i][next_slack] = -1.0;
                    next_slack += 1;
                    if t[i][ncols] > TOL {
                        t[i][next_art] = 1.0;
                        basis[i] = next_art;
                        artificials.push(next_art);
                        next_art += 1;
                    } else {
                        // rhs == 0: the surplus column itself can be basic
                        // (value 0) by negating the row.
                        for v in t[i].iter_mut() {
                            *v = -*v;
                        }
                        basis[i] = next_slack - 1;
                    }
                }
                Sense::Eq => {
                    t[i][next_art] = 1.0;
                    basis[i] = next_art;
                    artificials.push(next_art);
                    next_art += 1;
                }
            }
        }
        let mut costs = vec![0.0; ncols];
        costs[..nstruct].copy_from_slice(obj);
        Ok(Self {
            t,
            basis,
            nstruct,
            ncols,
            artificials,
            costs,
            pivots: 0,
        })
    }

    fn optimize(&mut self) -> Result<TableauOutcome, SolveError> {
        // ---- Phase 1 ----
        if !self.artificials.is_empty() {
            let mut phase1 = vec![0.0; self.ncols];
            for &a in &self.artificials {
                phase1[a] = 1.0;
            }
            match self.run(&phase1, true)? {
                RunOutcome::Optimal(cost) => {
                    if cost > 1e-6 {
                        return Ok(TableauOutcome::Infeasible);
                    }
                }
                RunOutcome::Unbounded => {
                    // Phase-1 objective is bounded below by zero; cannot happen.
                    return Err(SolveError::IterationLimit);
                }
            }
            self.purge_artificials();
        }

        // ---- Phase 2 ----
        let costs = self.costs.clone();
        match self.run(&costs, false)? {
            RunOutcome::Optimal(cost) => {
                let mut col_values = vec![0.0; self.ncols];
                for (i, &b) in self.basis.iter().enumerate() {
                    col_values[b] = self.t[i][self.ncols];
                }
                col_values.truncate(self.nstruct);
                Ok(TableauOutcome::Optimal { col_values, cost })
            }
            RunOutcome::Unbounded => Ok(TableauOutcome::Unbounded),
        }
    }

    /// Pivot artificial variables out of the basis (or drop redundant rows)
    /// and ban them from ever entering again.
    fn purge_artificials(&mut self) {
        let is_art = {
            let mut f = vec![false; self.ncols];
            for &a in &self.artificials {
                f[a] = true;
            }
            f
        };
        let mut row = 0;
        while row < self.t.len() {
            if is_art[self.basis[row]] {
                // Find a non-artificial column with a nonzero coefficient.
                let pivot_col =
                    (0..self.ncols).find(|&j| !is_art[j] && self.t[row][j].abs() > 1e-9);
                match pivot_col {
                    Some(j) => {
                        self.pivot(row, j);
                        row += 1;
                    }
                    None => {
                        // Redundant row: every real coefficient is zero.
                        self.t.remove(row);
                        self.basis.remove(row);
                    }
                }
            } else {
                row += 1;
            }
        }
        // Zero artificial columns so they can never be selected again.
        for r in &mut self.t {
            for &a in &self.artificials {
                r[a] = 0.0;
            }
        }
    }

    /// Runs Bland-rule simplex iterations for the given cost vector.
    ///
    /// In phase 1 (`allow_artificials`), artificial columns may participate;
    /// in phase 2 they have been purged/zeroed.
    fn run(&mut self, costs: &[f64], allow_artificials: bool) -> Result<RunOutcome, SolveError> {
        let is_art = {
            let mut f = vec![false; self.ncols];
            for &a in &self.artificials {
                f[a] = true;
            }
            f
        };
        let max_iters = 50_000 + 200 * (self.ncols + self.t.len());
        // Dantzig pricing converges fast; swap to Bland's rule after a
        // stall budget to guarantee termination on degenerate instances.
        let bland_after = 200 + 5 * (self.ncols + self.t.len());
        for iter in 0..max_iters {
            let reduced = self.reduced_costs(costs);
            let entering = if iter < bland_after {
                // Dantzig: most negative reduced cost (index tie-break).
                let mut best: Option<(usize, f64)> = None;
                for j in 0..self.ncols {
                    if reduced[j] < -1e-9
                        && (allow_artificials || !is_art[j])
                        && best.is_none_or(|(_, r)| reduced[j] < r)
                    {
                        best = Some((j, reduced[j]));
                    }
                }
                best.map(|(j, _)| j)
            } else {
                // Bland: smallest index with negative reduced cost.
                (0..self.ncols).find(|&j| reduced[j] < -1e-9 && (allow_artificials || !is_art[j]))
            };
            let Some(col) = entering else {
                let cost = self
                    .basis
                    .iter()
                    .enumerate()
                    .map(|(i, &b)| costs[b] * self.t[i][self.ncols])
                    .sum();
                return Ok(RunOutcome::Optimal(cost));
            };
            // Ratio test; Bland tie-break on smallest basis index.
            let mut best: Option<(f64, usize, usize)> = None; // (ratio, basisvar, row)
            for (i, r) in self.t.iter().enumerate() {
                if r[col] > 1e-9 {
                    let ratio = r[self.ncols] / r[col];
                    let candidate = (ratio, self.basis[i], i);
                    best = Some(match best {
                        None => candidate,
                        Some(b) => {
                            if ratio < b.0 - 1e-12
                                || ((ratio - b.0).abs() <= 1e-12 && self.basis[i] < b.1)
                            {
                                candidate
                            } else {
                                b
                            }
                        }
                    });
                }
            }
            let Some((_, _, row)) = best else {
                return Ok(RunOutcome::Unbounded);
            };
            self.pivot(row, col);
        }
        Err(SolveError::IterationLimit)
    }

    /// `reduced[j] = c_j - c_B * B^-1 A_j` computed directly from the tableau.
    fn reduced_costs(&self, costs: &[f64]) -> Vec<f64> {
        let mut reduced = costs.to_vec();
        for (i, &b) in self.basis.iter().enumerate() {
            let cb = costs[b];
            if cb != 0.0 {
                for (r, &tij) in reduced.iter_mut().zip(&self.t[i][..self.ncols]) {
                    *r -= cb * tij;
                }
            }
        }
        reduced
    }

    fn pivot(&mut self, row: usize, col: usize) {
        self.pivots += 1;
        let piv = self.t[row][col];
        debug_assert!(piv.abs() > 1e-12, "pivot on (near-)zero element");
        let inv = 1.0 / piv;
        for v in self.t[row].iter_mut() {
            *v *= inv;
        }
        let pivot_row = self.t[row].clone();
        for (i, r) in self.t.iter_mut().enumerate() {
            if i != row && r[col].abs() > 0.0 {
                let factor = r[col];
                for (v, &p) in r.iter_mut().zip(&pivot_row) {
                    *v -= factor * p;
                }
                r[col] = 0.0; // kill round-off exactly
            }
        }
        self.basis[row] = col;
        #[cfg(debug_assertions)]
        self.check_pivot_invariants(row, col);
    }

    /// Debug-mode dynamic invariant: after a pivot the entering column must
    /// be a unit vector with its 1 in the pivot row, and the basis
    /// bookkeeping must point at it. O(m), so it keeps debug solves usable
    /// even on Algorithm-1 cut ladders with hundreds of rows.
    #[cfg(debug_assertions)]
    fn check_pivot_invariants(&self, row: usize, col: usize) {
        debug_assert_eq!(self.basis[row], col, "basis entry not updated by pivot");
        for (i, r) in self.t.iter().enumerate() {
            let expect = if i == row { 1.0 } else { 0.0 };
            debug_assert!(
                (r[col] - expect).abs() <= 1e-6,
                "entering column {col} is not a unit vector: t[{i}][{col}] = {}",
                r[col]
            );
        }
    }
}

enum RunOutcome {
    Optimal(f64),
    Unbounded,
}

fn normalized(r: &StdRow) -> (Sense, f64) {
    if r.rhs < -TOL {
        (flipped_sense(r.sense, true), -r.rhs)
    } else {
        (r.sense, r.rhs)
    }
}

fn flipped_sense(s: Sense, flip: bool) -> Sense {
    if !flip {
        return s;
    }
    match s {
        Sense::Le => Sense::Ge,
        Sense::Ge => Sense::Le,
        Sense::Eq => Sense::Eq,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LinExpr, Model, VarType};

    fn near(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-6
    }

    #[test]
    fn textbook_maximization() {
        // max 3x + 5y  s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  => 36 at (2, 6)
        let mut m = Model::new();
        let x = m.add_continuous("x", 0.0, f64::INFINITY);
        let y = m.add_continuous("y", 0.0, f64::INFINITY);
        m.add_constraint(x * 1.0, Sense::Le, 4.0);
        m.add_constraint(y * 2.0, Sense::Le, 12.0);
        m.add_constraint(x * 3.0 + y * 2.0, Sense::Le, 18.0);
        m.maximize(x * 3.0 + y * 5.0);
        let r = solve_lp(&m).unwrap();
        assert_eq!(r.status, LpStatus::Optimal);
        assert!(near(r.objective, 36.0));
        assert!(near(r.values[0], 2.0));
        assert!(near(r.values[1], 6.0));
    }

    #[test]
    fn minimization_with_ge() {
        // min 2x + 3y  s.t. x + y >= 10, x >= 2, y >= 3  => x=7, y=3, obj 23
        let mut m = Model::new();
        let x = m.add_continuous("x", 2.0, f64::INFINITY);
        let y = m.add_continuous("y", 3.0, f64::INFINITY);
        m.add_constraint(x + y, Sense::Ge, 10.0);
        m.minimize(x * 2.0 + y * 3.0);
        let r = solve_lp(&m).unwrap();
        assert_eq!(r.status, LpStatus::Optimal);
        assert!(near(r.objective, 23.0));
    }

    #[test]
    fn equality_constraints() {
        // min x + y s.t. x + 2y == 6, x - y == 0 => x = y = 2, obj 4
        let mut m = Model::new();
        let x = m.add_continuous("x", 0.0, f64::INFINITY);
        let y = m.add_continuous("y", 0.0, f64::INFINITY);
        m.add_constraint(x + y * 2.0, Sense::Eq, 6.0);
        m.add_constraint(x - y, Sense::Eq, 0.0);
        m.minimize(x + y);
        let r = solve_lp(&m).unwrap();
        assert_eq!(r.status, LpStatus::Optimal);
        assert!(near(r.values[0], 2.0));
        assert!(near(r.values[1], 2.0));
    }

    #[test]
    fn infeasible_detected() {
        let mut m = Model::new();
        let x = m.add_continuous("x", 0.0, 1.0);
        m.add_constraint(x * 1.0, Sense::Ge, 2.0);
        m.minimize(x * 1.0);
        let r = solve_lp(&m).unwrap();
        assert_eq!(r.status, LpStatus::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut m = Model::new();
        let x = m.add_continuous("x", 0.0, f64::INFINITY);
        m.maximize(x * 1.0);
        let r = solve_lp(&m).unwrap();
        assert_eq!(r.status, LpStatus::Unbounded);
    }

    #[test]
    fn free_variable_split() {
        // min x  s.t. x >= -5  with free x declared via infinite bounds
        let mut m = Model::new();
        let x = m.add_continuous("x", f64::NEG_INFINITY, f64::INFINITY);
        m.add_constraint(x * 1.0, Sense::Ge, -5.0);
        m.minimize(x * 1.0);
        let r = solve_lp(&m).unwrap();
        assert_eq!(r.status, LpStatus::Optimal);
        assert!(near(r.values[0], -5.0));
    }

    #[test]
    fn mirrored_upper_bound_only() {
        // max x  with x <= 7 and no lower bound
        let mut m = Model::new();
        let x = m.add_continuous("x", f64::NEG_INFINITY, 7.0);
        m.maximize(x * 1.0);
        let r = solve_lp(&m).unwrap();
        assert_eq!(r.status, LpStatus::Optimal);
        assert!(near(r.values[0], 7.0));
    }

    #[test]
    fn fixed_variable_substitution() {
        let mut m = Model::new();
        let x = m.add_continuous("x", 3.0, 3.0);
        let y = m.add_continuous("y", 0.0, f64::INFINITY);
        m.add_constraint(x + y, Sense::Le, 10.0);
        m.maximize(y * 1.0 + x * 1.0);
        let r = solve_lp(&m).unwrap();
        assert!(near(r.values[0], 3.0));
        assert!(near(r.values[1], 7.0));
        assert!(near(r.objective, 10.0));
    }

    #[test]
    fn negative_rhs_rows_normalize() {
        // x + y >= -1 is vacuous for x,y >= 0; min x + y = 0.
        let mut m = Model::new();
        let x = m.add_continuous("x", 0.0, f64::INFINITY);
        let y = m.add_continuous("y", 0.0, f64::INFINITY);
        m.add_constraint(x + y, Sense::Ge, -1.0);
        m.minimize(x + y);
        let r = solve_lp(&m).unwrap();
        assert_eq!(r.status, LpStatus::Optimal);
        assert!(near(r.objective, 0.0));
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Klee-Minty-ish degenerate corner; Bland's rule must terminate.
        let mut m = Model::new();
        let x = m.add_continuous("x", 0.0, f64::INFINITY);
        let y = m.add_continuous("y", 0.0, f64::INFINITY);
        let z = m.add_continuous("z", 0.0, f64::INFINITY);
        m.add_constraint(x * 0.5 - y * 5.5 - z * 2.5, Sense::Le, 0.0);
        m.add_constraint(x * 0.5 - y * 1.5 - z * 0.5, Sense::Le, 0.0);
        m.add_constraint(x * 1.0, Sense::Le, 1.0);
        m.maximize(x * 10.0 - y * 57.0 - z * 9.0);
        let r = solve_lp(&m).unwrap();
        assert_eq!(r.status, LpStatus::Optimal);
    }

    #[test]
    fn objective_constant_preserved() {
        let mut m = Model::new();
        let x = m.add_continuous("x", 0.0, 5.0);
        m.minimize(x * 2.0 + 100.0);
        let r = solve_lp(&m).unwrap();
        assert!(near(r.objective, 100.0));
    }

    #[test]
    fn bounded_range_variable() {
        let mut m = Model::new();
        let x = m.add_continuous("x", -2.0, 3.0);
        m.minimize(x * 1.0);
        let r = solve_lp(&m).unwrap();
        assert!(near(r.values[0], -2.0));
        m.maximize(x * 1.0);
        let r = solve_lp(&m).unwrap();
        assert!(near(r.values[0], 3.0));
    }

    #[test]
    fn zero_objective_feasibility_probe() {
        let mut m = Model::new();
        let x = m.add_continuous("x", 0.0, 1.0);
        m.add_constraint(x * 1.0, Sense::Ge, 0.5);
        m.minimize(LinExpr::constant_expr(0.0));
        let r = solve_lp(&m).unwrap();
        assert_eq!(r.status, LpStatus::Optimal);
    }

    #[test]
    fn ge_with_zero_rhs() {
        let mut m = Model::new();
        let x = m.add_continuous("x", 0.0, f64::INFINITY);
        let y = m.add_continuous("y", 0.0, f64::INFINITY);
        m.add_constraint(x - y, Sense::Ge, 0.0);
        m.add_constraint(x + y, Sense::Le, 4.0);
        m.maximize(y * 1.0);
        let r = solve_lp(&m).unwrap();
        assert_eq!(r.status, LpStatus::Optimal);
        assert!(near(r.objective, 2.0));
    }

    #[test]
    fn binary_relaxation_is_continuous() {
        let mut m = Model::new();
        let x = m.add_var("x", VarType::Binary, 0.0, 1.0);
        m.maximize(x * 1.5);
        let r = solve_lp(&m).unwrap();
        assert!(near(r.values[0], 1.0));
        assert!(near(r.objective, 1.5));
    }
}
