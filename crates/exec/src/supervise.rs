//! Deterministic supervision: bounded retries and chaos injection.
//!
//! The pool and cache make a batch *survive* a failing task; this module
//! decides what to do about the failure. A [`Supervisor`] drives one
//! evaluation through up to [`RetryPolicy::max_attempts`] attempts,
//! retrying only failures classified [`ErrorKind::Transient`] — panics
//! and logical-deadline trips are deterministic, so retrying them would
//! only burn budget reproducing the same failure.
//!
//! Everything here is deterministic by construction. Retry decisions
//! depend only on the error's kind and the attempt counter; chaos
//! decisions hash `(fingerprint, attempt)` with a fixed seed, so the same
//! evaluation misbehaves identically at every thread count and on every
//! rerun ("seed-mixed per attempt"). No wall clocks, no global state.
//!
//! [`ChaosPolicy`] is the fault-injection mirror of the fault *suites*
//! that stress the simulated body network: instead of breaking links, it
//! breaks the machinery that runs the search — injected worker panics,
//! spurious transient errors, and cache-entry drops — to prove the
//! supervision layer actually recovers. It is a test instrument; release
//! runs with chaos enabled are flagged by lint rule HL039.

use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::error::{ErrorKind, EvalError};

/// How many times one evaluation may be attempted, and which failures
/// qualify for another attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RetryPolicy {
    /// Total attempts per evaluation, including the first (so `1` means
    /// "never retry"). `0` is a misconfiguration — lint rule HL038 flags
    /// it — and is treated as `1` at run time rather than evaluating
    /// nothing.
    pub max_attempts: u32,
    /// Also retry [`ErrorKind::Permanent`] failures. Deterministic
    /// evaluators fail permanently the same way every time, so this only
    /// wastes attempts; it exists as an explicit misconfiguration knob
    /// for HL038 and for tests. Deadline trips are never retried.
    pub retry_permanent: bool,
}

impl RetryPolicy {
    /// Retry transients up to `max_attempts` total attempts.
    pub fn new(max_attempts: u32) -> Self {
        Self {
            max_attempts,
            retry_permanent: false,
        }
    }

    /// The effective attempt bound (the `0` misconfiguration clamps to 1).
    pub fn attempt_bound(&self) -> u32 {
        self.max_attempts.max(1)
    }
}

impl Default for RetryPolicy {
    /// Three attempts, transients only — enough to ride out injected
    /// chaos without masking real failures.
    fn default() -> Self {
        Self::new(3)
    }
}

/// Deterministic fault injection for the execution engine itself.
///
/// Each knob is a 1-in-N odds (`0` disables the knob). Whether a given
/// `(fingerprint, attempt)` pair is hit is decided by a splitmix64 hash
/// of the pair, the policy seed and a per-knob salt — never by timing or
/// thread identity — so a chaos run is exactly reproducible and
/// thread-count invariant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct ChaosPolicy {
    /// Seed mixed into every injection decision.
    pub seed: u64,
    /// 1-in-N odds that an attempt *panics* (a real unwinding `panic!`,
    /// caught and degraded like any worker panic). `0` = never.
    pub panic_in: u32,
    /// 1-in-N odds that an attempt fails with a spurious
    /// [`ErrorKind::Transient`] error before the evaluator runs. `0` =
    /// never.
    pub transient_in: u32,
    /// 1-in-N odds that, after a *successful* attempt, the cached result
    /// is dropped again so a later lookup must recompute it. `0` = never.
    pub drop_in: u32,
    /// 1-in-N odds that a persistence-layer segment append is silently
    /// dropped (never written), so a restart must re-simulate the lost
    /// points. `0` = never. Consumed by `hi-serve`'s segment store.
    pub segdrop_in: u32,
    /// 1-in-N odds that a persistence-layer segment append is torn
    /// mid-entry (only a prefix of the framed bytes lands), so a restart
    /// must truncate the tail and recover. `0` = never. Consumed by
    /// `hi-serve`'s segment store.
    pub torn_in: u32,
}

/// Per-knob salts keep the three decision streams independent: a point
/// unlucky with panics is not automatically unlucky with drops.
const SALT_PANIC: u64 = 0x0070_616e_6963; // "panic"
const SALT_TRANSIENT: u64 = 0x0074_7261_6e73; // "trans"
const SALT_DROP: u64 = 0x6472_6f70; // "drop"
const SALT_SEGDROP: u64 = 0x0073_6567_6472; // "segdr"
const SALT_TORN: u64 = 0x746f_726e; // "torn"

/// The splitmix64 finalizer: a cheap, well-mixed 64-bit permutation.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl ChaosPolicy {
    /// Parses a `--chaos` spec string.
    ///
    /// Grammar: `field ("," field)*` where `field` is one of
    /// `seed=<u64>`, `panic=<N>`, `transient=<N>`, `drop=<N>`,
    /// `segdrop=<N>`, `torn=<N>`; the odds are 1-in-N (`0` disables).
    /// Unset fields default to 0.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending field for empty specs,
    /// unknown keys, missing `=`, or unparsable values.
    pub fn parse(spec: &str) -> Result<Self, String> {
        if spec.trim().is_empty() {
            return Err("empty chaos spec (expected e.g. `seed=1,transient=4`)".into());
        }
        let mut policy = ChaosPolicy::default();
        for field in spec.split(',') {
            let field = field.trim();
            let (key, value) = field
                .split_once('=')
                .ok_or_else(|| format!("chaos field `{field}` is missing `=<value>`"))?;
            let parse_u32 = |v: &str| {
                v.parse::<u32>()
                    .map_err(|_| format!("chaos field `{key}` has invalid value `{v}`"))
            };
            match key.trim() {
                "seed" => {
                    policy.seed = value
                        .trim()
                        .parse::<u64>()
                        .map_err(|_| format!("chaos field `seed` has invalid value `{value}`"))?;
                }
                "panic" => policy.panic_in = parse_u32(value.trim())?,
                "transient" => policy.transient_in = parse_u32(value.trim())?,
                "drop" => policy.drop_in = parse_u32(value.trim())?,
                "segdrop" => policy.segdrop_in = parse_u32(value.trim())?,
                "torn" => policy.torn_in = parse_u32(value.trim())?,
                other => {
                    return Err(format!(
                        "unknown chaos field `{other}` \
                         (expected seed/panic/transient/drop/segdrop/torn)"
                    ))
                }
            }
        }
        Ok(policy)
    }

    /// True when every injection knob is disabled.
    pub fn is_noop(&self) -> bool {
        self.panic_in == 0
            && self.transient_in == 0
            && self.drop_in == 0
            && self.segdrop_in == 0
            && self.torn_in == 0
    }

    fn roll(&self, salt: u64, fingerprint: u64, attempt: u32, one_in: u32) -> bool {
        if one_in == 0 {
            return false;
        }
        let h = mix(mix(self.seed ^ salt) ^ fingerprint ^ (u64::from(attempt) << 48));
        h.is_multiple_of(u64::from(one_in))
    }

    /// Whether this `(fingerprint, attempt)` pair panics.
    pub fn injects_panic(&self, fingerprint: u64, attempt: u32) -> bool {
        self.roll(SALT_PANIC, fingerprint, attempt, self.panic_in)
    }

    /// Whether this pair fails with a spurious transient error.
    pub fn injects_transient(&self, fingerprint: u64, attempt: u32) -> bool {
        self.roll(SALT_TRANSIENT, fingerprint, attempt, self.transient_in)
    }

    /// Whether the cached result of a success at this pair is dropped.
    pub fn drops_entry(&self, fingerprint: u64, attempt: u32) -> bool {
        self.roll(SALT_DROP, fingerprint, attempt, self.drop_in)
    }

    /// Whether the persistence layer silently drops the segment append
    /// numbered `sequence` for stream `fingerprint` (the fleet key).
    pub fn drops_segment(&self, fingerprint: u64, sequence: u32) -> bool {
        self.roll(SALT_SEGDROP, fingerprint, sequence, self.segdrop_in)
    }

    /// Whether the persistence layer tears the segment append numbered
    /// `sequence` for stream `fingerprint`, landing only a byte prefix.
    pub fn tears_segment(&self, fingerprint: u64, sequence: u32) -> bool {
        self.roll(SALT_TORN, fingerprint, sequence, self.torn_in)
    }
}

///// The deterministic reconnect backoff: `base_ms << attempt`, capped at
/// 30 s, plus a seed-indexed jitter of up to 25% so a fleet of clients
/// retrying the same outage doesn't stampede in lockstep. Attempt 0 is
/// the first *re*try; decisions are pure functions of `(seed, attempt)`,
/// in the same splitmix idiom as [`ChaosPolicy`]'s injection rolls.
pub fn backoff_delay_ms(seed: u64, attempt: u32, base_ms: u64) -> u64 {
    const CAP_MS: u64 = 30_000;
    let exp = base_ms.saturating_mul(1u64 << attempt.min(20)).min(CAP_MS);
    let jitter_span = exp / 4;
    if jitter_span == 0 {
        return exp;
    }
    exp + mix(seed ^ u64::from(attempt).wrapping_mul(0x9E37_79B9)) % jitter_span
}

/// What one supervised evaluation went through, for observability
/// counters (`exec.retry`, `exec.chaos`) and tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct SupervisionReport {
    /// Attempts consumed (at least 1).
    pub attempts: u32,
    /// Retries performed (`attempts - 1`).
    pub retries: u32,
    /// Chaos-injected panics among those attempts.
    pub chaos_panics: u32,
    /// Chaos-injected spurious transient failures among those attempts.
    pub chaos_transients: u32,
    /// Chaos asked the caller to drop the cached entry after success.
    pub drop_requested: bool,
}

impl SupervisionReport {
    /// Total chaos injections recorded in this report (the drop request
    /// counts once when present).
    pub fn chaos_events(&self) -> u32 {
        self.chaos_panics + self.chaos_transients + u32::from(self.drop_requested)
    }
}

/// Drives one evaluation through bounded, deterministic attempts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Supervisor {
    /// The retry budget and classification policy.
    pub retry: RetryPolicy,
    /// Optional deterministic fault injection.
    pub chaos: Option<ChaosPolicy>,
}

impl Supervisor {
    /// A supervisor with the given policies.
    pub fn new(retry: RetryPolicy, chaos: Option<ChaosPolicy>) -> Self {
        Self { retry, chaos }
    }

    /// Runs `attempt_fn` until it succeeds, fails unretriably, or the
    /// attempt bound is exhausted. The closure receives the attempt index
    /// (0-based) so callers can mix it into per-attempt seeds.
    ///
    /// Panics inside `attempt_fn` are caught and degraded to permanent
    /// [`EvalError`]s, exactly like the pool's catching paths. Chaos (if
    /// any) may replace an attempt with an injected panic or transient
    /// failure *before* `attempt_fn` runs, and may request a cache drop
    /// after a success; all decisions are keyed by `(fingerprint,
    /// attempt)` only.
    pub fn run<V>(
        &self,
        fingerprint: u64,
        mut attempt_fn: impl FnMut(u32) -> Result<V, EvalError>,
    ) -> (Result<V, EvalError>, SupervisionReport) {
        let bound = self.retry.attempt_bound();
        let mut report = SupervisionReport::default();
        let mut last_err: Option<EvalError> = None;
        for attempt in 0..bound {
            report.attempts = attempt + 1;
            if attempt > 0 {
                report.retries += 1;
            }
            let chaos_hit = self.chaos.as_ref().and_then(|chaos| {
                if chaos.injects_panic(fingerprint, attempt) {
                    report.chaos_panics += 1;
                    // A real unwinding panic, so the recovery path under
                    // test is the one production panics take.
                    let payload = catch_unwind(|| -> () {
                        panic!("chaos: injected worker panic (attempt {attempt})")
                    })
                    .expect_err("the injected panic always unwinds");
                    let degraded = EvalError::from_panic(payload.as_ref());
                    Some(EvalError::transient(degraded.message().to_owned()))
                } else if chaos.injects_transient(fingerprint, attempt) {
                    report.chaos_transients += 1;
                    Some(EvalError::transient(format!(
                        "chaos: injected transient failure (attempt {attempt})"
                    )))
                } else {
                    None
                }
            });
            let result = match chaos_hit {
                Some(err) => Err(err),
                None => catch_unwind(AssertUnwindSafe(|| attempt_fn(attempt)))
                    .unwrap_or_else(|payload| Err(EvalError::from_panic(payload.as_ref()))),
            };
            match result {
                Ok(value) => {
                    if let Some(chaos) = &self.chaos {
                        report.drop_requested = chaos.drops_entry(fingerprint, attempt);
                    }
                    return (Ok(value), report);
                }
                Err(err) => {
                    let retriable = match err.kind() {
                        ErrorKind::Transient => true,
                        ErrorKind::Permanent => self.retry.retry_permanent,
                        // Deadlines are logical budgets: identical on
                        // retry, so never worth another attempt.
                        ErrorKind::DeadlineExceeded => false,
                    };
                    last_err = Some(err);
                    if !retriable {
                        break;
                    }
                }
            }
        }
        (
            Err(last_err.expect("the attempt loop ran at least once")),
            report,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_full_and_partial_specs() {
        let policy =
            ChaosPolicy::parse("seed=7,panic=13,transient=3,drop=8,segdrop=5,torn=6").unwrap();
        assert_eq!(
            policy,
            ChaosPolicy {
                seed: 7,
                panic_in: 13,
                transient_in: 3,
                drop_in: 8,
                segdrop_in: 5,
                torn_in: 6,
            }
        );
        let policy = ChaosPolicy::parse(" transient=2 ").unwrap();
        assert_eq!(policy.transient_in, 2);
        assert_eq!(policy.seed, 0);
        assert!(!policy.is_noop());
        assert!(ChaosPolicy::parse("seed=9").unwrap().is_noop());
        assert!(!ChaosPolicy::parse("segdrop=2").unwrap().is_noop());
        assert!(!ChaosPolicy::parse("torn=2").unwrap().is_noop());
    }

    #[test]
    fn segment_chaos_rolls_are_deterministic_and_independent() {
        let policy = ChaosPolicy::parse("seed=42,segdrop=3,torn=3").unwrap();
        for key in 0..64u64 {
            for seq in 0..4 {
                assert_eq!(
                    policy.drops_segment(key, seq),
                    policy.drops_segment(key, seq)
                );
                assert_eq!(
                    policy.tears_segment(key, seq),
                    policy.tears_segment(key, seq)
                );
            }
        }
        let drops: Vec<u64> = (0..256).filter(|&k| policy.drops_segment(k, 0)).collect();
        let tears: Vec<u64> = (0..256).filter(|&k| policy.tears_segment(k, 0)).collect();
        assert!(!drops.is_empty() && drops.len() < 256, "{}", drops.len());
        assert_ne!(drops, tears, "the streams share a salt");
    }

    #[test]
    fn backoff_grows_exponentially_and_stays_bounded() {
        let base = backoff_delay_ms(9, 0, 50);
        assert!((50..63).contains(&base), "{base}");
        // Doubling per attempt, up to the cap (+25% jitter headroom).
        let mut prev = base;
        for attempt in 1..8 {
            let next = backoff_delay_ms(9, attempt, 50);
            assert!(next > prev, "attempt {attempt}: {next} <= {prev}");
            prev = next;
        }
        for attempt in 0..40 {
            assert!(backoff_delay_ms(9, attempt, 50) <= 37_500);
            // Deterministic per (seed, attempt).
            assert_eq!(
                backoff_delay_ms(9, attempt, 50),
                backoff_delay_ms(9, attempt, 50)
            );
        }
        // Different seeds de-synchronize the jitter somewhere.
        assert!((0..16).any(|s| backoff_delay_ms(s, 3, 50) != backoff_delay_ms(s + 16, 3, 50)));
        // A degenerate base still terminates at zero delay.
        assert_eq!(backoff_delay_ms(1, 5, 0), 0);
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in [
            "", "  ", "panic", "panic=x", "seed=-1", "mayhem=3", "panic=3,",
        ] {
            let err = ChaosPolicy::parse(bad).unwrap_err();
            assert!(!err.is_empty(), "no message for `{bad}`");
        }
        assert!(ChaosPolicy::parse("boom=1").unwrap_err().contains("boom"));
    }

    #[test]
    fn rolls_are_deterministic_and_respect_odds() {
        let policy = ChaosPolicy::parse("seed=42,panic=1,transient=0,drop=4").unwrap();
        // 1-in-1 always fires; 1-in-0 never does.
        for fp in 0..64u64 {
            assert!(policy.injects_panic(fp, 0));
            assert!(!policy.injects_transient(fp, 0));
        }
        // Decisions are pure functions of (fingerprint, attempt).
        for fp in 0..64u64 {
            for attempt in 0..4 {
                assert_eq!(
                    policy.drops_entry(fp, attempt),
                    policy.drops_entry(fp, attempt)
                );
            }
        }
        // 1-in-4 fires sometimes, not always.
        let fired = (0..256u64).filter(|&fp| policy.drops_entry(fp, 0)).count();
        assert!(fired > 0 && fired < 256, "1-in-4 odds fired {fired}/256");
        // The streams are independent: a different salt, a different set.
        let policy = ChaosPolicy::parse("seed=42,panic=4,transient=4,drop=4").unwrap();
        let panics: Vec<u64> = (0..256).filter(|&fp| policy.injects_panic(fp, 0)).collect();
        let drops: Vec<u64> = (0..256).filter(|&fp| policy.drops_entry(fp, 0)).collect();
        assert_ne!(panics, drops);
    }

    #[test]
    fn success_first_try_uses_one_attempt() {
        let supervisor = Supervisor::default();
        let (result, report) = supervisor.run(1, |_| Ok::<_, EvalError>(11));
        assert_eq!(result.unwrap(), 11);
        assert_eq!(report.attempts, 1);
        assert_eq!(report.retries, 0);
        assert!(!report.drop_requested);
        assert_eq!(report.chaos_events(), 0);
    }

    #[test]
    fn transient_failures_are_retried_to_the_bound() {
        let supervisor = Supervisor::new(RetryPolicy::new(3), None);
        let mut calls = 0u32;
        let (result, report) = supervisor.run(1, |attempt| {
            calls += 1;
            assert_eq!(attempt, calls - 1, "attempt index tracks the loop");
            Err::<u32, _>(EvalError::transient("flaky"))
        });
        assert!(result.unwrap_err().is_transient());
        assert_eq!((calls, report.attempts, report.retries), (3, 3, 2));

        // Success on a later attempt stops retrying.
        let mut calls = 0u32;
        let (result, report) = supervisor.run(1, |attempt| {
            calls += 1;
            if attempt < 2 {
                Err(EvalError::transient("flaky"))
            } else {
                Ok(99)
            }
        });
        assert_eq!(result.unwrap(), 99);
        assert_eq!((calls, report.retries), (3, 2));
    }

    #[test]
    fn permanent_and_deadline_failures_are_not_retried() {
        let supervisor = Supervisor::new(RetryPolicy::new(5), None);
        let mut calls = 0u32;
        let (result, _) = supervisor.run(1, |_| {
            calls += 1;
            Err::<u32, _>(EvalError::new("broken point"))
        });
        assert_eq!(result.unwrap_err().kind(), ErrorKind::Permanent);
        assert_eq!(calls, 1);

        // Even the retry_permanent misconfiguration never retries
        // deadline trips: the budget is logical, the trip deterministic.
        let supervisor = Supervisor::new(
            RetryPolicy {
                max_attempts: 5,
                retry_permanent: true,
            },
            None,
        );
        let mut calls = 0u32;
        let (result, _) = supervisor.run(1, |_| {
            calls += 1;
            Err::<u32, _>(EvalError::deadline("event budget exceeded"))
        });
        assert_eq!(result.unwrap_err().kind(), ErrorKind::DeadlineExceeded);
        assert_eq!(calls, 1);
    }

    #[test]
    fn panics_in_the_attempt_are_degraded_not_propagated() {
        let supervisor = Supervisor::default();
        let (result, report) = supervisor.run(1, |_| -> Result<u32, EvalError> {
            panic!("evaluator bug");
        });
        let err = result.unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Permanent);
        assert!(err.message().contains("evaluator bug"));
        assert_eq!(report.attempts, 1);
    }

    #[test]
    fn zero_attempts_misconfiguration_still_evaluates_once() {
        let supervisor = Supervisor::new(RetryPolicy::new(0), None);
        let (result, report) = supervisor.run(1, |_| Ok::<_, EvalError>(5));
        assert_eq!(result.unwrap(), 5);
        assert_eq!(report.attempts, 1);
    }

    #[test]
    fn chaos_injections_are_reported_and_retried() {
        // 1-in-1 transient odds: every attempt fails injected, so the
        // whole budget is consumed and the final error is transient.
        let chaos = ChaosPolicy::parse("seed=1,transient=1").unwrap();
        let supervisor = Supervisor::new(RetryPolicy::new(3), Some(chaos));
        let mut calls = 0u32;
        let (result, report) = supervisor.run(77, |_| {
            calls += 1;
            Ok::<_, EvalError>(1)
        });
        let err = result.unwrap_err();
        assert!(err.is_transient());
        assert!(err.message().contains("chaos"));
        assert_eq!(calls, 0, "the evaluator never ran");
        assert_eq!(report.chaos_transients, 3);
        assert_eq!(report.attempts, 3);

        // Injected panics unwind for real and are degraded to transient.
        let chaos = ChaosPolicy::parse("seed=1,panic=1").unwrap();
        let supervisor = Supervisor::new(RetryPolicy::new(2), Some(chaos));
        let (result, report) = supervisor.run(77, |_| Ok::<_, EvalError>(1));
        let err = result.unwrap_err();
        assert!(err.is_transient());
        assert!(err.message().contains("injected worker panic"));
        assert_eq!(report.chaos_panics, 2);
    }

    #[test]
    fn chaos_runs_are_reproducible_per_fingerprint() {
        let chaos = ChaosPolicy::parse("seed=9,panic=3,transient=3,drop=2").unwrap();
        let supervisor = Supervisor::new(RetryPolicy::new(4), Some(chaos));
        for fp in 0..32u64 {
            let (r1, report1) = supervisor.run(fp, |_| Ok::<_, EvalError>(fp));
            let (r2, report2) = supervisor.run(fp, |_| Ok::<_, EvalError>(fp));
            assert_eq!(r1.is_ok(), r2.is_ok(), "fingerprint {fp}");
            assert_eq!(report1, report2, "fingerprint {fp}");
        }
    }
}
