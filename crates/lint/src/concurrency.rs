//! Static validation of the parallel-execution configuration and of
//! checker lock accounting.
//!
//! The execution substrate is permissive at run time — `ThreadPool::new`
//! clamps a zero thread count to one, `EvalCache::with_shards` rounds any
//! shard count up to a power of two — so misconfigurations do not crash,
//! they silently waste a run (a 4096-thread pool on 8 cores spends its
//! life context-switching; a "17-shard" cache silently becomes 32). This
//! pass explains them up front:
//!
//! * **HL040** — an execution misconfiguration (warning, because the
//!   engine survives all of them): a requested worker count of zero, a
//!   worker count wildly above the machine's available parallelism, or a
//!   cache shard count that is zero or not a power of two (the
//!   constructor rounds, so the configured number is not the number you
//!   get);
//! * **HL041** — a model program handed to the `hi-check` model checker
//!   finished an execution with more lock acquisitions than releases
//!   (error): a leaked guard means every later acquirer of that lock
//!   deadlocks, and a checker report built on top of it is meaningless.
//!   The specs are lowered from `hi-check`'s per-lock `LockUsage`
//!   accounting.
//!
//! Like the rest of the crate this module is dependency-free: callers
//! lower their pool/cache configuration into an [`ExecSpec`] and checker
//! lock usage into [`ModelLockSpec`]s.

use crate::report::{Finding, Report, RuleId, Span};

/// One parallel-execution configuration, lowered to plain numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecSpec {
    /// Requested worker-thread count (before the engine's clamp to 1).
    pub threads: usize,
    /// The machine's available parallelism
    /// ([`std::thread::available_parallelism`]), or 0 if unknown.
    pub available_parallelism: usize,
    /// Requested evaluation-cache shard count (before rounding up to a
    /// power of two).
    pub cache_shards: usize,
}

/// Ratio of requested threads to available cores beyond which HL040
/// calls the pool oversubscribed. Modest oversubscription (2–4×) can
/// paper over blocking; 8× and up is pure scheduler churn for CPU-bound
/// simulation work.
const OVERSUBSCRIPTION_RATIO: usize = 8;

/// Lints a parallel-execution configuration (rule HL040).
pub fn lint_exec(spec: &ExecSpec) -> Report {
    let mut report = Report::new();
    if spec.threads == 0 {
        report.push(Finding::new(
            RuleId::ExecMisconfigured,
            Span::Model,
            "thread pool configured with 0 workers — as written the run \
             would execute nothing (the engine clamps to 1)",
        ));
    } else if spec.available_parallelism > 0
        && spec.threads
            > spec
                .available_parallelism
                .saturating_mul(OVERSUBSCRIPTION_RATIO)
    {
        report.push(Finding::new(
            RuleId::ExecMisconfigured,
            Span::Model,
            format!(
                "thread pool configured with {} workers on {} available \
                 core(s) — CPU-bound simulations gain nothing past the \
                 core count; this only adds scheduler churn",
                spec.threads, spec.available_parallelism
            ),
        ));
    }
    if spec.cache_shards == 0 {
        report.push(Finding::new(
            RuleId::ExecMisconfigured,
            Span::Model,
            "evaluation cache configured with 0 shards — the engine \
             rounds this up to 1, i.e. a single global lock",
        ));
    } else if !spec.cache_shards.is_power_of_two() {
        report.push(Finding::new(
            RuleId::ExecMisconfigured,
            Span::Model,
            format!(
                "evaluation cache configured with {} shards — shard \
                 selection masks a hash, so the engine silently rounds \
                 this up to {}",
                spec.cache_shards,
                spec.cache_shards.next_power_of_two()
            ),
        ));
    }
    report
}

/// Per-lock acquire/release accounting from one checker execution,
/// lowered from `hi-check`'s `LockUsage`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelLockSpec {
    /// The lock's name as the checker reports it.
    pub name: String,
    /// Successful acquisitions across the execution.
    pub acquires: u64,
    /// Releases (guard drops and condvar parks) across the execution.
    pub releases: u64,
}

/// Lints checker lock accounting (rule HL041).
///
/// `releases > acquires` is impossible by construction in `hi-check` (a
/// release is only counted against a held lock), so only the leak
/// direction fires.
pub fn lint_model_locks(specs: &[ModelLockSpec]) -> Report {
    let mut report = Report::new();
    for spec in specs {
        if spec.releases < spec.acquires {
            report.push(Finding::new(
                RuleId::ModelLockLeak,
                Span::Lock {
                    name: spec.name.clone(),
                },
                format!(
                    "model acquired this lock {} time(s) but released it \
                     only {} — a leaked guard deadlocks every later \
                     acquirer, and checker verdicts past that point are \
                     meaningless",
                    spec.acquires, spec.releases
                ),
            ));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sane() -> ExecSpec {
        ExecSpec {
            threads: 8,
            available_parallelism: 8,
            cache_shards: 32,
        }
    }

    #[test]
    fn a_sane_exec_config_is_clean() {
        assert!(lint_exec(&sane()).is_clean());
        // Unknown parallelism disables the oversubscription check rather
        // than guessing.
        let spec = ExecSpec {
            threads: 512,
            available_parallelism: 0,
            ..sane()
        };
        assert!(lint_exec(&spec).is_clean());
        // Modest oversubscription is tolerated.
        let spec = ExecSpec {
            threads: 64,
            available_parallelism: 8,
            ..sane()
        };
        assert!(lint_exec(&spec).is_clean());
    }

    #[test]
    fn hl040_fires_on_each_misconfiguration() {
        let report = lint_exec(&ExecSpec {
            threads: 0,
            ..sane()
        });
        assert!(report.has_rule(RuleId::ExecMisconfigured));
        assert!(!report.has_errors(), "HL040 is a warning");

        let report = lint_exec(&ExecSpec {
            threads: 65,
            available_parallelism: 8,
            ..sane()
        });
        assert!(report.has_rule(RuleId::ExecMisconfigured), "{report}");

        let report = lint_exec(&ExecSpec {
            cache_shards: 0,
            ..sane()
        });
        assert_eq!(report.warning_count(), 1);

        let report = lint_exec(&ExecSpec {
            cache_shards: 17,
            ..sane()
        });
        assert!(report.to_string().contains("rounds this up to 32"));
    }

    #[test]
    fn hl040_findings_accumulate() {
        let report = lint_exec(&ExecSpec {
            threads: 0,
            available_parallelism: 8,
            cache_shards: 3,
        });
        assert_eq!(report.warning_count(), 2);
    }

    #[test]
    fn hl041_fires_only_on_leaks() {
        let specs = vec![
            ModelLockSpec {
                name: "pool.generation".into(),
                acquires: 12,
                releases: 12,
            },
            ModelLockSpec {
                name: "cache.shard0".into(),
                acquires: 5,
                releases: 4,
            },
        ];
        let report = lint_model_locks(&specs);
        assert!(report.has_rule(RuleId::ModelLockLeak));
        assert!(report.has_errors(), "HL041 is an error");
        assert_eq!(report.error_count(), 1, "balanced lock must not fire");
        assert!(report.to_string().contains("cache.shard0"), "{report}");
        assert!(lint_model_locks(&[]).is_clean());
    }
}
