//! A small, deterministic discrete-event simulation (DES) kernel.
//!
//! This crate replaces the Castalia/OMNeT++ simulation substrate used by
//! *"Optimized Design of a Human Intranet Network"* (DAC 2017). It provides
//! the pieces every DES needs and nothing network-specific:
//!
//! * [`SimTime`] / [`SimDuration`] — nanosecond-resolution simulated time
//!   as integers, so event ordering is exact and runs are reproducible.
//! * [`Engine`] — a future-event list with a monotone clock, stable FIFO
//!   ordering among simultaneous events, cancellable timers and an optional
//!   horizon.
//! * [`rng`] — seed-derived independent random streams (SplitMix64-based),
//!   so each stochastic component of a model gets its own reproducible
//!   generator.
//! * [`stats`] — counters, Welford tallies, time-weighted averages and
//!   fixed-bin histograms for collecting run metrics.
//!
//! # Example
//!
//! A two-event "ping-pong" model:
//!
//! ```
//! use hi_des::{Engine, SimDuration, SimTime};
//!
//! #[derive(Debug)]
//! enum Ev { Ping, Pong }
//!
//! let mut engine = Engine::new();
//! engine.set_horizon(SimTime::from_secs(1.0));
//! engine.schedule_at(SimTime::ZERO, Ev::Ping);
//! let mut pings = 0;
//! while let Some((t, ev)) = engine.pop() {
//!     match ev {
//!         Ev::Ping => {
//!             pings += 1;
//!             engine.schedule_at(t + SimDuration::from_millis(400.0), Ev::Pong);
//!         }
//!         Ev::Pong => {
//!             engine.schedule_at(t + SimDuration::from_millis(400.0), Ev::Ping);
//!         }
//!     }
//! }
//! assert_eq!(pings, 2); // t = 0 and t = 0.8 s; 1.6 s is past the horizon
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod check;
mod engine;
pub mod fault;
pub mod rng;
pub mod stats;
mod time;

pub use engine::{Engine, EventHandle};
pub use fault::Window;
pub use time::{SimDuration, SimTime};
