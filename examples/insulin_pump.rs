//! Safety-critical wearable (e.g. an insulin delivery loop): reliability
//! is non-negotiable — the paper's `PDRmin → 100%` regime, where the
//! optimizer abandons the star, switches to a flooding mesh and finally
//! adds a fifth node purely for redundancy, trading away lifetime.
//!
//! ```sh
//! cargo run --release -p hi-opt --example insulin_pump
//! ```

use hi_opt::channel::ChannelParams;
use hi_opt::des::SimDuration;
use hi_opt::{explore, Problem, RouteChoice, SimEvaluator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut evaluator = SimEvaluator::new(
        ChannelParams::default(),
        SimDuration::from_secs(120.0),
        3,
        0x1453,
    );

    // The demanding end of the reliability spectrum.
    for pdr_min in [0.97, 0.99, 0.999] {
        let problem = Problem::paper_default(pdr_min);
        let outcome = explore(&problem, &mut evaluator)?;
        println!("PDRmin = {:.1}%:", pdr_min * 100.0);
        match outcome.best {
            Some((point, eval)) => {
                println!("  design   : {point}");
                println!(
                    "  topology : {} with {} nodes at {:?}",
                    match point.routing {
                        RouteChoice::Star => "star",
                        RouteChoice::Mesh => "flooding mesh",
                    },
                    point.num_nodes(),
                    point.placement.locations()
                );
                println!(
                    "  measured : PDR {:.2}%  lifetime {:.1} days  worst node {:.2} mW",
                    eval.pdr * 100.0,
                    eval.nlt_days,
                    eval.power_mw
                );
                if point.routing == RouteChoice::Mesh {
                    println!(
                        "  note     : redundant parallel links beat the star's single relay\n\
                         \x20            at this reliability level, at the cost of lifetime"
                    );
                }
            }
            None => println!("  infeasible — no configuration reaches this floor"),
        }
        println!();
    }
    Ok(())
}
