//! Vector clocks for happens-before tracking.

/// A vector clock: component `i` counts the visible operations thread `i`
/// has performed that the clock's owner knows about.
///
/// The happens-before partial order is the component-wise `<=` on clocks:
/// event A happens before event B iff A's clock is `<=` B's clock in every
/// component. Two accesses to the same plain data cell that are not
/// ordered either way — and at least one of which is a write — are a data
/// race.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VClock(Vec<u64>);

impl VClock {
    /// The zero clock (knows about nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// The component for thread `tid` (0 if never set).
    pub fn get(&self, tid: usize) -> u64 {
        self.0.get(tid).copied().unwrap_or(0)
    }

    /// Increments this thread's own component: a new epoch begins.
    pub fn tick(&mut self, tid: usize) {
        if self.0.len() <= tid {
            self.0.resize(tid + 1, 0);
        }
        self.0[tid] += 1;
    }

    /// Component-wise maximum: afterwards `self` knows everything `other`
    /// knows. This is the "synchronizes-with" edge of a Release store
    /// observed by an Acquire load, or a mutex unlock observed by the
    /// next lock.
    pub fn join(&mut self, other: &VClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (mine, theirs) in self.0.iter_mut().zip(other.0.iter()) {
            *mine = (*mine).max(*theirs);
        }
    }

    /// Whether every component of `self` is `<=` the matching component of
    /// `other` — i.e. the events summarized by `self` all happen before
    /// (or are) the point summarized by `other`.
    pub fn leq(&self, other: &VClock) -> bool {
        self.0
            .iter()
            .enumerate()
            .all(|(tid, &component)| component <= other.get(tid))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_and_get() {
        let mut c = VClock::new();
        assert_eq!(c.get(3), 0);
        c.tick(3);
        c.tick(3);
        c.tick(0);
        assert_eq!((c.get(0), c.get(3)), (1, 2));
    }

    #[test]
    fn join_is_component_max() {
        let mut a = VClock::new();
        a.tick(0);
        a.tick(0);
        let mut b = VClock::new();
        b.tick(1);
        a.join(&b);
        assert_eq!((a.get(0), a.get(1)), (2, 1));
    }

    #[test]
    fn leq_is_the_happens_before_order() {
        let mut a = VClock::new();
        a.tick(0);
        let mut b = a.clone();
        b.tick(1);
        assert!(a.leq(&b));
        assert!(!b.leq(&a));
        // Concurrent clocks: unordered both ways.
        let mut c = VClock::new();
        c.tick(2);
        assert!(!b.leq(&c) && !c.leq(&b));
        // The zero clock precedes everything.
        assert!(VClock::new().leq(&c));
    }
}
