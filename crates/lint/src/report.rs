//! Diagnostics: rule identifiers, severities, spans and the report that
//! collects them.

use std::fmt;

/// How serious a finding is.
///
/// The contract consumers rely on: **`Error` means the analyzed object is
/// structurally broken** (non-finite numbers, references to variables that
/// do not exist, contradictory bounds on one variable) and solving it would
/// compute garbage — callers abort. `Warning` flags models that are legal
/// but suspicious or provably infeasible — a MILP whose feasible region is
/// empty is still a *valid* question with the answer "infeasible", so
/// Algorithm 1's cut ladder may legitimately drive a model into this state.
/// `Info` marks harmless redundancy worth knowing about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Structurally broken; solving would be meaningless.
    Error,
    /// Legal but suspicious (or provably infeasible).
    Warning,
    /// Harmless observation.
    Info,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Info => "info",
        })
    }
}

/// Stable identifier of a lint rule.
///
/// Variants are declared in ascending `HLxxx` code order, so the derived
/// `Ord` sorts findings exactly as their codes read.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[non_exhaustive]
pub enum RuleId {
    /// A variable bound is NaN, or a lower bound of `+inf` / upper of `-inf`.
    NonFiniteBound,
    /// A variable's lower bound exceeds its upper bound.
    CrossedBounds,
    /// A row or objective coefficient (or a right-hand side) is not finite.
    NonFiniteCoefficient,
    /// A row or the objective references a variable the model does not have.
    DanglingVariable,
    /// A row with no effective terms (empty or all-zero coefficients).
    EmptyRow,
    /// A variable that appears in no row and not in the objective.
    UnusedVariable,
    /// A row identical (up to scaling) to an earlier row.
    DuplicateRow,
    /// A row implied by an earlier row with the same left-hand side.
    DominatedRow,
    /// Interval (bound) propagation proves the model infeasible.
    BoundInfeasible,
    /// A row that bound propagation proves always satisfied.
    RedundantRow,
    /// Coefficient magnitudes in one row span a dangerous ratio (big-M).
    Conditioning,
    /// A no-good/power cut no tighter than one already in the model.
    RedundantCut,
    /// An event time in a schedule is NaN or infinite.
    NonFiniteTime,
    /// Event times in a schedule go backwards.
    NonMonotoneSchedule,
    /// A configuration-space dimension with zero values.
    EmptyDimension,
    /// A configuration-space dimension with exactly one value.
    DegenerateDimension,
    /// The configuration space is too large to enumerate exhaustively.
    SpaceExplosion,
    /// A fault window closes before it opens (or has a NaN/absurd edge);
    /// such a window is inert — the scenario does not do what it reads as.
    InvertedFaultWindow,
    /// Two fault windows on the same entity overlap, so recovery/outage
    /// events interleave (first recovery revives the node mid-outage).
    OverlappingFaultWindows,
    /// A fault window opens at or after the simulation horizon and can
    /// never take effect.
    FaultPastHorizon,
    /// A fault scenario disables the hub/coordinator node, taking the
    /// whole star network down for the window.
    HubDisabled,
    /// The same metric name is declared more than once in a metrics
    /// registry (typically two subsystems claiming one counter, or one
    /// subsystem registering its catalog twice).
    DuplicateMetric,
    /// A retry/deadline supervision misconfiguration: zero attempts, an
    /// event budget below the DES warm-up horizon, or retrying
    /// permanently-classified failures.
    RetryMisconfigured,
    /// A chaos (fault-injection) policy is active in a release build or
    /// a robust run; chaos is a debug/test instrument.
    ChaosInRelease,
    /// A parallel-execution misconfiguration: zero worker threads, a
    /// worker count wildly above the machine's available parallelism, or
    /// a cache shard count of zero / not a power of two. The engine
    /// clamps or rounds all of these, so the run survives — configured
    /// numbers just aren't the effective ones.
    ExecMisconfigured,
    /// A model program under the `hi-check` model checker finished an
    /// execution with more lock acquisitions than releases: a leaked
    /// guard deadlocks every later acquirer, so checker verdicts built
    /// past that point are meaningless.
    ModelLockLeak,
    /// A fleet user profile is structurally broken: an empty or
    /// duplicated profile id, a zero/negative traffic rate, a PDRmin
    /// outside `[0, 1]`, a non-positive body-geometry scale, or zero
    /// replications. Running such a profile would answer a question
    /// nobody asked (or no question at all), so the daemon rejects the
    /// submission.
    ProfileInvalid,
    /// The serving daemon itself is misconfigured: a job queue with
    /// capacity zero (every submission would bounce) or a per-job DES
    /// event budget below the warm-up floor (every job would trip its
    /// deadline before simulating a single packet).
    ServeMisconfigured,
    /// The daemon's durable-cache persistence is misconfigured: a
    /// compaction threshold of zero (every settle rewrites every
    /// segment — quadratic I/O) or absurdly large (segments never
    /// compact and grow without bound), or the segment directory
    /// collides with the job-record directory (compaction's atomic
    /// rewrites and record scans then race over the same namespace).
    CachePersistMisconfigured,
    /// A reconnecting client's retry policy is broken: zero maximum
    /// attempts reads as "retry forever" against a daemon that may be
    /// gone, and a non-positive backoff base collapses the exponential
    /// schedule into a busy-loop hammering the listener.
    ClientRetryMisconfigured,
    /// A Pareto-archive epsilon-box configuration is degenerate: a
    /// zero, negative, or non-finite epsilon puts every evaluation into
    /// one box (or overflows box indices), and an epsilon wider than its
    /// objective's whole range collapses the archive to a single point.
    ArchiveMisconfigured,
    /// A `FRONT` query arrived before any job completed: the Pareto
    /// archive only fills as jobs run, so the answer is an empty front —
    /// legal, but almost certainly not what the client meant to ask.
    FrontBeforeJobs,
    /// A Γ-robustness specification is broken: a budget of zero (the
    /// robust counterpart degenerates to the nominal model while *looking*
    /// robust), a budget exceeding the number of protected links (the
    /// adversary can already push every link at once — extra budget is a
    /// configuration error), or a NaN / negative / zero-width deviation
    /// bound (the dualization would price garbage into the objective).
    RobustnessMisconfigured,
    /// A robust engine (`robust-milp` / `ilp-heuristic`) was requested
    /// with an empty fault suite: no scenarios means no deviation bounds,
    /// so the run silently degenerates to the nominal engine — legal, but
    /// the "robust" in the invocation buys nothing.
    RobustDegenerate,
}

impl RuleId {
    /// The stable short code (`HLxxx`) used in reports.
    pub fn code(self) -> &'static str {
        match self {
            RuleId::NonFiniteBound => "HL001",
            RuleId::CrossedBounds => "HL002",
            RuleId::NonFiniteCoefficient => "HL003",
            RuleId::DanglingVariable => "HL004",
            RuleId::EmptyRow => "HL005",
            RuleId::UnusedVariable => "HL006",
            RuleId::DuplicateRow => "HL007",
            RuleId::DominatedRow => "HL008",
            RuleId::BoundInfeasible => "HL009",
            RuleId::RedundantRow => "HL010",
            RuleId::Conditioning => "HL011",
            RuleId::RedundantCut => "HL012",
            RuleId::NonFiniteTime => "HL020",
            RuleId::NonMonotoneSchedule => "HL021",
            RuleId::EmptyDimension => "HL030",
            RuleId::DegenerateDimension => "HL031",
            RuleId::SpaceExplosion => "HL032",
            RuleId::InvertedFaultWindow => "HL033",
            RuleId::OverlappingFaultWindows => "HL034",
            RuleId::FaultPastHorizon => "HL035",
            RuleId::HubDisabled => "HL036",
            RuleId::DuplicateMetric => "HL037",
            RuleId::RetryMisconfigured => "HL038",
            RuleId::ChaosInRelease => "HL039",
            RuleId::ExecMisconfigured => "HL040",
            RuleId::ModelLockLeak => "HL041",
            RuleId::ProfileInvalid => "HL042",
            RuleId::ServeMisconfigured => "HL043",
            RuleId::CachePersistMisconfigured => "HL044",
            RuleId::ClientRetryMisconfigured => "HL045",
            RuleId::ArchiveMisconfigured => "HL046",
            RuleId::FrontBeforeJobs => "HL047",
            RuleId::RobustnessMisconfigured => "HL048",
            RuleId::RobustDegenerate => "HL049",
        }
    }

    /// The severity findings of this rule carry.
    pub fn severity(self) -> Severity {
        match self {
            RuleId::NonFiniteBound
            | RuleId::CrossedBounds
            | RuleId::NonFiniteCoefficient
            | RuleId::DanglingVariable
            | RuleId::NonFiniteTime
            | RuleId::NonMonotoneSchedule
            | RuleId::EmptyDimension
            | RuleId::InvertedFaultWindow
            | RuleId::RetryMisconfigured
            | RuleId::ModelLockLeak
            | RuleId::ProfileInvalid
            | RuleId::ServeMisconfigured
            | RuleId::CachePersistMisconfigured
            | RuleId::ClientRetryMisconfigured
            | RuleId::ArchiveMisconfigured
            | RuleId::RobustnessMisconfigured => Severity::Error,
            RuleId::EmptyRow
            | RuleId::UnusedVariable
            | RuleId::DuplicateRow
            | RuleId::DominatedRow
            | RuleId::BoundInfeasible
            | RuleId::Conditioning
            | RuleId::RedundantCut
            | RuleId::OverlappingFaultWindows
            | RuleId::FaultPastHorizon
            | RuleId::HubDisabled
            | RuleId::DuplicateMetric
            | RuleId::ChaosInRelease
            | RuleId::ExecMisconfigured
            | RuleId::FrontBeforeJobs
            | RuleId::RobustDegenerate => Severity::Warning,
            RuleId::RedundantRow | RuleId::DegenerateDimension | RuleId::SpaceExplosion => {
                Severity::Info
            }
        }
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// What a finding points at.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Span {
    /// A decision variable, by model index and name.
    Variable {
        /// Index into the model's variable list.
        index: usize,
        /// The variable's name.
        name: String,
    },
    /// A constraint row, by model index and name.
    Row {
        /// Index into the model's row list.
        index: usize,
        /// The row's name.
        name: String,
    },
    /// An event in a schedule, by position.
    Event {
        /// Index into the analyzed schedule.
        index: usize,
    },
    /// A configuration-space dimension, by name.
    Dimension {
        /// The dimension's name.
        name: String,
    },
    /// A metric in a metrics registry, by name.
    Metric {
        /// The metric's name.
        name: String,
    },
    /// A lock in a checker model program, by name.
    Lock {
        /// The lock's name as the checker reports it.
        name: String,
    },
    /// A fleet user profile, by id.
    Profile {
        /// The profile's id (possibly empty — that itself is a finding).
        id: String,
    },
    /// The model (or schedule/space) as a whole.
    Model,
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Span::Variable { index, name } => write!(f, "var `{name}` (#{index})"),
            Span::Row { index, name } => write!(f, "row `{name}` (#{index})"),
            Span::Event { index } => write!(f, "event #{index}"),
            Span::Dimension { name } => write!(f, "dimension `{name}`"),
            Span::Metric { name } => write!(f, "metric `{name}`"),
            Span::Lock { name } => write!(f, "lock `{name}`"),
            Span::Profile { id } => write!(f, "profile `{id}`"),
            Span::Model => f.write_str("model"),
        }
    }
}

/// One diagnostic produced by the analyzer.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// Which rule fired.
    pub rule: RuleId,
    /// The rule's severity (always `rule.severity()`).
    pub severity: Severity,
    /// What the finding points at.
    pub span: Span,
    /// Human-readable explanation.
    pub message: String,
}

impl Finding {
    /// Builds a finding for `rule` (severity is taken from the rule).
    pub fn new(rule: RuleId, span: Span, message: impl Into<String>) -> Self {
        Self {
            rule,
            severity: rule.severity(),
            span,
            message: message.into(),
        }
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}: {}",
            self.severity, self.rule, self.span, self.message
        )
    }
}

/// An ordered collection of [`Finding`]s from one analysis pass.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Report {
    findings: Vec<Finding>,
}

impl Report {
    /// An empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a finding.
    pub fn push(&mut self, finding: Finding) {
        self.findings.push(finding);
    }

    /// Appends every finding of `other`.
    pub fn merge(&mut self, other: Report) {
        self.findings.extend(other.findings);
    }

    /// All findings, in the order they were produced.
    pub fn findings(&self) -> &[Finding] {
        &self.findings
    }

    /// Consumes the report, yielding its findings.
    pub fn into_findings(self) -> Vec<Finding> {
        self.findings
    }

    /// Findings of exactly `severity`.
    pub fn with_severity(&self, severity: Severity) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(move |f| f.severity == severity)
    }

    /// True if any finding is an [`Severity::Error`].
    pub fn has_errors(&self) -> bool {
        self.error_count() > 0
    }

    /// Number of error findings.
    pub fn error_count(&self) -> usize {
        self.with_severity(Severity::Error).count()
    }

    /// Number of warning findings.
    pub fn warning_count(&self) -> usize {
        self.with_severity(Severity::Warning).count()
    }

    /// Number of info findings.
    pub fn info_count(&self) -> usize {
        self.with_severity(Severity::Info).count()
    }

    /// True if nothing fired at all.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// True if a finding with `rule` is present.
    pub fn has_rule(&self, rule: RuleId) -> bool {
        self.findings.iter().any(|f| f.rule == rule)
    }

    /// Puts the report in canonical form: findings sorted by rule code,
    /// then span, then message, with exact duplicates removed. Analyses
    /// that visit the same object from several directions (e.g. a cut
    /// ladder re-linting the model after every cut) can fire the same
    /// finding repeatedly; consumers that attach findings to a result
    /// call this first so the list is deterministic and minimal.
    pub fn normalize(&mut self) {
        self.findings.sort_by(|a, b| {
            a.rule
                .cmp(&b.rule)
                .then_with(|| a.span.cmp(&b.span))
                .then_with(|| a.message.cmp(&b.message))
        });
        self.findings.dedup();
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for finding in &self.findings {
            writeln!(f, "{finding}")?;
        }
        write!(
            f,
            "{} error(s), {} warning(s), {} info(s)",
            self.error_count(),
            self.warning_count(),
            self.info_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_follows_rule() {
        let f = Finding::new(RuleId::CrossedBounds, Span::Model, "x");
        assert_eq!(f.severity, Severity::Error);
        let f = Finding::new(RuleId::DuplicateRow, Span::Model, "x");
        assert_eq!(f.severity, Severity::Warning);
        let f = Finding::new(RuleId::RedundantRow, Span::Model, "x");
        assert_eq!(f.severity, Severity::Info);
    }

    #[test]
    fn codes_are_unique() {
        let all = [
            RuleId::NonFiniteBound,
            RuleId::CrossedBounds,
            RuleId::NonFiniteCoefficient,
            RuleId::DanglingVariable,
            RuleId::EmptyRow,
            RuleId::UnusedVariable,
            RuleId::DuplicateRow,
            RuleId::DominatedRow,
            RuleId::BoundInfeasible,
            RuleId::RedundantRow,
            RuleId::Conditioning,
            RuleId::RedundantCut,
            RuleId::NonFiniteTime,
            RuleId::NonMonotoneSchedule,
            RuleId::EmptyDimension,
            RuleId::DegenerateDimension,
            RuleId::SpaceExplosion,
            RuleId::InvertedFaultWindow,
            RuleId::OverlappingFaultWindows,
            RuleId::FaultPastHorizon,
            RuleId::HubDisabled,
            RuleId::DuplicateMetric,
            RuleId::RetryMisconfigured,
            RuleId::ChaosInRelease,
            RuleId::ExecMisconfigured,
            RuleId::ModelLockLeak,
            RuleId::ProfileInvalid,
            RuleId::ServeMisconfigured,
            RuleId::CachePersistMisconfigured,
            RuleId::ClientRetryMisconfigured,
            RuleId::ArchiveMisconfigured,
            RuleId::FrontBeforeJobs,
            RuleId::RobustnessMisconfigured,
            RuleId::RobustDegenerate,
        ];
        let mut codes: Vec<_> = all.iter().map(|r| r.code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), all.len());
    }

    #[test]
    fn report_counts_and_display() {
        let mut r = Report::new();
        r.push(Finding::new(
            RuleId::CrossedBounds,
            Span::Variable {
                index: 0,
                name: "x".into(),
            },
            "lb 2 > ub 1",
        ));
        r.push(Finding::new(
            RuleId::DuplicateRow,
            Span::Row {
                index: 3,
                name: "c3".into(),
            },
            "same as row `c1`",
        ));
        assert!(r.has_errors());
        assert_eq!(r.error_count(), 1);
        assert_eq!(r.warning_count(), 1);
        assert!(r.has_rule(RuleId::DuplicateRow));
        assert!(!r.has_rule(RuleId::EmptyRow));
        let text = r.to_string();
        assert!(text.contains("error[HL002] var `x` (#0)"), "{text}");
        assert!(
            text.contains("1 error(s), 1 warning(s), 0 info(s)"),
            "{text}"
        );
    }

    #[test]
    fn normalize_sorts_by_code_then_span_and_dedupes() {
        let mut r = Report::new();
        let dup = Finding::new(
            RuleId::DuplicateRow,
            Span::Row {
                index: 3,
                name: "c3".into(),
            },
            "same as row `c1`",
        );
        r.push(dup.clone());
        r.push(Finding::new(
            RuleId::CrossedBounds,
            Span::Variable {
                index: 1,
                name: "y".into(),
            },
            "lb 2 > ub 1",
        ));
        r.push(dup.clone());
        r.push(Finding::new(
            RuleId::CrossedBounds,
            Span::Variable {
                index: 0,
                name: "x".into(),
            },
            "lb 3 > ub 2",
        ));
        r.normalize();
        let rules: Vec<_> = r.findings().iter().map(|f| f.rule.code()).collect();
        assert_eq!(rules, vec!["HL002", "HL002", "HL007"]);
        assert_eq!(r.findings().len(), 3, "duplicate finding must collapse");
        assert_eq!(
            r.findings()[0].span,
            Span::Variable {
                index: 0,
                name: "x".into()
            },
            "equal-rule findings sort by span"
        );
    }

    #[test]
    fn merge_concatenates() {
        let mut a = Report::new();
        a.push(Finding::new(RuleId::EmptyRow, Span::Model, "a"));
        let mut b = Report::new();
        b.push(Finding::new(RuleId::RedundantRow, Span::Model, "b"));
        a.merge(b);
        assert_eq!(a.findings().len(), 2);
    }
}
