//! The checker's self-test: every seeded mutant protocol must be caught,
//! with a schedule that replays to the same violation, and every
//! unmutated protocol must check clean.
//!
//! This is what makes a clean report on the real protocols evidence: a
//! checker that misses a seeded `Relaxed` publish, a missing notify or a
//! lock-order inversion would fail here first.

use hi_check::models::{self, Mutation};
use hi_check::{explore, replay, Config, ViolationKind};

/// Explores the mutant, asserts the violation kind, then replays the
/// reported schedule and asserts the identical violation reproduces.
fn assert_caught<F, M>(make: M, mutation: Mutation, expected: &[ViolationKind])
where
    M: Fn(Mutation) -> F,
    F: Fn() + Send + Sync + 'static,
{
    let config = Config::default();
    let report = explore(&config, make(mutation));
    let violation = report
        .expect_violation(&format!("mutant {mutation:?}"))
        .clone();
    assert!(
        expected.contains(&violation.kind),
        "mutant {mutation:?}: expected one of {expected:?}, got: {violation}"
    );
    assert!(
        !violation.schedule.is_empty(),
        "mutant {mutation:?}: violation carries no replay schedule"
    );
    let replayed = replay(&config, &violation.schedule, make(mutation));
    let reproduced = replayed.expect_violation(&format!("replay of {mutation:?}"));
    assert_eq!(
        reproduced.kind, violation.kind,
        "mutant {mutation:?}: replay produced a different violation kind"
    );
    assert_eq!(
        reproduced.schedule, violation.schedule,
        "mutant {mutation:?}: replay diverged from the recorded schedule"
    );
}

#[test]
fn steal_lock_order_swap_is_caught() {
    assert_caught(
        models::steal,
        Mutation::LockOrderSwap,
        &[ViolationKind::LockOrderInversion],
    );
}

#[test]
fn parking_skip_notify_is_caught() {
    assert_caught(
        models::parking,
        Mutation::SkipNotify,
        &[ViolationKind::LostWakeup],
    );
}

#[test]
fn parking_bare_wait_is_caught() {
    assert_caught(
        models::parking,
        Mutation::BareWait,
        &[ViolationKind::LostWakeup],
    );
}

#[test]
fn cache_notify_one_is_caught() {
    assert_caught(
        models::cache,
        Mutation::NotifyOne,
        &[ViolationKind::LostWakeup],
    );
}

#[test]
fn cache_leaked_guard_is_caught() {
    // The leaker usually trips the exit-time check; under some schedules
    // the blocked getters produce a deadlock verdict first. Both verdicts
    // point at the same seeded bug.
    assert_caught(
        models::cache,
        Mutation::LeakLock,
        &[ViolationKind::LockLeak, ViolationKind::Deadlock],
    );
}

#[test]
fn cancel_relaxed_publish_is_caught() {
    assert_caught(
        models::cancel,
        Mutation::RelaxedPublish,
        &[ViolationKind::DataRace],
    );
}

#[test]
fn cancel_relaxed_consume_is_caught() {
    assert_caught(
        models::cancel,
        Mutation::RelaxedConsume,
        &[ViolationKind::DataRace],
    );
}

#[test]
fn cancel_missed_finish_is_caught() {
    assert_caught(
        models::cancel,
        Mutation::MissedFinish,
        &[ViolationKind::LostWakeup, ViolationKind::Deadlock],
    );
}

#[test]
fn clean_protocols_pass() {
    for entry in models::catalog() {
        let report = explore(&entry.config, entry.model);
        assert!(
            report.is_clean(),
            "{}: unmutated protocol reported {:?} after {} executions",
            entry.name,
            report.violation,
            report.executions
        );
        assert!(
            report.executions > 1,
            "{}: exploration ran only one interleaving",
            entry.name
        );
        // Clean protocols balance their lock accounting — the invariant
        // hi-lint's HL041 consumes.
        for lock in &report.locks {
            assert_eq!(
                lock.acquires, lock.releases,
                "{}: lock {} acquired {} times but released {}",
                entry.name, lock.name, lock.acquires, lock.releases
            );
        }
    }
}

#[test]
fn predicate_loops_survive_spurious_wakeups() {
    // `wait_while` loops must stay correct when the scheduler injects the
    // spurious wakeups `std` permits; the parking protocol's predicate
    // loop is the regression surface for hi-exec's wait hardening.
    let config = Config {
        spurious_wakeups: true,
        max_executions: 1_500,
        ..Config::default()
    };
    let report = explore(&config, models::parking(Mutation::None));
    assert!(
        report.is_clean(),
        "parking with spurious wakeups: {:?}",
        report.violation
    );
}
