#!/bin/sh
# Full offline CI gate: formatting, lints, release build, tests.
# The test suite runs twice — pinned to one worker and at the default
# thread count — because the execution engine's contract is that results
# are bit-identical for any parallelism; a test that passes in one mode
# and fails in the other IS the divergence we're gating on.
# Benches run in quick mode so the whole script stays under a few minutes.
set -eux

cargo fmt --all --check
# Clippy across the whole workspace (all targets, warnings are errors),
# plus the shadow (model-checker) configuration of hi-exec, which
# compiles different code behind the sync facade. Skipped with a notice
# if the toolchain lacks the clippy component (e.g. a minimal offline
# install).
if cargo clippy --version > /dev/null 2>&1; then
    cargo clippy --workspace --all-targets -- -D warnings
    cargo clippy -p hi-exec --features shadow --all-targets -- -D warnings
else
    echo "NOTICE: cargo clippy unavailable in this toolchain; skipping lint gate" >&2
fi
cargo build --release
HI_EXEC_THREADS=1 cargo test -q
cargo test -q

# Concurrency-verification gates. The hi-check mutant self-test (also in
# the workspace run above, kept explicit here as the named gate): every
# seeded protocol bug — weakened ordering, missing notify, lock-order
# inversion, leaked guard — must be caught with a schedule that replays
# to the identical violation, and every unmutated protocol must sweep
# clean. Then the real hi-exec pool/cache/cancel code is model-checked
# through the shadow facade.
cargo test -q -p hi-check
cargo test -q -p hi-exec --features shadow

# Cross-thread CLI divergence gate: the same exploration at 1 and 8
# workers must print byte-identical output.
target/release/hi-opt explore --pdr-min 0.9 --tsim 5 --runs 1 --threads 1 > /tmp/hi_ci_t1.txt
target/release/hi-opt explore --pdr-min 0.9 --tsim 5 --runs 1 --threads 8 > /tmp/hi_ci_t8.txt
diff /tmp/hi_ci_t1.txt /tmp/hi_ci_t8.txt

# Robust (fault-injected) exploration must be just as thread-invariant:
# same suite, same floor, 1 vs 8 workers, byte-identical stdout.
target/release/hi-opt explore --pdr-min 0.9 --tsim 5 --runs 1 --threads 1 \
    --faults scenarios/demo.suite --robust worst > /tmp/hi_ci_rob_t1.txt
target/release/hi-opt explore --pdr-min 0.9 --tsim 5 --runs 1 --threads 8 \
    --faults scenarios/demo.suite --robust worst > /tmp/hi_ci_rob_t8.txt
diff /tmp/hi_ci_rob_t1.txt /tmp/hi_ci_rob_t8.txt

# ...and must pick a more conservative optimum than the nominal run on
# the demo suite (the whole point of Γ-robust feasibility).
! diff -q /tmp/hi_ci_t1.txt /tmp/hi_ci_rob_t1.txt > /dev/null

# Γ-robust engine gates. `--engine robust-milp` prices the fault suite
# into the formulation and simulates only each level's witness, so on
# the demo suite it must stay thread-invariant, print the
# price-of-robustness line, differ from the verification-based
# `--robust worst` run, and meet the same worst-case floor with at
# least 10x fewer simulations.
target/release/hi-opt explore --pdr-min 0.7 --tsim 5 --runs 1 --threads 1 \
    --faults scenarios/demo.suite --robust worst > /tmp/hi_ci_rw.txt 2> /dev/null
target/release/hi-opt explore --pdr-min 0.7 --tsim 5 --runs 1 --threads 1 \
    --faults scenarios/demo.suite --engine robust-milp --gamma 2 \
    > /tmp/hi_ci_rm_t1.txt 2> /dev/null
target/release/hi-opt explore --pdr-min 0.7 --tsim 5 --runs 1 --threads 8 \
    --faults scenarios/demo.suite --engine robust-milp --gamma 2 \
    > /tmp/hi_ci_rm_t8.txt 2> /dev/null
diff /tmp/hi_ci_rm_t1.txt /tmp/hi_ci_rm_t8.txt
grep -q '^price of robustness : ' /tmp/hi_ci_rm_t1.txt
! diff -q /tmp/hi_ci_rw.txt /tmp/hi_ci_rm_t1.txt > /dev/null
WORST_SIMS=$(sed -n 's/^effort *: \([0-9]*\) simulations.*/\1/p' /tmp/hi_ci_rw.txt)
MILP_SIMS=$(sed -n 's/^effort *: \([0-9]*\) simulations.*/\1/p' /tmp/hi_ci_rm_t1.txt)
[ $((MILP_SIMS * 10)) -le "$WORST_SIMS" ]

# The ILP restriction heuristic must spend strictly fewer simulations
# than `--robust worst` and land within 5% (measured worst-case power of
# the accepted design) of the exact robust MILP.
target/release/hi-opt explore --pdr-min 0.7 --tsim 5 --runs 1 --threads 8 \
    --faults scenarios/demo.suite --engine ilp-heuristic --gamma 2 \
    > /tmp/hi_ci_ih.txt 2> /dev/null
HEUR_SIMS=$(sed -n 's/^effort *: \([0-9]*\) simulations.*/\1/p' /tmp/hi_ci_ih.txt)
[ "$HEUR_SIMS" -lt "$WORST_SIMS" ]
MILP_MW=$(sed -n 's/^worst power *: \([0-9.]*\) mW$/\1/p' /tmp/hi_ci_rm_t1.txt)
HEUR_MW=$(sed -n 's/^worst power *: \([0-9.]*\) mW$/\1/p' /tmp/hi_ci_ih.txt)
awk -v h="$HEUR_MW" -v m="$MILP_MW" 'BEGIN { exit !(h <= m * 1.05) }'

# `--gamma 0` degenerates to the nominal algorithm1 engine byte for
# byte (a stderr note announces the degeneration; stdout is identical
# to the engine-less run on the same suite).
target/release/hi-opt explore --pdr-min 0.7 --tsim 5 --runs 1 --threads 8 \
    --faults scenarios/demo.suite --engine robust-milp --gamma 0 \
    > /tmp/hi_ci_g0.txt 2> /tmp/hi_ci_g0.err
target/release/hi-opt explore --pdr-min 0.7 --tsim 5 --runs 1 --threads 8 \
    --faults scenarios/demo.suite > /tmp/hi_ci_nomsuite.txt 2> /dev/null
diff /tmp/hi_ci_g0.txt /tmp/hi_ci_nomsuite.txt
grep -q degenerate /tmp/hi_ci_g0.err

# HL048 bounce: a gamma above the protected-link count is refused with
# exit 2 before any simulation runs.
RC=0
target/release/hi-opt explore --pdr-min 0.7 --tsim 5 --runs 1 --threads 8 \
    --faults scenarios/demo.suite --engine robust-milp --gamma 100 \
    > /dev/null 2> /tmp/hi_ci_hl048.err || RC=$?
[ "$RC" -eq 2 ]
grep -q HL048 /tmp/hi_ci_hl048.err

# A robust run interrupted by --budget and resumed must replay the cut
# ladder to byte-identical stdout — and resuming that robust checkpoint
# with a different engine must be refused with exit 2, never silently
# restarted under the wrong formulation.
rm -f /tmp/hi_ci_rob_cp.ck
target/release/hi-opt explore --pdr-min 0.7 --tsim 5 --runs 1 --threads 8 \
    --faults scenarios/demo.suite --engine robust-milp --gamma 2 \
    --budget 30 --checkpoint /tmp/hi_ci_rob_cp.ck \
    > /tmp/hi_ci_rob_partial.txt 2> /dev/null
grep -q BudgetExhausted /tmp/hi_ci_rob_partial.txt
target/release/hi-opt explore --pdr-min 0.7 --tsim 5 --runs 1 --threads 8 \
    --faults scenarios/demo.suite --engine robust-milp --gamma 2 \
    --checkpoint /tmp/hi_ci_rob_cp.ck --resume \
    > /tmp/hi_ci_rob_resumed.txt 2> /dev/null
diff /tmp/hi_ci_rm_t8.txt /tmp/hi_ci_rob_resumed.txt
RC=0
target/release/hi-opt explore --pdr-min 0.7 --tsim 5 --runs 1 --threads 8 \
    --faults scenarios/demo.suite \
    --checkpoint /tmp/hi_ci_rob_cp.ck --resume \
    > /dev/null 2> /tmp/hi_ci_engine_mismatch.err || RC=$?
[ "$RC" -eq 2 ]
grep -q 'recorded by engine' /tmp/hi_ci_engine_mismatch.err

# Graceful-degradation gate: a run interrupted by --budget and resumed
# from its --checkpoint must print byte-identical stdout to an
# uninterrupted run of the same exploration.
rm -f /tmp/hi_ci_cp.txt
target/release/hi-opt explore --pdr-min 0.9 --tsim 5 --runs 1 --threads 8 \
    --budget 20 --checkpoint /tmp/hi_ci_cp.txt > /tmp/hi_ci_partial.txt
grep -q BudgetExhausted /tmp/hi_ci_partial.txt
target/release/hi-opt explore --pdr-min 0.9 --tsim 5 --runs 1 --threads 8 \
    --checkpoint /tmp/hi_ci_cp.txt --resume > /tmp/hi_ci_resumed.txt
diff /tmp/hi_ci_t8.txt /tmp/hi_ci_resumed.txt

# Chaos-soak gate: deterministic engine-fault injection (worker panics,
# spurious transients, cache drops keyed by (point, attempt)) must be
# thread-count invariant — byte-identical stdout at 1 and 8 workers —
# must actually observe injected failures, and must still elect the
# nominal optimum (retries ride out the transients).
CHAOS="seed=1,panic=13,transient=3,drop=8"
target/release/hi-opt explore --pdr-min 0.9 --tsim 5 --runs 1 --threads 1 \
    --chaos "$CHAOS" > /tmp/hi_ci_chaos_t1.txt 2> /dev/null
target/release/hi-opt explore --pdr-min 0.9 --tsim 5 --runs 1 --threads 8 \
    --chaos "$CHAOS" > /tmp/hi_ci_chaos_t8.txt 2> /dev/null
diff /tmp/hi_ci_chaos_t1.txt /tmp/hi_ci_chaos_t8.txt
grep -q "failed evaluation" /tmp/hi_ci_chaos_t1.txt
# The design block (everything above the eval-errors/effort lines) must
# match the chaos-free run exactly.
head -5 /tmp/hi_ci_t1.txt > /tmp/hi_ci_design_nominal.txt
head -5 /tmp/hi_ci_chaos_t1.txt > /tmp/hi_ci_design_chaos.txt
diff /tmp/hi_ci_design_nominal.txt /tmp/hi_ci_design_chaos.txt

# SIGKILL crash gate: a paper-protocol run auto-checkpointing every
# iteration is killed -9 as soon as the first auto-checkpoint lands,
# then resumed; the resumed run's stdout must be byte-identical to a
# straight-through run. (Checkpoint traffic is stderr-only, so the
# reference run needs no checkpoint flags.)
rm -f /tmp/hi_ci_kill.ck /tmp/hi_ci_kill.ck.prev /tmp/hi_ci_kill.ck.tmp
target/release/hi-opt explore --pdr-min 0.9 --tsim 600 --runs 3 --threads 8 \
    > /tmp/hi_ci_straight.txt
target/release/hi-opt explore --pdr-min 0.9 --tsim 600 --runs 3 --threads 8 \
    --checkpoint /tmp/hi_ci_kill.ck --checkpoint-every 1 \
    > /tmp/hi_ci_killed.txt 2> /dev/null &
VICTIM=$!
while [ ! -f /tmp/hi_ci_kill.ck ]; do sleep 0.05; done
kill -9 "$VICTIM"
RC=0; wait "$VICTIM" || RC=$?
[ "$RC" -eq 137 ]
target/release/hi-opt explore --pdr-min 0.9 --tsim 600 --runs 3 --threads 8 \
    --checkpoint /tmp/hi_ci_kill.ck --resume \
    > /tmp/hi_ci_recovered.txt 2> /tmp/hi_ci_recovered.err
diff /tmp/hi_ci_straight.txt /tmp/hi_ci_recovered.txt

# A torn primary checkpoint with an intact .prev rotation must recover
# (with a diagnostic on stderr), and a checkpoint corrupted beyond both
# copies must be refused with exit 4 — never silently resumed.
cp /tmp/hi_ci_kill.ck /tmp/hi_ci_torn.ck.prev
head -c 40 /tmp/hi_ci_kill.ck > /tmp/hi_ci_torn.ck
target/release/hi-opt explore --pdr-min 0.9 --tsim 5 --runs 1 --threads 8 \
    --checkpoint /tmp/hi_ci_torn.ck --resume \
    > /dev/null 2> /tmp/hi_ci_torn.err
grep -q "recovered from" /tmp/hi_ci_torn.err
printf 'hi-opt explore checkpoint v2\ngarbage\n' > /tmp/hi_ci_bad.ck
printf 'garbage\n' > /tmp/hi_ci_bad.ck.prev
RC=0
target/release/hi-opt explore --pdr-min 0.9 --tsim 5 --runs 1 --threads 8 \
    --checkpoint /tmp/hi_ci_bad.ck --resume \
    > /dev/null 2> /tmp/hi_ci_bad.err || RC=$?
[ "$RC" -eq 4 ]
grep -q "crc32 trailer" /tmp/hi_ci_bad.err

# Observability gates (hi-trace). Tracing must never perturb the search:
# the same exploration with --trace and --metrics prints byte-identical
# stdout (all trace output goes to the file / stderr) at 1 and 8 workers.
target/release/hi-opt explore --pdr-min 0.9 --tsim 5 --runs 1 --threads 1 \
    --trace /tmp/hi_ci_trace_t1.jsonl --metrics \
    > /tmp/hi_ci_traced_t1.txt 2> /dev/null
diff /tmp/hi_ci_t1.txt /tmp/hi_ci_traced_t1.txt
target/release/hi-opt explore --pdr-min 0.9 --tsim 5 --runs 1 --threads 8 \
    --trace /tmp/hi_ci_trace_t8.jsonl --metrics \
    > /tmp/hi_ci_traced_t8.txt 2> /dev/null
diff /tmp/hi_ci_t8.txt /tmp/hi_ci_traced_t8.txt

# The JSONL stream must validate line by line, and the deterministic
# (epoch, lane) layout means the 1- and 8-worker traces differ only in
# timestamps and the self-describing "threads" span argument: after
# normalizing those two, the streams are byte-identical.
target/release/trace-check /tmp/hi_ci_trace_t1.jsonl --format jsonl
target/release/trace-check /tmp/hi_ci_trace_t8.jsonl --format jsonl
sed 's/"ts_ns":[0-9]*//; s/"threads":[0-9]*/"threads":N/' \
    /tmp/hi_ci_trace_t1.jsonl > /tmp/hi_ci_layout_t1.txt
sed 's/"ts_ns":[0-9]*//; s/"threads":[0-9]*/"threads":N/' \
    /tmp/hi_ci_trace_t8.jsonl > /tmp/hi_ci_layout_t8.txt
diff /tmp/hi_ci_layout_t1.txt /tmp/hi_ci_layout_t8.txt

# Chrome export on the fault suite must be Perfetto-loadable and contain
# spans from every instrumented layer (milp, des/net, exec, algorithm1).
target/release/hi-opt explore --pdr-min 0.9 --tsim 5 --runs 1 --threads 8 \
    --faults scenarios/demo.suite --robust worst \
    --trace /tmp/hi_ci_trace.chrome --trace-format chrome \
    > /tmp/hi_ci_traced_rob.txt 2> /dev/null
diff /tmp/hi_ci_rob_t8.txt /tmp/hi_ci_traced_rob.txt
target/release/trace-check /tmp/hi_ci_trace.chrome --format chrome
for layer in milp net exec algo1; do
    grep -q "\"name\":\"$layer\." /tmp/hi_ci_trace.chrome
done

# Overhead budget: --trace must cost < 10% wall time on the demo suite.
# Interleaved best-of-5 pairs after a warmup, so scheduler noise and
# cache warmth hit both modes alike instead of biasing one.
python3 - <<'EOF'
import subprocess, time
CMD = ["target/release/hi-opt", "explore", "--pdr-min", "0.9",
       "--tsim", "10", "--runs", "1", "--threads", "8",
       "--faults", "scenarios/demo.suite", "--robust", "worst"]
TRACE = ["--trace", "/tmp/hi_ci_overhead.jsonl", "--metrics"]
def run(extra):
    t0 = time.perf_counter()
    subprocess.run(CMD + extra, check=True,
                   stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
    return time.perf_counter() - t0
run([])  # warmup
base, traced = [], []
for _ in range(5):
    base.append(run([]))
    traced.append(run(TRACE))
base, traced = min(base), min(traced)
overhead = (traced - base) / base
print(f"trace overhead: {overhead:+.1%} (base {base:.3f}s, traced {traced:.3f}s)")
assert overhead < 0.10, "tracing overhead exceeds the 10% budget"
EOF

# Fleet-service gates (hi-serve). A daemon is started on a loopback
# port; the wire protocol is driven end-to-end by hi-serve-client.
# First: cross-user dedup. Two identical profiles and one with different
# physics — the duplicate's result block must report zero simulations
# (it runs entirely from the first user's cache) and the daemon's fleet
# counters must agree.
rm -rf /tmp/hi_ci_serve
printf 'profile alice\ntsim 5\nruns 1\npdrmin 0.9\n' > /tmp/hi_ci_serve_a.profile
printf 'profile alice-twin\ntsim 5\nruns 1\npdrmin 0.9\n' > /tmp/hi_ci_serve_b.profile
printf 'profile dave\ntsim 5\nruns 1\npdrmin 0.9\ngeometry 1.15\n' > /tmp/hi_ci_serve_c.profile
target/release/hi-opt serve --state /tmp/hi_ci_serve --listen 127.0.0.1:0 \
    --threads 8 2> /tmp/hi_ci_serve.err &
DAEMON=$!
while [ ! -f /tmp/hi_ci_serve/addr ]; do sleep 0.05; done
target/release/hi-serve-client /tmp/hi_ci_serve/addr run /tmp/hi_ci_serve_a.profile \
    > /tmp/hi_ci_serve_r1.txt 2> /dev/null
target/release/hi-serve-client /tmp/hi_ci_serve/addr run /tmp/hi_ci_serve_b.profile \
    > /tmp/hi_ci_serve_r2.txt 2> /dev/null
target/release/hi-serve-client /tmp/hi_ci_serve/addr run /tmp/hi_ci_serve_c.profile \
    > /tmp/hi_ci_serve_r3.txt 2> /dev/null
grep -q '^status feasible$' /tmp/hi_ci_serve_r1.txt
grep -q '^simulations 0$' /tmp/hi_ci_serve_r2.txt      # the twin paid nothing
! grep -q '^simulations 0$' /tmp/hi_ci_serve_r3.txt    # different physics paid
target/release/hi-serve-client /tmp/hi_ci_serve/addr stats > /tmp/hi_ci_serve_stats.txt
grep '^serve.fleet.cache_hits ' /tmp/hi_ci_serve_stats.txt | awk '{exit !($2 > 0)}'
grep -q '^serve.jobs.completed 3$' /tmp/hi_ci_serve_stats.txt
# A malformed submission must bounce with ERR (client exit 4), not kill
# the daemon.
printf 'profile broken\npdrmin 2\n' > /tmp/hi_ci_serve_bad.profile
RC=0
target/release/hi-serve-client /tmp/hi_ci_serve/addr submit /tmp/hi_ci_serve_bad.profile \
    2> /tmp/hi_ci_serve_bad.err || RC=$?
[ "$RC" -eq 4 ]
grep -q HL042 /tmp/hi_ci_serve_bad.err
# The three-user fleet populated one shared Pareto archive: the twin's
# FRONT query answers from alice's stream, byte-identically.
target/release/hi-serve-client /tmp/hi_ci_serve/addr front 1 > /tmp/hi_ci_serve_f1.txt
target/release/hi-serve-client /tmp/hi_ci_serve/addr front 2 > /tmp/hi_ci_serve_f2.txt
grep -q '^point ' /tmp/hi_ci_serve_f1.txt
diff /tmp/hi_ci_serve_f1.txt /tmp/hi_ci_serve_f2.txt
target/release/hi-serve-client /tmp/hi_ci_serve/addr shutdown > /dev/null
wait "$DAEMON"

# Second: multi-job crash recovery. A daemon running a two-job fleet is
# SIGKILLed as soon as job 1's first auto-checkpoint lands, restarted on
# the same state dir, and must finish BOTH jobs to results
# byte-identical to a straight-through run of the same fleet in a fresh
# daemon.
rm -rf /tmp/hi_ci_serve_kill /tmp/hi_ci_serve_ref
rm -f /tmp/hi_ci_serve_resumed.txt /tmp/hi_ci_serve_straight.txt
printf 'profile crashdummy\ntsim 600\nruns 3\npdrmin 0.9\nprofile crashmate\ntsim 600\nruns 3\npdrmin 0.9\ngeometry 1.15\n' \
    > /tmp/hi_ci_serve_kill.profile
target/release/hi-opt serve --state /tmp/hi_ci_serve_kill --listen 127.0.0.1:0 \
    --threads 8 2> /dev/null &
VICTIM=$!
while [ ! -f /tmp/hi_ci_serve_kill/addr ]; do sleep 0.05; done
target/release/hi-serve-client /tmp/hi_ci_serve_kill/addr submit /tmp/hi_ci_serve_kill.profile \
    > /dev/null
while [ ! -f /tmp/hi_ci_serve_kill/job-1.ck ]; do sleep 0.05; done
kill -9 "$VICTIM"
RC=0; wait "$VICTIM" || RC=$?
[ "$RC" -eq 137 ]
rm -f /tmp/hi_ci_serve_kill/addr
target/release/hi-opt serve --state /tmp/hi_ci_serve_kill --listen 127.0.0.1:0 \
    --threads 8 2> /tmp/hi_ci_serve_kill.err &
PHOENIX=$!
while [ ! -f /tmp/hi_ci_serve_kill/addr ]; do sleep 0.05; done
for J in 1 2; do
    target/release/hi-serve-client /tmp/hi_ci_serve_kill/addr wait "$J" > /dev/null 2>&1
    target/release/hi-serve-client /tmp/hi_ci_serve_kill/addr result "$J" \
        >> /tmp/hi_ci_serve_resumed.txt
done
grep -q "resuming" /tmp/hi_ci_serve_kill.err
# The archive survived the SIGKILL mid-insert: FRONT streams rows and
# the restart repaired — never quarantined — the front segments.
target/release/hi-serve-client /tmp/hi_ci_serve_kill/addr front 1 > /tmp/hi_ci_front_kill.txt
grep -q '^point ' /tmp/hi_ci_front_kill.txt
[ -z "$(find /tmp/hi_ci_serve_kill/cache -name '*.quarantine' 2>/dev/null)" ]
target/release/hi-serve-client /tmp/hi_ci_serve_kill/addr shutdown > /dev/null
wait "$PHOENIX"
target/release/hi-opt serve --state /tmp/hi_ci_serve_ref --listen 127.0.0.1:0 \
    --threads 8 2> /dev/null &
REF=$!
while [ ! -f /tmp/hi_ci_serve_ref/addr ]; do sleep 0.05; done
target/release/hi-serve-client /tmp/hi_ci_serve_ref/addr run /tmp/hi_ci_serve_kill.profile \
    > /dev/null 2>&1
for J in 1 2; do
    target/release/hi-serve-client /tmp/hi_ci_serve_ref/addr result "$J" \
        >> /tmp/hi_ci_serve_straight.txt
done
target/release/hi-serve-client /tmp/hi_ci_serve_ref/addr shutdown > /dev/null
wait "$REF"
diff /tmp/hi_ci_serve_straight.txt /tmp/hi_ci_serve_resumed.txt

# Third: durable-cache warm restart. The phoenix daemon above drained
# and flushed its evaluation cache to segment files on SHUTDOWN; a
# fresh daemon on the same state dir must re-serve the same fleet with
# ZERO fresh simulations (an explicit --token forces new jobs rather
# than an idempotent replay of the old ones).
rm -f /tmp/hi_ci_serve_kill/addr
target/release/hi-opt serve --state /tmp/hi_ci_serve_kill --listen 127.0.0.1:0 \
    --threads 8 2> /dev/null &
WARM=$!
while [ ! -f /tmp/hi_ci_serve_kill/addr ]; do sleep 0.05; done
target/release/hi-serve-client --token warm-pass /tmp/hi_ci_serve_kill/addr \
    run /tmp/hi_ci_serve_kill.profile > /tmp/hi_ci_serve_warm.txt 2> /dev/null
SIMS=$(grep -c '^simulations 0$' /tmp/hi_ci_serve_warm.txt)
[ "$SIMS" -eq 2 ]    # both warm jobs replayed entirely from segments
# Idempotency: the same SUBMIT with the same token must return the same
# job ids, not enqueue duplicates.
target/release/hi-serve-client --token idem-1 /tmp/hi_ci_serve_kill/addr \
    submit /tmp/hi_ci_serve_kill.profile > /tmp/hi_ci_serve_idem1.txt
target/release/hi-serve-client --token idem-1 /tmp/hi_ci_serve_kill/addr \
    submit /tmp/hi_ci_serve_kill.profile > /tmp/hi_ci_serve_idem2.txt
diff /tmp/hi_ci_serve_idem1.txt /tmp/hi_ci_serve_idem2.txt
grep -q '^job ' /tmp/hi_ci_serve_idem1.txt
target/release/hi-serve-client /tmp/hi_ci_serve_kill/addr shutdown > /dev/null
wait "$WARM"

# Fourth: chaos soak. A daemon with deterministic segment-drop and
# torn-write injection must still converge to the nominal answers — the
# cache may lose entries (repaid with simulations), but never serves a
# wrong one. The torn tails it leaves behind must be repaired on the
# next start, not quarantined.
rm -rf /tmp/hi_ci_serve_chaos
target/release/hi-opt serve --state /tmp/hi_ci_serve_chaos --listen 127.0.0.1:0 \
    --threads 8 --chaos "seed=1,segdrop=2,torn=2" 2> /dev/null &
GREMLIN=$!
while [ ! -f /tmp/hi_ci_serve_chaos/addr ]; do sleep 0.05; done
target/release/hi-serve-client /tmp/hi_ci_serve_chaos/addr run /tmp/hi_ci_serve_kill.profile \
    > /tmp/hi_ci_serve_chaos1.txt 2> /dev/null
target/release/hi-serve-client /tmp/hi_ci_serve_chaos/addr shutdown > /dev/null
wait "$GREMLIN"
rm -f /tmp/hi_ci_serve_chaos/addr
target/release/hi-opt serve --state /tmp/hi_ci_serve_chaos --listen 127.0.0.1:0 \
    --threads 8 --chaos "seed=2,segdrop=2,torn=2" 2> /tmp/hi_ci_serve_chaos.err &
GREMLIN=$!
while [ ! -f /tmp/hi_ci_serve_chaos/addr ]; do sleep 0.05; done
target/release/hi-serve-client --token chaos-2 /tmp/hi_ci_serve_chaos/addr \
    run /tmp/hi_ci_serve_kill.profile > /tmp/hi_ci_serve_chaos2.txt 2> /dev/null
target/release/hi-serve-client /tmp/hi_ci_serve_chaos/addr shutdown > /dev/null
wait "$GREMLIN"
! grep -q quarantine /tmp/hi_ci_serve_chaos.err   # torn tails repair, not quarantine
# Design answers under chaos match the nominal straight-through run.
grep '^status feasible\|^design \|^pdr \|^nlt_days \|^power_mw ' /tmp/hi_ci_serve_straight.txt \
    > /tmp/hi_ci_serve_expect.txt
grep '^status feasible\|^design \|^pdr \|^nlt_days \|^power_mw ' /tmp/hi_ci_serve_chaos1.txt \
    > /tmp/hi_ci_serve_got1.txt
grep '^status feasible\|^design \|^pdr \|^nlt_days \|^power_mw ' /tmp/hi_ci_serve_chaos2.txt \
    > /tmp/hi_ci_serve_got2.txt
diff /tmp/hi_ci_serve_expect.txt /tmp/hi_ci_serve_got1.txt
diff /tmp/hi_ci_serve_expect.txt /tmp/hi_ci_serve_got2.txt

# Fifth: warm Pareto front. A daemon that simulated a fleet is shut
# down; a fresh daemon on the same state dir must answer FRONT for the
# recovered job with `simulations 0` and point rows byte-identical to
# the hot daemon's — the frontier is served from disk, never re-swept.
rm -rf /tmp/hi_ci_front
target/release/hi-opt serve --state /tmp/hi_ci_front --listen 127.0.0.1:0 \
    --threads 8 2> /dev/null &
FRONTD=$!
while [ ! -f /tmp/hi_ci_front/addr ]; do sleep 0.05; done
target/release/hi-serve-client /tmp/hi_ci_front/addr run /tmp/hi_ci_serve_kill.profile \
    > /dev/null 2>&1
target/release/hi-serve-client /tmp/hi_ci_front/addr front 1 > /tmp/hi_ci_front_hot.txt
grep -q '^point ' /tmp/hi_ci_front_hot.txt
! grep -q '^simulations 0$' /tmp/hi_ci_front_hot.txt   # the hot daemon paid
target/release/hi-serve-client /tmp/hi_ci_front/addr shutdown > /dev/null
wait "$FRONTD"
rm -f /tmp/hi_ci_front/addr
target/release/hi-opt serve --state /tmp/hi_ci_front --listen 127.0.0.1:0 \
    --threads 8 2> /dev/null &
FRONTD=$!
while [ ! -f /tmp/hi_ci_front/addr ]; do sleep 0.05; done
target/release/hi-serve-client /tmp/hi_ci_front/addr front 1 > /tmp/hi_ci_front_warm.txt
target/release/hi-serve-client /tmp/hi_ci_front/addr shutdown > /dev/null
wait "$FRONTD"
grep -q '^simulations 0$' /tmp/hi_ci_front_warm.txt    # warm: zero fresh sims
grep -v '^simulations ' /tmp/hi_ci_front_hot.txt > /tmp/hi_ci_front_hot_rows.txt
grep -v '^simulations ' /tmp/hi_ci_front_warm.txt > /tmp/hi_ci_front_warm_rows.txt
diff /tmp/hi_ci_front_hot_rows.txt /tmp/hi_ci_front_warm_rows.txt

# And the standalone CLI's memoized sweep: a cold `tradeoff --archive`
# persists its front; the warm rerun answers the identical front from
# the file with zero simulations.
rm -rf /tmp/hi_ci_tradearch
target/release/hi-opt tradeoff --tsim 2 --runs 1 --archive /tmp/hi_ci_tradearch \
    > /tmp/hi_ci_trade_cold.txt
! grep -q '^total unique simulations: 0$' /tmp/hi_ci_trade_cold.txt
target/release/hi-opt tradeoff --tsim 2 --runs 1 --archive /tmp/hi_ci_tradearch \
    > /tmp/hi_ci_trade_warm.txt
grep -q '^total unique simulations: 0$' /tmp/hi_ci_trade_warm.txt
sed -n '/^pareto front/,/^total/p' /tmp/hi_ci_trade_cold.txt | grep -v '^total' \
    > /tmp/hi_ci_trade_cold_front.txt
sed -n '/^pareto front/,/^total/p' /tmp/hi_ci_trade_warm.txt | grep -v '^total' \
    > /tmp/hi_ci_trade_warm_front.txt
diff /tmp/hi_ci_trade_cold_front.txt /tmp/hi_ci_trade_warm_front.txt

HI_BENCH_QUICK=1 cargo bench

# Refresh the committed perf-trajectory report with explicit 1- and
# 8-worker rows (HI_EXEC_THREADS pins the pool size even on a
# single-core host).
HI_BENCH_QUICK=1 HI_EXEC_THREADS=8 HI_BENCH_REPORT_DIR="$PWD" \
    cargo bench --bench sweep
