//! The typed per-point evaluation failure.

use std::any::Any;
use std::fmt;

/// A single evaluation failed (typically: the evaluator panicked).
///
/// The hardened execution paths degrade a panicking task to one of these
/// instead of poisoning the pool or aborting the whole batch: the point
/// is reported broken, every other point completes, and — because a
/// failed compute is cached like a successful one — racing threads agree
/// on the failure without recomputing it.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct EvalError {
    message: String,
}

impl EvalError {
    /// An error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }

    /// Converts a caught panic payload into a typed error, preserving
    /// `panic!`/`assert!` messages where they are recoverable.
    pub fn from_panic(payload: &(dyn Any + Send)) -> Self {
        let message = if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_owned()
        } else {
            "evaluation panicked (non-string payload)".to_owned()
        };
        Self::new(format!("evaluation panicked: {message}"))
    }

    /// The human-readable failure description.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for EvalError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_panic_preserves_string_payloads() {
        let payload = std::panic::catch_unwind(|| panic!("boom {}", 7)).unwrap_err();
        let err = EvalError::from_panic(payload.as_ref());
        assert_eq!(err.message(), "evaluation panicked: boom 7");

        let payload = std::panic::catch_unwind(|| panic!("static")).unwrap_err();
        let err = EvalError::from_panic(payload.as_ref());
        assert!(err.to_string().contains("static"));
    }
}
