//! Network-stack configuration vectors (the paper's `χ = (χrd, χMAC, χrt, χapp)`).

use hi_channel::BodyLocation;
use hi_des::SimDuration;

/// Transmitter output power levels of the TI CC2650 used in the paper
/// (Table 1; the binary selectors `p1`, `p2`, `p3`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TxPower {
    /// `p1`: −20 dBm output, 9.55 mW consumption.
    Minus20Dbm,
    /// `p2`: −10 dBm output, 11.56 mW consumption.
    Minus10Dbm,
    /// `p3`: 0 dBm output, 18.3 mW consumption.
    ZeroDbm,
}

impl TxPower {
    /// All levels in ascending output power.
    pub const ALL: [TxPower; 3] = [TxPower::Minus20Dbm, TxPower::Minus10Dbm, TxPower::ZeroDbm];

    /// Transmitter output power in dBm (`TxdBm`).
    pub const fn dbm(self) -> f64 {
        match self {
            TxPower::Minus20Dbm => -20.0,
            TxPower::Minus10Dbm => -10.0,
            TxPower::ZeroDbm => 0.0,
        }
    }

    /// Transmitter power consumption in mW (`TxmW`).
    pub const fn consumption_mw(self) -> f64 {
        match self {
            TxPower::Minus20Dbm => 9.55,
            TxPower::Minus10Dbm => 11.56,
            TxPower::ZeroDbm => 18.3,
        }
    }
}

impl std::fmt::Display for TxPower {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TxPower::Minus20Dbm => write!(f, "-20dBm"),
            TxPower::Minus10Dbm => write!(f, "-10dBm"),
            TxPower::ZeroDbm => write!(f, "0dBm"),
        }
    }
}

/// Radio (physical-layer) parameters — the paper's
/// `χrd = (fc, BR, TxdBm, TxmW, RxdBm, RxmW)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RadioParams {
    /// Carrier frequency, GHz (`fc`). Informational (the channel model is
    /// calibrated for 2.4 GHz).
    pub carrier_ghz: f64,
    /// Bit rate, bits/s (`BR`).
    pub bit_rate_bps: f64,
    /// Selected transmit power level (`TxdBm`, `TxmW`).
    pub tx_power: TxPower,
    /// Receiver sensitivity, dBm (`RxdBm`).
    pub rx_sensitivity_dbm: f64,
    /// Receiver power consumption, mW (`RxmW`).
    pub rx_consumption_mw: f64,
}

impl RadioParams {
    /// The TI CC2650 BLE radio of the paper's Table 1, at the given
    /// transmit power level.
    ///
    /// `fc = 2.4 GHz`, `BR = 1024 kbps`, `RxdBm = −97 dBm`,
    /// `RxmW = 17.7 mW`.
    pub const fn cc2650(tx_power: TxPower) -> Self {
        Self {
            carrier_ghz: 2.4,
            bit_rate_bps: 1_024_000.0,
            tx_power,
            rx_sensitivity_dbm: -97.0,
            rx_consumption_mw: 17.7,
        }
    }

    /// Airtime of an `len_bytes`-byte packet: `Tpkt = 8 L / BR` (paper §2.1.2).
    pub fn packet_duration(&self, len_bytes: usize) -> SimDuration {
        SimDuration::from_secs(8.0 * len_bytes as f64 / self.bit_rate_bps)
    }

    /// Link-budget check: can a transmission at this radio's power be
    /// decoded across `path_loss_db`? (`TxdBm ≥ RxdBm + PL`.)
    pub fn link_closes(&self, path_loss_db: f64) -> bool {
        self.tx_power.dbm() >= self.rx_sensitivity_dbm + path_loss_db
    }
}

/// The CSMA access mode — the paper's `AM` component of `χMAC`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CsmaAccessMode {
    /// Sense once; if busy, back off for a uniform random delay and
    /// retry (Castalia `TunableMAC`'s non-persistent flavour, used in the
    /// paper's §4.1 experiments).
    NonPersistent,
    /// p-persistent: poll the channel every `sense_period`; when idle,
    /// transmit with probability `p`, otherwise defer one period.
    /// `p = 1.0` gives classic 1-persistent CSMA (greedy, collision-prone
    /// when several nodes wait out the same transmission).
    PPersistent {
        /// Transmission probability on an idle poll, in `(0, 1]`.
        p: f64,
        /// Polling interval.
        sense_period: SimDuration,
    },
}

impl CsmaAccessMode {
    /// Classic 1-persistent CSMA with a 0.5 ms poll.
    pub fn one_persistent() -> Self {
        CsmaAccessMode::PPersistent {
            p: 1.0,
            sense_period: SimDuration::from_millis(0.5),
        }
    }
}

/// CSMA (carrier-sense multiple access) MAC parameters.
///
/// Models Castalia's `TunableMAC`: before each attempt the node waits a
/// uniform random delay, senses the medium, and proceeds per the
/// [`CsmaAccessMode`]. There are no acknowledgements or retransmissions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CsmaParams {
    /// Uniform upper bound of the pre-sense randomization delay.
    pub initial_backoff: SimDuration,
    /// Uniform upper bound of the busy-channel backoff
    /// (non-persistent mode).
    pub backoff: SimDuration,
    /// Give up on a packet after this many busy-channel senses.
    pub max_attempts: u32,
    /// Access mode (`AM`).
    pub access_mode: CsmaAccessMode,
    /// Rx→Tx turnaround: the blind window between a clear-channel
    /// assessment and the transmission actually starting. Two nodes whose
    /// assessments fall within the same window collide — the physical
    /// mechanism behind CSMA collisions.
    pub turnaround: SimDuration,
}

impl Default for CsmaParams {
    fn default() -> Self {
        Self {
            initial_backoff: SimDuration::from_millis(2.0),
            backoff: SimDuration::from_millis(8.0),
            max_attempts: 8,
            access_mode: CsmaAccessMode::NonPersistent,
            turnaround: SimDuration::from_micros(150),
        }
    }
}

/// TDMA MAC parameters: fixed slots assigned round-robin (paper §4.1 uses
/// 1 ms slots).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TdmaParams {
    /// Slot duration (`Tslot`). A packet must fit within one slot.
    pub slot: SimDuration,
}

impl Default for TdmaParams {
    fn default() -> Self {
        Self {
            slot: SimDuration::from_millis(1.0),
        }
    }
}

/// Slotted-ALOHA MAC parameters (library extension; the paper's design
/// example uses only CSMA and TDMA, but its Fig. 1 component library is
/// explicitly open-ended).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlohaParams {
    /// Slot duration; a packet must fit within one slot.
    pub slot: SimDuration,
    /// Per-slot transmission probability for a backlogged node.
    pub p: f64,
}

impl Default for AlohaParams {
    fn default() -> Self {
        Self {
            slot: SimDuration::from_millis(1.0),
            p: 0.3,
        }
    }
}

/// IEEE 802.15.6-inspired hybrid superframe MAC parameters (library
/// extension). Each superframe starts with one guaranteed slot per node
/// (the standard's managed access phase), followed by
/// `contention_slots` mini-slots of random access (the random access
/// phase) that nodes with more than one queued packet use to drain
/// bursts — a lone packet waits for its guaranteed slot instead of
/// risking an unrecoverable collision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HybridParams {
    /// Mini-slot duration (both phases); a packet must fit in one.
    pub slot: SimDuration,
    /// Number of contention mini-slots appended per superframe.
    pub contention_slots: u32,
    /// Per-mini-slot transmission probability in the contention phase.
    pub p: f64,
}

impl Default for HybridParams {
    fn default() -> Self {
        Self {
            slot: SimDuration::from_millis(1.0),
            contention_slots: 4,
            p: 0.3,
        }
    }
}

/// The MAC-layer choice (`PMAC` with its protocol-specific parameters).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MacKind {
    /// Contention-based access with carrier sensing.
    Csma(CsmaParams),
    /// Time-division access.
    Tdma(TdmaParams),
    /// Slotted ALOHA: transmit in the next slot with probability `p`,
    /// no carrier sensing at all.
    SlottedAloha(AlohaParams),
    /// IEEE 802.15.6-style superframe: guaranteed slots + contention tail.
    Hybrid(HybridParams),
}

impl MacKind {
    /// Default-parameter CSMA.
    pub fn csma() -> Self {
        MacKind::Csma(CsmaParams::default())
    }

    /// Default-parameter TDMA.
    pub fn tdma() -> Self {
        MacKind::Tdma(TdmaParams::default())
    }

    /// Default-parameter slotted ALOHA.
    pub fn slotted_aloha() -> Self {
        MacKind::SlottedAloha(AlohaParams::default())
    }

    /// Default-parameter hybrid superframe MAC.
    pub fn hybrid() -> Self {
        MacKind::Hybrid(HybridParams::default())
    }

    /// Short label used in experiment output.
    pub fn label(&self) -> &'static str {
        match self {
            MacKind::Csma(_) => "CSMA",
            MacKind::Tdma(_) => "TDMA",
            MacKind::SlottedAloha(_) => "S-ALOHA",
            MacKind::Hybrid(_) => "Hybrid",
        }
    }
}

/// How the flooding mesh suppresses duplicate rebroadcasts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FloodMode {
    /// A node rebroadcasts a given `(origin, seq)` packet at most once
    /// (standard controlled flooding). Fewer transmissions, still one
    /// relay per peer.
    #[default]
    DedupPerNode,
    /// Only the per-copy visited history and the hop budget limit
    /// rebroadcasts, as in the paper's §2.1.2 description; every distinct
    /// copy may be relayed. Maximum redundancy, maximum energy.
    HistoryOnly,
}

/// The routing-layer choice (`χrt = (Prt, ncoor, Nhops)`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Routing {
    /// Star topology: every packet is relayed once by the coordinator
    /// node; peers also overhear originals directly.
    Star {
        /// Index (into the placement vector) of the coordinator (`ncoor`).
        coordinator: usize,
    },
    /// Controlled-flooding mesh with a maximum hop count (`Nhops`).
    Mesh {
        /// Maximum number of re-broadcasting hops.
        max_hops: u8,
        /// Duplicate-suppression mode.
        flood_mode: FloodMode,
    },
}

impl Routing {
    /// The paper's default mesh: two re-broadcasting hops.
    pub fn mesh() -> Self {
        Routing::Mesh {
            max_hops: 2,
            flood_mode: FloodMode::default(),
        }
    }

    /// Short label used in experiment output ("Star"/"Mesh").
    pub fn label(&self) -> &'static str {
        match self {
            Routing::Star { .. } => "Star",
            Routing::Mesh { .. } => "Mesh",
        }
    }

    /// True for the mesh option (`Prt = 1`).
    pub fn is_mesh(&self) -> bool {
        matches!(self, Routing::Mesh { .. })
    }
}

/// Application-layer parameters (`χapp = (Pbl, Lpkt, φ)`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppParams {
    /// Node baseline power (everything but the radio), watts (`Pbl`).
    pub baseline_power_w: f64,
    /// Generated packet length, bytes (`Lpkt`).
    pub packet_len_bytes: usize,
    /// Per-node throughput in packets/second (`φ`).
    pub packets_per_second: f64,
}

impl Default for AppParams {
    fn default() -> Self {
        // Paper §4.1: 100-byte packets every 100 ms, 100 µW baseline.
        Self {
            baseline_power_w: 100e-6,
            packet_len_bytes: 100,
            packets_per_second: 10.0,
        }
    }
}

impl AppParams {
    /// The generation period `1/φ`.
    pub fn period(&self) -> SimDuration {
        SimDuration::from_secs(1.0 / self.packets_per_second)
    }
}

/// Energy stored in a CR2032 coin cell (225 mAh at 3 V), joules.
pub const CR2032_ENERGY_J: f64 = 225e-3 * 3600.0 * 3.0;

/// A scheduled node failure (extension beyond the paper): at `at`, the
/// node stops generating, relaying and receiving. Any transmission
/// already in flight completes. Use to study how each topology degrades
/// when a body node dies mid-mission.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeFault {
    /// Index (into the placement vector) of the failing node.
    pub node: usize,
    /// Failure instant, relative to simulation start.
    pub at: SimDuration,
}

/// A complete simulatable network configuration — the paper's pair `(ν, χ)`.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkConfig {
    /// Node placements; node `i` sits at `placements[i]`. Order matters
    /// only for indexing (TDMA slots are assigned in this order).
    pub placements: Vec<BodyLocation>,
    /// Physical layer.
    pub radio: RadioParams,
    /// MAC layer.
    pub mac: MacKind,
    /// Routing layer.
    pub routing: Routing,
    /// Application layer.
    pub app: AppParams,
    /// Per-node stored energy, joules (`Ebat`). The star coordinator is
    /// assumed mains-assisted/bigger and is excluded from lifetime.
    pub battery_j: f64,
    /// MAC transmit-queue capacity in packets (`BMAC`).
    pub mac_buffer: usize,
    /// Scheduled node failures (empty for the paper's experiments).
    pub faults: Vec<NodeFault>,
    /// Scripted fault scenario (nominal — empty — for the paper's
    /// experiments). Entries reference body *site* indices, so the same
    /// scenario value can be attached to any placement.
    pub scenario: crate::fault::FaultScenario,
    /// Per-node packet-rate overrides in packets/second, dense over the
    /// placement vector. `None` (the paper's setting) gives every node
    /// the shared `app.packets_per_second`.
    pub per_node_rates: Option<Vec<f64>>,
    /// Average harvested power per non-coordinator node, watts
    /// (extension: the Human Intranet vision includes energy-harvesting
    /// nodes). Subtracted from the drain before computing lifetime; a
    /// node harvesting more than it draws lives forever.
    pub harvest_power_w: f64,
}

/// Error returned by [`NetworkConfig::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConfigError {
    /// Fewer than two nodes.
    TooFewNodes,
    /// Two nodes share a body location.
    DuplicatePlacement(BodyLocation),
    /// Star coordinator index out of range.
    BadCoordinator(usize),
    /// A scheduled fault names a node index out of range.
    BadFaultNode(usize),
    /// A fault-scenario entry names a body site index out of range.
    BadScenarioSite(usize),
    /// A fault-scenario interference loss is negative or not finite.
    BadScenarioLoss,
    /// A packet does not fit in a TDMA slot.
    PacketExceedsSlot,
    /// The MAC buffer capacity is zero.
    ZeroBuffer,
    /// The slotted-ALOHA transmission probability is outside `[0, 1]`.
    BadAlohaProbability,
    /// `per_node_rates` has the wrong length or a non-positive rate.
    BadRateOverrides,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::TooFewNodes => write!(f, "network needs at least two nodes"),
            ConfigError::DuplicatePlacement(l) => {
                write!(f, "two nodes placed at the same location `{l}`")
            }
            ConfigError::BadCoordinator(i) => {
                write!(f, "coordinator index {i} is out of range")
            }
            ConfigError::BadFaultNode(i) => {
                write!(f, "fault names node index {i}, which is out of range")
            }
            ConfigError::BadScenarioSite(i) => {
                write!(f, "fault scenario names body site {i}, beyond the 10 sites")
            }
            ConfigError::BadScenarioLoss => {
                write!(
                    f,
                    "interference loss must be a finite non-negative dB value"
                )
            }
            ConfigError::PacketExceedsSlot => {
                write!(f, "packet airtime exceeds the TDMA slot duration")
            }
            ConfigError::ZeroBuffer => write!(f, "MAC buffer capacity must be nonzero"),
            ConfigError::BadAlohaProbability => {
                write!(f, "slotted-ALOHA probability must be within [0, 1]")
            }
            ConfigError::BadRateOverrides => {
                write!(f, "per-node rates must list one positive rate per node")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

impl NetworkConfig {
    /// A configuration with the paper's §4.1 defaults: CC2650 radio,
    /// 100-byte packets at 10 pkt/s, 100 µW baseline, CR2032 batteries,
    /// chest coordinator for star.
    pub fn new(
        placements: Vec<BodyLocation>,
        tx_power: TxPower,
        mac: MacKind,
        routing: Routing,
    ) -> Self {
        Self {
            placements,
            radio: RadioParams::cc2650(tx_power),
            mac,
            routing,
            app: AppParams::default(),
            battery_j: CR2032_ENERGY_J,
            mac_buffer: 16,
            faults: Vec::new(),
            scenario: crate::fault::FaultScenario::nominal(),
            per_node_rates: None,
            harvest_power_w: 0.0,
        }
    }

    /// Number of nodes (`N`).
    pub fn num_nodes(&self) -> usize {
        self.placements.len()
    }

    /// The coordinator index for star routing, if applicable.
    pub fn coordinator(&self) -> Option<usize> {
        match self.routing {
            Routing::Star { coordinator } => Some(coordinator),
            Routing::Mesh { .. } => None,
        }
    }

    /// Packet airtime for this configuration.
    pub fn packet_duration(&self) -> SimDuration {
        self.radio.packet_duration(self.app.packet_len_bytes)
    }

    /// Checks structural validity.
    ///
    /// # Errors
    ///
    /// Returns the first violated rule as a [`ConfigError`].
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.placements.len() < 2 {
            return Err(ConfigError::TooFewNodes);
        }
        let mut seen = std::collections::HashSet::new();
        for &p in &self.placements {
            if !seen.insert(p) {
                return Err(ConfigError::DuplicatePlacement(p));
            }
        }
        if let Routing::Star { coordinator } = self.routing {
            if coordinator >= self.placements.len() {
                return Err(ConfigError::BadCoordinator(coordinator));
            }
        }
        match self.mac {
            MacKind::Tdma(t) => {
                if self.packet_duration() > t.slot {
                    return Err(ConfigError::PacketExceedsSlot);
                }
            }
            MacKind::SlottedAloha(a) => {
                if self.packet_duration() > a.slot {
                    return Err(ConfigError::PacketExceedsSlot);
                }
                if !(0.0..=1.0).contains(&a.p) {
                    return Err(ConfigError::BadAlohaProbability);
                }
            }
            MacKind::Hybrid(h) => {
                if self.packet_duration() > h.slot {
                    return Err(ConfigError::PacketExceedsSlot);
                }
                if !(0.0..=1.0).contains(&h.p) {
                    return Err(ConfigError::BadAlohaProbability);
                }
            }
            MacKind::Csma(_) => {}
        }
        if self.mac_buffer == 0 {
            return Err(ConfigError::ZeroBuffer);
        }
        for f in &self.faults {
            if f.node >= self.placements.len() {
                return Err(ConfigError::BadFaultNode(f.node));
            }
        }
        self.scenario.validate()?;
        if let Some(rates) = &self.per_node_rates {
            if rates.len() != self.placements.len()
                || rates.iter().any(|&r| r <= 0.0 || !r.is_finite())
            {
                return Err(ConfigError::BadRateOverrides);
            }
        }
        Ok(())
    }

    /// One-line human-readable summary, e.g.
    /// `[chest, l-hip, l-ankle, l-wrist] Star CSMA -10dBm`.
    pub fn summary(&self) -> String {
        let locs: Vec<&str> = self.placements.iter().map(|l| l.name()).collect();
        format!(
            "[{}] {} {} {}",
            locs.join(", "),
            self.routing.label(),
            self.mac.label(),
            self.radio.tx_power
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_constants() {
        // Paper Table 1 verbatim.
        let r = RadioParams::cc2650(TxPower::Minus20Dbm);
        assert_eq!(r.carrier_ghz, 2.4);
        assert_eq!(r.bit_rate_bps, 1_024_000.0);
        assert_eq!(r.rx_sensitivity_dbm, -97.0);
        assert_eq!(r.rx_consumption_mw, 17.7);
        assert_eq!(TxPower::Minus20Dbm.dbm(), -20.0);
        assert_eq!(TxPower::Minus20Dbm.consumption_mw(), 9.55);
        assert_eq!(TxPower::Minus10Dbm.dbm(), -10.0);
        assert_eq!(TxPower::Minus10Dbm.consumption_mw(), 11.56);
        assert_eq!(TxPower::ZeroDbm.dbm(), 0.0);
        assert_eq!(TxPower::ZeroDbm.consumption_mw(), 18.3);
    }

    #[test]
    fn packet_airtime_matches_eq_tpkt() {
        // Tpkt = 8*100/1024000 = 781.25 µs.
        let r = RadioParams::cc2650(TxPower::ZeroDbm);
        let d = r.packet_duration(100);
        assert_eq!(d.as_nanos(), 781_250);
    }

    #[test]
    fn link_budget() {
        let r = RadioParams::cc2650(TxPower::ZeroDbm);
        assert!(r.link_closes(96.9)); // 0 >= -97 + 96.9
        assert!(!r.link_closes(97.1));
        let weak = RadioParams::cc2650(TxPower::Minus20Dbm);
        assert!(weak.link_closes(76.9));
        assert!(!weak.link_closes(77.1));
    }

    #[test]
    fn cr2032_energy() {
        assert!((CR2032_ENERGY_J - 2430.0).abs() < 1e-9);
    }

    #[test]
    fn app_period() {
        assert_eq!(
            AppParams::default().period(),
            SimDuration::from_millis(100.0)
        );
    }

    fn base_config() -> NetworkConfig {
        NetworkConfig::new(
            vec![
                BodyLocation::Chest,
                BodyLocation::LeftHip,
                BodyLocation::LeftAnkle,
                BodyLocation::LeftWrist,
            ],
            TxPower::ZeroDbm,
            MacKind::csma(),
            Routing::Star { coordinator: 0 },
        )
    }

    #[test]
    fn valid_config_passes() {
        assert_eq!(base_config().validate(), Ok(()));
    }

    #[test]
    fn duplicate_placement_rejected() {
        let mut c = base_config();
        c.placements[1] = BodyLocation::Chest;
        assert!(matches!(
            c.validate(),
            Err(ConfigError::DuplicatePlacement(BodyLocation::Chest))
        ));
    }

    #[test]
    fn bad_coordinator_rejected() {
        let mut c = base_config();
        c.routing = Routing::Star { coordinator: 9 };
        assert_eq!(c.validate(), Err(ConfigError::BadCoordinator(9)));
    }

    #[test]
    fn oversized_packet_for_tdma_rejected() {
        let mut c = base_config();
        c.mac = MacKind::tdma();
        c.app.packet_len_bytes = 200; // 1.56 ms > 1 ms slot
        assert_eq!(c.validate(), Err(ConfigError::PacketExceedsSlot));
    }

    #[test]
    fn too_few_nodes_rejected() {
        let mut c = base_config();
        c.placements.truncate(1);
        assert_eq!(c.validate(), Err(ConfigError::TooFewNodes));
    }

    #[test]
    fn summary_mentions_all_choices() {
        let s = base_config().summary();
        assert!(s.contains("chest"));
        assert!(s.contains("Star"));
        assert!(s.contains("CSMA"));
        assert!(s.contains("0dBm"));
    }

    #[test]
    fn labels() {
        assert_eq!(MacKind::csma().label(), "CSMA");
        assert_eq!(MacKind::tdma().label(), "TDMA");
        assert_eq!(Routing::mesh().label(), "Mesh");
        assert!(Routing::mesh().is_mesh());
        assert!(!Routing::Star { coordinator: 0 }.is_mesh());
    }
}
