//! Microbenchmark B1: LP relaxation solve times of the dense two-phase
//! simplex, from textbook-sized to design-space-sized instances.

use hi_bench::micro::Runner;
use hi_milp::simplex::solve_lp;
use hi_milp::{LinExpr, Model, Sense};

/// Dense random-ish LP with `n` variables and `n` cover constraints.
/// Coefficients come from a fixed LCG so runs are reproducible.
fn cover_lp(n: usize) -> Model {
    let mut m = Model::new();
    let vars: Vec<_> = (0..n)
        .map(|i| m.add_continuous(&format!("x{i}"), 0.0, 10.0))
        .collect();
    let mut state = 0x2545F4914F6CDD1Du64;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state % 9) as f64 + 1.0
    };
    for c in 0..n {
        let mut e = LinExpr::new();
        for (i, &v) in vars.iter().enumerate() {
            if (i + c) % 3 != 0 {
                e.add_term(v, next());
            }
        }
        m.add_constraint(e, Sense::Ge, 5.0 + (c % 7) as f64);
    }
    let mut obj = LinExpr::new();
    for &v in &vars {
        obj.add_term(v, next());
    }
    m.minimize(obj);
    m
}

fn main() {
    let runner = Runner::new("simplex");
    for n in [8usize, 16, 32, 64] {
        let model = cover_lp(n);
        runner.bench(&format!("cover_lp/{n}"), || {
            solve_lp(&model).expect("lp solves").objective
        });
    }
}
