//! Lock-cheap event collector with deterministic per-lane buffers.
//!
//! # Model
//!
//! A [`Collector`] is a cloneable handle; a disabled handle carries no
//! allocation at all, and every recording call short-circuits on a
//! thread-local `None` check *before* touching the clock or formatting
//! anything — that is the "free-ish when disabled" contract.
//!
//! Recording goes through a thread-local context installed with
//! [`Collector::install`]: events are pushed into a plain `Vec` owned by the
//! current thread (no lock, no atomic per event) and submitted to the
//! collector's pending map when the install guard drops.
//!
//! # Determinism
//!
//! The pending map is keyed by `(epoch, lane)`:
//!
//! * the driving thread records on lane 0;
//! * each parallel batch (one `ExecContext` fan-out) opens a fresh *epoch*
//!   via [`Collector::open_batch`], and work item `i` of the batch records
//!   on lane `i + 1` of that epoch — the **item index**, not the worker
//!   thread id.
//!
//! Draining walks the map in key order, so the serialized event stream has
//! the same layout for any pool size (timestamps still differ run to run,
//! but structure and order do not). This is the determinism contract that
//! DESIGN.md §10 documents and ci.sh gates.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::event::{ArgValue, Event, EventKind, LanedEvent};
use crate::metrics::MetricsRegistry;

struct Inner {
    t0: Instant,
    record_events: bool,
    registry: MetricsRegistry,
    pending: Mutex<std::collections::BTreeMap<(u64, u32), Vec<Event>>>,
    epoch: AtomicU64,
}

/// Cloneable tracing handle. See the [module docs](crate::collector).
#[derive(Clone, Default)]
pub struct Collector {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Collector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Collector")
            .field("enabled", &self.is_enabled())
            .field("record_events", &self.records_events())
            .finish()
    }
}

struct ThreadCtx {
    inner: Arc<Inner>,
    epoch: u64,
    lane: u32,
    record_events: bool,
    buf: Vec<Event>,
}

thread_local! {
    static CTX: RefCell<Option<ThreadCtx>> = const { RefCell::new(None) };
}

impl Collector {
    /// A disabled collector: every operation is a no-op and recording calls
    /// short-circuit before taking timestamps or formatting.
    pub fn disabled() -> Self {
        Collector { inner: None }
    }

    /// An enabled collector recording both events and metrics.
    pub fn enabled() -> Self {
        Self::with_mode(true)
    }

    /// An enabled collector recording metrics only (`--metrics` without
    /// `--trace`): counters/gauges/histograms work, span and instant
    /// recording is skipped entirely.
    pub fn metrics_only() -> Self {
        Self::with_mode(false)
    }

    fn with_mode(record_events: bool) -> Self {
        Collector {
            inner: Some(Arc::new(Inner {
                t0: Instant::now(),
                record_events,
                registry: MetricsRegistry::new(),
                pending: Mutex::new(std::collections::BTreeMap::new()),
                epoch: AtomicU64::new(0),
            })),
        }
    }

    /// True unless this is [`Collector::disabled`].
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// True when span/instant events are recorded (not metrics-only).
    pub fn records_events(&self) -> bool {
        self.inner.as_ref().is_some_and(|i| i.record_events)
    }

    /// The metrics registry, when enabled.
    pub fn registry(&self) -> Option<&MetricsRegistry> {
        self.inner.as_ref().map(|i| &i.registry)
    }

    /// Installs this collector as the current thread's recording context.
    ///
    /// Events record into a thread-local buffer tagged `(epoch, lane)`;
    /// the buffer is submitted when the returned guard drops, and the
    /// previously installed context (if any) is restored. Disabled
    /// collectors install nothing and return an inert guard.
    ///
    /// The driving thread conventionally installs `(0, 0)`; parallel work
    /// item `i` of a batch installs `(batch_epoch, i + 1)`.
    pub fn install(&self, epoch: u64, lane: u32) -> InstallGuard {
        let Some(inner) = &self.inner else {
            return InstallGuard {
                active: false,
                prev: None,
            };
        };
        let ctx = ThreadCtx {
            inner: Arc::clone(inner),
            epoch,
            lane,
            record_events: inner.record_events,
            buf: Vec::new(),
        };
        let prev = CTX.with(|c| c.borrow_mut().replace(ctx));
        InstallGuard { active: true, prev }
    }

    /// Opens a new batch epoch for a parallel fan-out.
    ///
    /// Flushes the calling thread's buffer under its current key (so events
    /// recorded *before* the batch sort before the batch), then bumps the
    /// epoch counter. The returned token's epoch is what work items pass to
    /// [`Collector::install`] as their epoch (with lane `i + 1`); dropping
    /// the token bumps the epoch again and re-keys the calling thread after
    /// the batch. Returns `None` when disabled.
    pub fn open_batch(&self) -> Option<BatchToken> {
        let inner = self.inner.as_ref()?;
        flush_current();
        let epoch = inner.epoch.fetch_add(1, Ordering::Relaxed) + 1;
        Some(BatchToken {
            collector: self.clone(),
            epoch,
        })
    }

    /// Drains all buffered events in deterministic `(epoch, lane)` order.
    ///
    /// The calling thread's live buffer is flushed first, so a drain at the
    /// end of a run sees everything recorded on this thread even while its
    /// install guard is still alive.
    pub fn drain_events(&self) -> Vec<LanedEvent> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        flush_current();
        let mut pending = inner.pending.lock().unwrap();
        let map = std::mem::take(&mut *pending);
        drop(pending);
        let mut out = Vec::new();
        for ((epoch, lane), events) in map {
            for event in events {
                out.push(LanedEvent { epoch, lane, event });
            }
        }
        out
    }
}

impl ThreadCtx {
    fn submit(self) {
        if !self.buf.is_empty() {
            let mut pending = self.inner.pending.lock().unwrap();
            pending
                .entry((self.epoch, self.lane))
                .or_default()
                .extend(self.buf);
        }
    }
}

/// Flushes the calling thread's buffer to the pending map without
/// uninstalling the context.
fn flush_current() {
    CTX.with(|c| {
        if let Some(ctx) = c.borrow_mut().as_mut() {
            if !ctx.buf.is_empty() {
                let buf = std::mem::take(&mut ctx.buf);
                let mut pending = ctx.inner.pending.lock().unwrap();
                pending
                    .entry((ctx.epoch, ctx.lane))
                    .or_default()
                    .extend(buf);
            }
        }
    });
}

/// RAII guard for an installed recording context; see
/// [`Collector::install`].
///
/// Dropping the guard submits the thread's buffer and restores whatever
/// context (if any) was installed before.
#[must_use = "dropping the guard immediately uninstalls the collector"]
pub struct InstallGuard {
    active: bool,
    prev: Option<ThreadCtx>,
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        if self.active {
            let prev = self.prev.take();
            CTX.with(|c| {
                let cur = std::mem::replace(&mut *c.borrow_mut(), prev);
                if let Some(ctx) = cur {
                    ctx.submit();
                }
            });
        }
    }
}

/// Token for an open batch epoch; see [`Collector::open_batch`].
#[must_use = "dropping the token closes the batch epoch"]
pub struct BatchToken {
    collector: Collector,
    epoch: u64,
}

impl BatchToken {
    /// The epoch work items of this batch install under.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

impl Drop for BatchToken {
    fn drop(&mut self) {
        if let Some(inner) = &self.collector.inner {
            let after = inner.epoch.fetch_add(1, Ordering::Relaxed) + 1;
            // Re-key the calling thread so post-batch events sort after the
            // batch while staying on lane 0.
            CTX.with(|c| {
                if let Some(ctx) = c.borrow_mut().as_mut() {
                    if Arc::ptr_eq(&ctx.inner, inner) {
                        if !ctx.buf.is_empty() {
                            let buf = std::mem::take(&mut ctx.buf);
                            let mut pending = ctx.inner.pending.lock().unwrap();
                            pending
                                .entry((ctx.epoch, ctx.lane))
                                .or_default()
                                .extend(buf);
                        }
                        ctx.epoch = after;
                    }
                }
            });
        }
    }
}

// ---------------------------------------------------------------------------
// Recording API (free functions; no-ops without an installed context)
// ---------------------------------------------------------------------------

fn with_ctx<R>(f: impl FnOnce(&mut ThreadCtx) -> R) -> Option<R> {
    CTX.with(|c| c.borrow_mut().as_mut().map(f))
}

fn push_event(name: &'static str, kind: EventKind, args: Vec<(&'static str, ArgValue)>) -> bool {
    with_ctx(|ctx| {
        if !ctx.record_events {
            return false;
        }
        let ts_ns = ctx.inner.t0.elapsed().as_nanos() as u64;
        ctx.buf.push(Event {
            name,
            kind,
            ts_ns,
            args,
        });
        true
    })
    .unwrap_or(false)
}

/// Opens a duration span; the span closes when the returned guard drops.
/// Attach result data to the closing edge with [`SpanGuard::arg`].
pub fn span(name: &'static str) -> SpanGuard {
    let active = push_event(name, EventKind::SpanBegin, Vec::new());
    SpanGuard {
        name: active.then_some(name),
        args: Vec::new(),
    }
}

/// Records a point-in-time marker with no payload.
pub fn instant(name: &'static str) {
    let _ = push_event(name, EventKind::Instant, Vec::new());
}

/// Records a point-in-time marker with a payload.
///
/// The payload is built through a closure so disabled runs never allocate
/// or format the argument vector.
pub fn instant_with(name: &'static str, make_args: impl FnOnce() -> Vec<(&'static str, ArgValue)>) {
    with_ctx(|ctx| {
        if !ctx.record_events {
            return;
        }
        let ts_ns = ctx.inner.t0.elapsed().as_nanos() as u64;
        let args = make_args();
        ctx.buf.push(Event {
            name,
            kind: EventKind::Instant,
            ts_ns,
            args,
        });
    });
}

/// Records a sampled counter value as a `ph: "C"` event (for the Chrome
/// timeline) — distinct from [`counter`], which feeds the registry.
pub fn counter_sample(name: &'static str, value: u64) {
    with_ctx(|ctx| {
        if !ctx.record_events {
            return;
        }
        let ts_ns = ctx.inner.t0.elapsed().as_nanos() as u64;
        ctx.buf.push(Event {
            name,
            kind: EventKind::Counter,
            ts_ns,
            args: vec![("value", ArgValue::U64(value))],
        });
    });
}

/// Adds `delta` to the registry counter `name` (no event is emitted).
pub fn counter(name: &str, delta: u64) {
    if delta == 0 {
        return;
    }
    with_ctx(|ctx| ctx.inner.registry.add(name, delta));
}

/// Sets the registry gauge `name` (no event is emitted).
pub fn gauge(name: &str, value: i64) {
    with_ctx(|ctx| ctx.inner.registry.set_gauge(name, value));
}

/// Records `value` into the registry histogram `name`.
pub fn histogram(name: &str, value: u64) {
    with_ctx(|ctx| ctx.inner.registry.record(name, value));
}

/// Nanoseconds elapsed since the installed collector started, or `None`
/// when no enabled collector is installed. Use to time a region cheaply:
/// only runs the clock when tracing is on.
pub fn now_ns() -> Option<u64> {
    with_ctx(|ctx| ctx.inner.t0.elapsed().as_nanos() as u64)
}

/// Guard closing a span opened by [`span`].
pub struct SpanGuard {
    name: Option<&'static str>,
    args: Vec<(&'static str, ArgValue)>,
}

impl SpanGuard {
    /// Attaches a key/value pair to the span's closing edge.
    ///
    /// The conversion only runs when the span is live, so computing an
    /// argument for a disabled collector costs one branch.
    pub fn arg(&mut self, key: &'static str, value: impl Into<ArgValue>) {
        if self.name.is_some() {
            self.args.push((key, value.into()));
        }
    }

    /// True when the span will actually be emitted. Lets callers skip
    /// building expensive argument values (e.g. `format!`) when tracing is
    /// off.
    pub fn is_recording(&self) -> bool {
        self.name.is_some()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(name) = self.name {
            let _ = push_event(name, EventKind::SpanEnd, std::mem::take(&mut self.args));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_collector_records_nothing() {
        let c = Collector::disabled();
        assert!(!c.is_enabled());
        let _g = c.install(0, 0);
        {
            let mut s = span("never");
            s.arg("k", 1u64);
        }
        instant("never");
        counter("never", 1);
        assert!(c.drain_events().is_empty());
        assert!(c.registry().is_none());
        assert!(c.open_batch().is_none());
    }

    #[test]
    fn recording_without_install_is_a_noop() {
        let c = Collector::enabled();
        // No install: the free functions find no context.
        instant("orphan");
        counter("orphan", 3);
        assert!(c.drain_events().is_empty());
        assert_eq!(c.registry().unwrap().counter_value("orphan"), 0);
    }

    #[test]
    fn span_nesting_and_args() {
        let c = Collector::enabled();
        {
            let _g = c.install(0, 0);
            let _outer = span("outer");
            {
                let mut inner = span("inner");
                inner.arg("n", 42u64);
                inner.arg("label", "café");
            }
            instant("mark");
        }
        let events = c.drain_events();
        let names: Vec<_> = events
            .iter()
            .map(|e| (e.event.name, e.event.kind))
            .collect();
        assert_eq!(
            names,
            vec![
                ("outer", EventKind::SpanBegin),
                ("inner", EventKind::SpanBegin),
                ("inner", EventKind::SpanEnd),
                ("mark", EventKind::Instant),
                ("outer", EventKind::SpanEnd),
            ]
        );
        let inner_end = &events[2].event;
        assert_eq!(inner_end.args[0], ("n", ArgValue::U64(42)));
        assert_eq!(inner_end.args[1], ("label", ArgValue::Str("café".into())));
        // Timestamps are monotone within the lane.
        assert!(events
            .windows(2)
            .all(|w| w[0].event.ts_ns <= w[1].event.ts_ns));
    }

    #[test]
    fn metrics_only_skips_events_but_keeps_registry() {
        let c = Collector::metrics_only();
        let _g = c.install(0, 0);
        let _s = span("skipped");
        instant("skipped");
        counter_sample("skipped", 7);
        counter("kept", 7);
        histogram("kept.h", 3);
        drop(_s);
        assert!(c.drain_events().is_empty());
        assert_eq!(c.registry().unwrap().counter_value("kept"), 7);
        let snap = c.registry().unwrap().snapshot();
        assert_eq!(snap.histograms.len(), 1);
    }

    #[test]
    fn batch_epochs_order_lanes_deterministically() {
        let c = Collector::enabled();
        let _g = c.install(0, 0);
        instant("before");
        let token = c.open_batch().unwrap();
        let epoch = token.epoch();
        // Simulate two work items finishing in "wrong" order on other
        // threads: submit lane 2 before lane 1.
        let c2 = c.clone();
        std::thread::spawn(move || {
            let _w = c2.install(epoch, 2);
            instant("item1");
        })
        .join()
        .unwrap();
        let c1 = c.clone();
        std::thread::spawn(move || {
            let _w = c1.install(epoch, 1);
            instant("item0");
        })
        .join()
        .unwrap();
        drop(token);
        instant("after");
        let order: Vec<_> = c
            .drain_events()
            .iter()
            .map(|e| (e.epoch, e.lane, e.event.name))
            .collect();
        assert_eq!(
            order,
            vec![
                (0, 0, "before"),
                (1, 1, "item0"),
                (1, 2, "item1"),
                (2, 0, "after"),
            ]
        );
    }

    #[test]
    fn install_guard_restores_previous_context() {
        let outer = Collector::enabled();
        let inner = Collector::enabled();
        let _g = outer.install(0, 0);
        instant("outer1");
        {
            let _h = inner.install(0, 0);
            instant("inner");
        }
        instant("outer2");
        let outer_names: Vec<_> = outer.drain_events().iter().map(|e| e.event.name).collect();
        assert_eq!(outer_names, vec!["outer1", "outer2"]);
        let inner_names: Vec<_> = inner.drain_events().iter().map(|e| e.event.name).collect();
        assert_eq!(inner_names, vec!["inner"]);
    }
}
