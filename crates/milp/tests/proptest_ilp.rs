//! Property-based verification of the MILP solver against brute force.
//!
//! For random small binary ILPs we enumerate all 2^n assignments directly
//! and check that branch & bound (a) agrees on feasibility and (b) returns
//! the same optimal objective. The pool enumeration is checked to return
//! exactly the set of optimal assignments.

use hi_des::check::{run_cases, Gen};
use hi_milp::{pool, LinExpr, Model, Sense, SolveStatus, VarId};

/// A randomly generated binary ILP instance description.
#[derive(Debug, Clone)]
struct Instance {
    nvars: usize,
    obj: Vec<f64>,
    /// (coeffs, sense index 0..3, rhs)
    constraints: Vec<(Vec<f64>, u8, f64)>,
    maximize: bool,
}

fn any_instance(g: &mut Gen) -> Instance {
    let nvars = g.usize_in(2..7);
    let obj = (0..nvars).map(|_| g.f64_in(-5.0, 5.0)).collect();
    let ncons = g.usize_in(1..5);
    let constraints = (0..ncons)
        .map(|_| {
            let coeffs = (0..nvars).map(|_| g.f64_in(-4.0, 4.0)).collect();
            let sense = g.u64_below(3) as u8;
            let rhs = g.f64_in(-6.0, 6.0);
            (coeffs, sense, rhs)
        })
        .collect();
    Instance {
        nvars,
        obj,
        constraints,
        maximize: g.bool(),
    }
}

fn build_model(inst: &Instance) -> (Model, Vec<VarId>) {
    let mut m = Model::new();
    let vars: Vec<VarId> = (0..inst.nvars)
        .map(|i| m.add_binary(&format!("b{i}")))
        .collect();
    for (coeffs, sense, rhs) in &inst.constraints {
        let mut e = LinExpr::new();
        for (v, c) in vars.iter().zip(coeffs) {
            e.add_term(*v, round2(*c));
        }
        let sense = match sense {
            0 => Sense::Le,
            1 => Sense::Ge,
            _ => Sense::Eq,
        };
        m.add_constraint(e, sense, round2(*rhs));
    }
    let mut o = LinExpr::new();
    for (v, c) in vars.iter().zip(&inst.obj) {
        o.add_term(*v, round2(*c));
    }
    if inst.maximize {
        m.maximize(o);
    } else {
        m.minimize(o);
    }
    (m, vars)
}

/// Round coefficients to 2 decimals so brute-force feasibility checks and
/// the solver agree despite floating point tolerances.
fn round2(x: f64) -> f64 {
    (x * 100.0).round() / 100.0
}

/// Enumerates all assignments; returns (best objective, set of optimal keys).
fn brute_force(inst: &Instance) -> Option<(f64, Vec<u64>)> {
    let mut best: Option<f64> = None;
    let mut winners: Vec<u64> = Vec::new();
    for mask in 0u64..(1 << inst.nvars) {
        let x: Vec<f64> = (0..inst.nvars).map(|i| ((mask >> i) & 1) as f64).collect();
        let feasible = inst.constraints.iter().all(|(coeffs, sense, rhs)| {
            let lhs: f64 = coeffs.iter().zip(&x).map(|(c, v)| round2(*c) * v).sum();
            let rhs = round2(*rhs);
            match sense {
                0 => lhs <= rhs + 1e-9,
                1 => lhs >= rhs - 1e-9,
                _ => (lhs - rhs).abs() <= 1e-9,
            }
        });
        if !feasible {
            continue;
        }
        let obj: f64 = inst.obj.iter().zip(&x).map(|(c, v)| round2(*c) * v).sum();
        let better = match best {
            None => true,
            Some(b) => {
                if inst.maximize {
                    obj > b + 1e-9
                } else {
                    obj < b - 1e-9
                }
            }
        };
        if better {
            best = Some(obj);
            winners.clear();
            winners.push(mask);
        } else if let Some(b) = best {
            if (obj - b).abs() <= 1e-9 {
                winners.push(mask);
            }
        }
    }
    best.map(|b| (b, winners))
}

#[test]
fn branch_and_bound_matches_brute_force() {
    run_cases(300, 0x11_9001, |g| {
        let inst = any_instance(g);
        let (m, _) = build_model(&inst);
        let sol = m.solve().unwrap();
        match brute_force(&inst) {
            None => assert_eq!(sol.status(), SolveStatus::Infeasible),
            Some((best, _)) => {
                assert_eq!(sol.status(), SolveStatus::Optimal);
                assert!(
                    (sol.objective() - best).abs() < 1e-5,
                    "solver {} vs brute {}",
                    sol.objective(),
                    best
                );
            }
        }
    });
}

#[test]
fn pool_matches_brute_force_optima() {
    run_cases(300, 0x11_9002, |g| {
        let inst = any_instance(g);
        let (m, vars) = build_model(&inst);
        let found = pool::enumerate_optima(&m, pool::PoolOptions::default()).unwrap();
        match brute_force(&inst) {
            None => assert!(found.is_empty()),
            Some((_, winners)) => {
                let mut got: Vec<u64> = found
                    .iter()
                    .map(|s| {
                        vars.iter()
                            .enumerate()
                            .map(|(i, &v)| (s.int_value(v) as u64) << i)
                            .sum()
                    })
                    .collect();
                got.sort_unstable();
                let mut want = winners.clone();
                want.sort_unstable();
                assert_eq!(got, want);
            }
        }
    });
}

#[test]
fn optimal_solutions_are_feasible() {
    run_cases(300, 0x11_9003, |g| {
        let inst = any_instance(g);
        let (m, _) = build_model(&inst);
        let sol = m.solve().unwrap();
        if sol.is_optimal() {
            assert!(m.is_feasible(sol.values(), 1e-6));
        }
    });
}
