# Three office workers with identical radios and bodies: their jobs
# share every simulation through the fleet cache.
profile alice
pdrmin 0.9

profile bob
pdrmin 0.85

profile carol
pdrmin 0.9
engine exhaustive

# A taller user with a lossier environment and chattier sensors.
profile dave
geometry 1.15
channel 2.0
traffic 25 64
pdrmin 0.9
