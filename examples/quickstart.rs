//! Quickstart: find the lifetime-optimal Human Intranet configuration for
//! a 90% reliability floor, exactly as the paper's Algorithm 1 does —
//! MILP-proposed candidates verified by discrete-event simulation.
//!
//! ```sh
//! cargo run --release -p hi-opt --example quickstart
//! ```

use hi_opt::channel::ChannelParams;
use hi_opt::des::SimDuration;
use hi_opt::{explore, Problem, SimEvaluator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's design example (§4.1): 10 candidate body sites, chest +
    // hip + foot + wrist required, up to two extra nodes, CC2650 radio,
    // 100-byte packets at 10 packets/s.
    let pdr_min = 0.90;
    let problem = Problem::paper_default(pdr_min);

    // Evaluation protocol: the paper runs 3 x 600 s per candidate. Here we
    // use 3 x 60 s so the example finishes in seconds; bump `t_sim` for
    // paper-grade accuracy (<0.5% metric error).
    let mut evaluator = SimEvaluator::new(
        ChannelParams::default(),
        SimDuration::from_secs(60.0),
        3,
        0xC0FFEE,
    );

    println!("exploring {} candidate configurations ...", 1320);
    let outcome = explore(&problem, &mut evaluator)?;

    match outcome.best {
        Some((point, eval)) => {
            println!(
                "optimal configuration for PDRmin = {:.0}%:",
                pdr_min * 100.0
            );
            println!("  design        : {point}");
            println!("  placements    : {:?}", point.placement.locations());
            println!("  PDR           : {:.1}%", eval.pdr * 100.0);
            println!("  lifetime      : {:.1} days", eval.nlt_days);
            println!("  worst power   : {:.3} mW", eval.power_mw);
        }
        None => println!("no configuration reaches {:.0}% PDR", pdr_min * 100.0),
    }
    println!(
        "search effort : {} simulations over {} MILP iterations ({} candidates proposed, stop: {:?})",
        outcome.simulations, outcome.iterations, outcome.candidates_proposed, outcome.stop_reason
    );
    println!(
        "vs exhaustive : {} simulations ({}% saved)",
        1320,
        100 - (100 * outcome.simulations as usize) / 1320
    );
    Ok(())
}
