//! Output sinks: JSONL event stream, Chrome trace format and a human
//! metrics summary table.
//!
//! * **JSONL** — one self-contained JSON object per line:
//!   `{"epoch":E,"lane":L,"name":"...","ph":"B","ts_ns":N,"args":{...}}`.
//!   Line-oriented so it can be streamed, grepped and validated line by
//!   line (`trace-check --format jsonl`).
//! * **Chrome trace** — a JSON array of trace events loadable by
//!   `chrome://tracing` and Perfetto: `name`/`cat`/`ph`/`ts` (microseconds,
//!   fractional)/`pid` (always 1)/`tid` (the deterministic lane). Instants
//!   carry `"s":"t"` (thread scope).
//! * **Metrics table** — counters, gauges and histogram summaries aligned
//!   for stderr.

use std::fmt::Write as _;
use std::io::{self, Write};

use crate::event::{ArgValue, EventKind, LanedEvent};
use crate::json;
use crate::metrics::MetricsSnapshot;

fn arg_value_into(out: &mut String, v: &ArgValue) {
    match v {
        ArgValue::U64(n) => {
            let _ = write!(out, "{n}");
        }
        ArgValue::I64(n) => {
            let _ = write!(out, "{n}");
        }
        ArgValue::F64(n) => json::number_into(out, *n),
        ArgValue::Str(s) => json::escape_into(out, s),
    }
}

fn args_into(out: &mut String, args: &[(&'static str, ArgValue)]) {
    out.push('{');
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json::escape_into(out, k);
        out.push(':');
        arg_value_into(out, v);
    }
    out.push('}');
}

/// Renders one event as a JSONL line (no trailing newline).
pub fn jsonl_line(e: &LanedEvent) -> String {
    let mut s = String::with_capacity(96);
    let _ = write!(s, "{{\"epoch\":{},\"lane\":{},\"name\":", e.epoch, e.lane);
    json::escape_into(&mut s, e.event.name);
    let _ = write!(
        s,
        ",\"ph\":\"{}\",\"ts_ns\":{}",
        e.event.kind.chrome_phase(),
        e.event.ts_ns
    );
    if !e.event.args.is_empty() {
        s.push_str(",\"args\":");
        args_into(&mut s, &e.event.args);
    }
    s.push('}');
    s
}

/// Writes the full event stream as JSONL.
pub fn write_jsonl<W: Write>(w: &mut W, events: &[LanedEvent]) -> io::Result<()> {
    for e in events {
        writeln!(w, "{}", jsonl_line(e))?;
    }
    Ok(())
}

fn chrome_event_into(out: &mut String, e: &LanedEvent) {
    out.push_str("{\"name\":");
    json::escape_into(out, e.event.name);
    let ts_us = e.event.ts_ns as f64 / 1000.0;
    let _ = write!(
        out,
        ",\"cat\":\"hi\",\"ph\":\"{}\",\"ts\":{:.3},\"pid\":1,\"tid\":{}",
        e.event.kind.chrome_phase(),
        ts_us,
        e.lane
    );
    if e.event.kind == EventKind::Instant {
        out.push_str(",\"s\":\"t\"");
    }
    if !e.event.args.is_empty() {
        out.push_str(",\"args\":");
        args_into(out, &e.event.args);
    }
    out.push('}');
}

/// Writes the event stream as a Chrome trace JSON array (Perfetto-loadable).
pub fn write_chrome<W: Write>(w: &mut W, events: &[LanedEvent]) -> io::Result<()> {
    let mut out = String::with_capacity(events.len() * 96 + 2);
    out.push_str("[\n");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        chrome_event_into(&mut out, e);
    }
    out.push_str("\n]\n");
    w.write_all(out.as_bytes())
}

/// Renders the metrics snapshot as an aligned human-readable table.
pub fn render_metrics(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    if snapshot.is_empty() {
        out.push_str("metrics: (empty)\n");
        return out;
    }
    let width = snapshot
        .counters
        .iter()
        .map(|(n, _)| n.len())
        .chain(snapshot.gauges.iter().map(|(n, _)| n.len()))
        .chain(snapshot.histograms.iter().map(|(n, _)| n.len()))
        .max()
        .unwrap_or(0)
        .max("metric".len());
    if !snapshot.counters.is_empty() {
        out.push_str("counters:\n");
        for (name, v) in &snapshot.counters {
            let _ = writeln!(out, "  {name:<width$}  {v:>14}");
        }
    }
    if !snapshot.gauges.is_empty() {
        out.push_str("gauges:\n");
        for (name, v) in &snapshot.gauges {
            let _ = writeln!(out, "  {name:<width$}  {v:>14}");
        }
    }
    if !snapshot.histograms.is_empty() {
        out.push_str("histograms (count / min / mean / max):\n");
        for (name, h) in &snapshot.histograms {
            if h.count() == 0 {
                let _ = writeln!(out, "  {name:<width$}  {:>14}", "(empty)");
            } else {
                let _ = writeln!(
                    out,
                    "  {name:<width$}  {:>14} / {} / {:.1} / {}",
                    h.count(),
                    h.min().unwrap(),
                    h.mean().unwrap(),
                    h.max().unwrap()
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use crate::metrics::MetricsRegistry;

    fn ev(
        name: &'static str,
        kind: EventKind,
        lane: u32,
        args: Vec<(&'static str, ArgValue)>,
    ) -> LanedEvent {
        LanedEvent {
            epoch: 1,
            lane,
            event: Event {
                name,
                kind,
                ts_ns: 1_234_567,
                args,
            },
        }
    }

    #[test]
    fn jsonl_lines_are_valid_json_with_required_fields() {
        let events = vec![
            ev("milp.solve", EventKind::SpanBegin, 0, vec![]),
            ev(
                "robust.scenario",
                EventKind::SpanEnd,
                3,
                vec![
                    ("name", ArgValue::Str("outage \"hüfte\"\n".into())),
                    ("pdr", ArgValue::F64(0.925)),
                    ("drops", ArgValue::I64(-1)),
                ],
            ),
            ev(
                "algo1.pool",
                EventKind::Counter,
                0,
                vec![("value", ArgValue::U64(9))],
            ),
        ];
        let mut buf = Vec::new();
        write_jsonl(&mut buf, &events).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<_> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        for line in &lines {
            let v = json::parse(line).unwrap_or_else(|e| panic!("{line}: {e}"));
            for key in ["epoch", "lane", "name", "ph", "ts_ns"] {
                assert!(v.get(key).is_some(), "missing {key} in {line}");
            }
        }
        let v = json::parse(lines[1]).unwrap();
        assert_eq!(
            v.get("args")
                .and_then(|a| a.get("name"))
                .and_then(|s| s.as_str()),
            Some("outage \"hüfte\"\n")
        );
    }

    #[test]
    fn chrome_output_is_a_valid_trace_array() {
        let events = vec![
            ev("a", EventKind::SpanBegin, 0, vec![]),
            ev(
                "mark",
                EventKind::Instant,
                2,
                vec![("site", ArgValue::Str("Ωhip".into()))],
            ),
            ev("a", EventKind::SpanEnd, 0, vec![]),
        ];
        let mut buf = Vec::new();
        write_chrome(&mut buf, &events).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let v = json::parse(&text).unwrap();
        let json::Value::Arr(items) = v else {
            panic!("chrome trace must be an array")
        };
        assert_eq!(items.len(), 3);
        for item in &items {
            for key in ["name", "cat", "ph", "ts", "pid", "tid"] {
                assert!(item.get(key).is_some(), "missing {key}");
            }
        }
        assert_eq!(items[0].get("ph").and_then(|p| p.as_str()), Some("B"));
        assert_eq!(items[1].get("s").and_then(|p| p.as_str()), Some("t"));
        assert_eq!(items[1].get("tid").and_then(|t| t.as_num()), Some(2.0));
        assert_eq!(items[0].get("ts").and_then(|t| t.as_num()), Some(1234.567));
    }

    #[test]
    fn empty_chrome_trace_is_still_valid() {
        let mut buf = Vec::new();
        write_chrome(&mut buf, &[]).unwrap();
        let v = json::parse(std::str::from_utf8(&buf).unwrap()).unwrap();
        assert_eq!(v, json::Value::Arr(vec![]));
    }

    #[test]
    fn metrics_table_lists_every_kind() {
        let reg = MetricsRegistry::new();
        reg.add("exec.tasks_run", 128);
        reg.set_gauge("algo1.pool_size", 4);
        reg.record("milp.solve_ns", 1500);
        reg.record("milp.solve_ns", 2500);
        let table = render_metrics(&reg.snapshot());
        assert!(table.contains("counters:"));
        assert!(table.contains("exec.tasks_run"));
        assert!(table.contains("128"));
        assert!(table.contains("gauges:"));
        assert!(table.contains("histograms"));
        assert!(table.contains("milp.solve_ns"));
        let empty = render_metrics(&MetricsSnapshot::default());
        assert!(empty.contains("(empty)"));
    }
}
