//! Property-based invariants of the network simulator: for *any* valid
//! configuration and seed, the metrics must be internally consistent.

use hi_channel::{BodyLocation, ChannelParams};
use hi_des::check::{run_cases, Gen};
use hi_des::SimDuration;
use hi_net::{simulate_stochastic, FloodMode, MacKind, NetworkConfig, Routing, TxPower};

#[derive(Debug, Clone)]
struct AnyConfig {
    cfg: NetworkConfig,
    seed: u64,
}

fn any_config(g: &mut Gen) -> AnyConfig {
    const EXTRAS: [BodyLocation; 9] = [
        BodyLocation::LeftHip,
        BodyLocation::RightHip,
        BodyLocation::LeftAnkle,
        BodyLocation::RightAnkle,
        BodyLocation::LeftWrist,
        BodyLocation::RightWrist,
        BodyLocation::LeftUpperArm,
        BodyLocation::Head,
        BodyLocation::Back,
    ];
    // 1..=4 distinct extra nodes next to the mandatory chest hub.
    let mut extra = g.subsequence(&EXTRAS, 0.3);
    extra.truncate(4);
    if extra.is_empty() {
        extra.push(*g.choose(&EXTRAS));
    }
    let mut placements = vec![BodyLocation::Chest];
    placements.append(&mut extra);

    let power = *g.choose(&TxPower::ALL[..3]);
    let mac = match g.u64_below(4) {
        0 => MacKind::csma(),
        1 => MacKind::tdma(),
        2 => MacKind::slotted_aloha(),
        _ => MacKind::hybrid(),
    };
    let routing = if g.bool() {
        Routing::Mesh {
            max_hops: g.u64_below(3) as u8 + 1,
            flood_mode: FloodMode::DedupPerNode,
        }
    } else {
        Routing::Star { coordinator: 0 }
    };
    AnyConfig {
        cfg: NetworkConfig::new(placements, power, mac, routing),
        seed: g.u64(),
    }
}

#[test]
fn metrics_are_internally_consistent() {
    run_cases(48, 0x4E_0001, |g| {
        let any = any_config(g);
        let out = simulate_stochastic(
            &any.cfg,
            ChannelParams::default(),
            SimDuration::from_secs(5.0),
            any.seed,
        )
        .expect("generated configs are valid");

        let n = any.cfg.num_nodes();
        // PDR bounds (eq. 6-7).
        assert!((0.0..=1.0).contains(&out.pdr), "pdr {}", out.pdr);
        assert_eq!(out.node_pdr.len(), n);
        for &p in &out.node_pdr {
            assert!((0.0..=1.0 + 1e-12).contains(&p));
        }
        let mean = out.node_pdr.iter().sum::<f64>() / n as f64;
        assert!((mean - out.pdr).abs() < 1e-9, "eq. 7 violated");

        // Power: every node draws at least the baseline; the reported
        // worst equals the max over lifetime-relevant nodes.
        assert_eq!(out.node_power_mw.len(), n);
        for &p in &out.node_power_mw {
            assert!(p >= 0.1 - 1e-12, "below baseline: {p}");
        }
        let coordinator = any.cfg.coordinator();
        let worst = out
            .node_power_mw
            .iter()
            .enumerate()
            .filter(|(i, _)| Some(*i) != coordinator)
            .map(|(_, &p)| p)
            .fold(0.0f64, f64::max);
        assert!((worst - out.max_power_mw).abs() < 1e-12);

        // Lifetime consistent with the worst power (eq. 4).
        let expected_days = any.cfg.battery_j / (out.max_power_mw * 1e-3) / 86_400.0;
        assert!((out.nlt_days - expected_days).abs() < 1e-6);

        // Traffic accounting.
        let c = &out.counts;
        assert!(c.deliveries <= c.transmissions * (n as u64 - 1));
        assert!(c.generated > 0);
        // Latency sane.
        assert!(out.latency.mean_ms >= 0.0);
        assert!(out.latency.max_ms >= out.latency.mean_ms || out.latency.samples == 0);
        if out.pdr > 0.0 {
            assert!(out.latency.samples > 0);
        }
    });
}

#[test]
fn simulation_is_deterministic() {
    run_cases(48, 0x4E_0002, |g| {
        let any = any_config(g);
        let run = || {
            simulate_stochastic(
                &any.cfg,
                ChannelParams::default(),
                SimDuration::from_secs(3.0),
                any.seed,
            )
            .expect("valid")
        };
        assert_eq!(run(), run());
    });
}

#[test]
fn longer_simulation_does_not_break_invariants() {
    run_cases(48, 0x4E_0003, |g| {
        let any = any_config(g);
        // Guard against time-dependent state corruption (e.g. queue leaks):
        // PDR of a longer run stays within [0, 1] and power stays finite.
        let out = simulate_stochastic(
            &any.cfg,
            ChannelParams::default(),
            SimDuration::from_secs(20.0),
            any.seed,
        )
        .expect("valid");
        assert!((0.0..=1.0).contains(&out.pdr));
        assert!(out.max_power_mw.is_finite() && out.max_power_mw < 100.0);
    });
}
