//! Experiment E8 (extension): graceful degradation under node failure.
//! The Human Intranet vision (§1) stresses dependability for
//! safety-critical wearables; this harness kills one node mid-mission
//! and compares how the star and the flooding mesh absorb the loss —
//! including the star's single point of failure, its coordinator.
//!
//! ```sh
//! cargo run --release -p hi-bench --bin exp_fault
//! ```

use hi_bench::ExpOptions;
use hi_channel::{BodyLocation, ChannelParams};
use hi_des::SimDuration;
use hi_net::{
    simulate_averaged, FaultScenario, MacKind, NetworkConfig, NodeFault, Routing, SiteOutage,
    TxPower, Window,
};

fn main() {
    let opts = ExpOptions::from_args();
    let placements = vec![
        BodyLocation::Chest,
        BodyLocation::LeftHip,
        BodyLocation::LeftAnkle,
        BodyLocation::LeftWrist,
        BodyLocation::LeftUpperArm,
    ];
    let half = SimDuration::from_secs(opts.t_sim.as_secs_f64() / 2.0);
    println!("# Experiment E8: PDR with one node dying at half-mission (5 nodes, 0 dBm, TDMA)");
    println!("routing\tfailed_node\tpdr_pct\tpdr_healthy_pct\tdelta_pp");
    for routing in [Routing::Star { coordinator: 0 }, Routing::mesh()] {
        let healthy = {
            let cfg = NetworkConfig::new(
                placements.clone(),
                TxPower::ZeroDbm,
                MacKind::tdma(),
                routing,
            );
            simulate_averaged(
                &cfg,
                ChannelParams::default(),
                opts.t_sim,
                opts.seed,
                opts.runs,
            )
            .expect("valid config")
        };
        for failed in [0usize, 2] {
            let mut cfg = NetworkConfig::new(
                placements.clone(),
                TxPower::ZeroDbm,
                MacKind::tdma(),
                routing,
            );
            cfg.faults.push(NodeFault {
                node: failed,
                at: half,
            });
            let out = simulate_averaged(
                &cfg,
                ChannelParams::default(),
                opts.t_sim,
                opts.seed,
                opts.runs,
            )
            .expect("valid config");
            let label = if failed == 0 { "0 (hub)" } else { "2 (ankle)" };
            println!(
                "{}\t{}\t{:.2}\t{:.2}\t{:+.2}",
                routing.label(),
                label,
                out.pdr_percent(),
                healthy.pdr_percent(),
                out.pdr_percent() - healthy.pdr_percent()
            );
        }
    }
    println!("\n# the mesh loses a relay; the star can lose its spine.");

    // Scenario-scripted crash/recover: unlike the permanent NodeFault
    // above, a windowed outage lets the node rejoin — the bench shows how
    // much of the loss a recovery claws back as the window shrinks.
    let t = opts.t_sim.as_secs_f64();
    println!("\n# E8b: wrist outage windows (crash at t/4, recover after a fraction of the run)");
    println!("routing\twindow_pct\tpdr_pct\tdelta_vs_healthy_pp");
    for routing in [Routing::Star { coordinator: 0 }, Routing::mesh()] {
        let run = |scenario: FaultScenario| {
            let mut cfg = NetworkConfig::new(
                placements.clone(),
                TxPower::ZeroDbm,
                MacKind::tdma(),
                routing,
            );
            cfg.scenario = scenario;
            simulate_averaged(
                &cfg,
                ChannelParams::default(),
                opts.t_sim,
                opts.seed,
                opts.runs,
            )
            .expect("valid config")
        };
        let healthy = run(FaultScenario::nominal());
        for window_pct in [25.0, 50.0, 75.0] {
            let mut scenario = FaultScenario::named("wrist window");
            scenario.outages.push(SiteOutage {
                site: 5, // l-wrist
                window: Window::from_secs(t / 4.0, t / 4.0 + t * window_pct / 100.0),
            });
            let out = run(scenario);
            println!(
                "{}\t{:.0}\t{:.2}\t{:+.2}",
                routing.label(),
                window_pct,
                out.pdr_percent(),
                out.pdr_percent() - healthy.pdr_percent()
            );
        }
    }
    println!("\n# shorter windows recover more: crash/recover is strictly gentler than death.");
}
