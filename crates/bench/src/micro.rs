//! A minimal microbenchmark runner on `std::time`.
//!
//! The workspace builds offline, so instead of `criterion` the
//! `benches/` harnesses (all `harness = false`) use this runner: warm up
//! once, then repeat the closure until a wall-clock target is met, and
//! print per-iteration mean and minimum. Set `HI_BENCH_QUICK=1` to run
//! each benchmark only a handful of times (smoke-test mode for CI).

use std::time::{Duration, Instant};

/// Drives and reports a group of microbenchmarks.
#[derive(Debug)]
pub struct Runner {
    group: String,
    min_iters: u32,
    max_iters: u32,
    target: Duration,
}

impl Runner {
    /// A runner with the default measurement budget (≥10 iterations,
    /// ~300 ms per benchmark), or the quick budget if `HI_BENCH_QUICK`
    /// is set in the environment.
    pub fn new(group: &str) -> Self {
        let quick = std::env::var_os("HI_BENCH_QUICK").is_some();
        let (min_iters, target) = if quick {
            (2, Duration::ZERO)
        } else {
            (10, Duration::from_millis(300))
        };
        println!("group {group}");
        Self {
            group: group.to_string(),
            min_iters,
            max_iters: 100_000,
            target,
        }
    }

    /// Measures `f`, printing one summary line.
    ///
    /// The closure's return value is passed through [`std::hint::black_box`]
    /// so the computation cannot be optimized away.
    pub fn bench<T>(&self, name: &str, mut f: impl FnMut() -> T) {
        // One untimed warm-up call absorbs lazy setup (allocations, page
        // faults) that would skew the first sample.
        std::hint::black_box(f());
        let mut samples: Vec<Duration> = Vec::new();
        let started = Instant::now();
        while (samples.len() as u32) < self.min_iters
            || (started.elapsed() < self.target && (samples.len() as u32) < self.max_iters)
        {
            let t0 = Instant::now();
            std::hint::black_box(f());
            samples.push(t0.elapsed());
        }
        let iters = samples.len() as u32;
        let total: Duration = samples.iter().sum();
        let mean = total / iters;
        let min = samples.iter().min().copied().unwrap_or_default();
        println!(
            "  {}/{name:<32} {iters:>6} iters  mean {mean:>12.3?}  min {min:>12.3?}",
            self.group
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_at_least_min_iters() {
        let mut calls = 0u32;
        let r = Runner {
            group: "t".into(),
            min_iters: 5,
            max_iters: 5,
            target: Duration::ZERO,
        };
        r.bench("count", || calls += 1);
        // min_iters timed calls plus the warm-up.
        assert_eq!(calls, 6);
    }

    #[test]
    fn bench_respects_max_iters_cap() {
        let mut calls = 0u32;
        let r = Runner {
            group: "t".into(),
            min_iters: 1,
            max_iters: 3,
            target: Duration::from_secs(60),
        };
        r.bench("capped", || calls += 1);
        assert_eq!(calls, 4);
    }
}
