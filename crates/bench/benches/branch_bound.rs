//! Microbenchmark B2: exact MILP solves — knapsacks and the paper's
//! relaxed problem `P̃` (the model Algorithm 1 queries every iteration),
//! including the cut ladder that drives the whole exploration.

use hi_bench::micro::Runner;
use hi_core::{MilpEncoding, TopologyConstraints};
use hi_milp::{LinExpr, Model, Sense};
use hi_net::AppParams;

fn knapsack(n: usize) -> Model {
    let mut m = Model::new();
    let mut weight = LinExpr::new();
    let mut value = LinExpr::new();
    for i in 0..n {
        let x = m.add_binary(&format!("x{i}"));
        weight.add_term(x, ((i * 7 + 3) % 10 + 1) as f64);
        value.add_term(x, ((i * 11 + 5) % 13 + 1) as f64);
    }
    m.add_constraint(weight, Sense::Le, (2 * n) as f64);
    m.maximize(value);
    m
}

fn main() {
    let runner = Runner::new("branch_bound");
    for n in [10usize, 20, 30] {
        let model = knapsack(n);
        runner.bench(&format!("knapsack/{n}"), || {
            model.solve().expect("solves").objective()
        });
    }
    // One MILP query of Algorithm 1 (paper problem, no cuts yet).
    let enc = MilpEncoding::new(&TopologyConstraints::paper_default(), &AppParams::default());
    runner.bench("paper_p_tilde_pool", || enc.solve_pool().expect("solves").1);
    // The full cut ladder (a complete RunMILP sequence).
    runner.bench("paper_cut_ladder", || {
        let mut enc =
            MilpEncoding::new(&TopologyConstraints::paper_default(), &AppParams::default());
        let mut levels = 0u32;
        loop {
            let (_, p) = enc.solve_pool().expect("solves");
            match p {
                Some(p) => {
                    levels += 1;
                    enc.add_power_cut(p);
                }
                None => break,
            }
        }
        levels
    });
}
