//! The work-stealing thread pool and its order-preserving `par_map`.
//!
//! All synchronization goes through [`crate::sync`], so this exact source
//! also runs under `hi-check`'s model checker (`--features shadow`),
//! which explores its park/unpark, steal and completion-latch protocols
//! across thread interleavings.

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::Ordering;
use std::sync::Arc;

use crate::cancel::CancelToken;
use crate::sync::{thread::JoinHandle, AtomicBool, AtomicU64, Condvar, Mutex};

type Job = Box<dyn FnOnce() + Send + 'static>;

/// State shared between the pool handle and its workers.
struct Shared {
    /// One deque per worker. The owner pops from the front; thieves steal
    /// from the back, so a stolen task is the one the owner would have
    /// reached last.
    queues: Vec<Mutex<VecDeque<Job>>>,
    /// Overflow queue for work not pinned to any worker.
    injector: Mutex<VecDeque<Job>>,
    /// Wake-up generation: bumped (under the lock) on every submission so
    /// a parked worker can tell "nothing new" from "new work arrived
    /// between my scan and my sleep".
    generation: Mutex<u64>,
    wakeup: Condvar,
    shutdown: AtomicBool,
    /// Scheduling counters. Always on: four relaxed atomic increments per
    /// task/park are noise next to a queue-lock round trip, and keeping
    /// them unconditional means observability can never perturb results.
    stats: StatCells,
}

struct StatCells {
    tasks_run: AtomicU64,
    steals: AtomicU64,
    parks: AtomicU64,
    unparks: AtomicU64,
}

impl StatCells {
    fn new() -> Self {
        Self {
            tasks_run: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            parks: AtomicU64::new(0),
            unparks: AtomicU64::new(0),
        }
    }
}

/// A point-in-time copy of the pool's scheduling counters.
///
/// `steals` counts jobs a worker took from a sibling's deque; `parks` and
/// `unparks` count condvar sleep/wake episodes of idle workers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Jobs executed across all workers.
    pub tasks_run: u64,
    /// Jobs taken from another worker's deque.
    pub steals: u64,
    /// Times a worker went to sleep on the wakeup condvar.
    pub parks: u64,
    /// Times a parked worker was woken and resumed scanning.
    pub unparks: u64,
}

impl Shared {
    fn new(threads: usize) -> Self {
        Self {
            queues: (0..threads)
                .map(|id| Mutex::named(VecDeque::new(), &format!("pool.deque{id}")))
                .collect(),
            injector: Mutex::named(VecDeque::new(), "pool.injector"),
            generation: Mutex::named(0, "pool.generation"),
            wakeup: Condvar::new(),
            shutdown: AtomicBool::new(false),
            stats: StatCells::new(),
        }
    }

    /// Finds the next runnable job for worker `id`: own deque first, then
    /// the injector, then steal round-robin from the siblings.
    fn next_job(&self, id: usize) -> Option<Job> {
        if let Some(job) = self.queues[id].lock().pop_front() {
            return Some(job);
        }
        if let Some(job) = self.injector.lock().pop_front() {
            return Some(job);
        }
        let n = self.queues.len();
        for k in 1..n {
            let victim = (id + k) % n;
            if let Some(job) = self.queues[victim].lock().pop_back() {
                self.stats.steals.fetch_add(1, Ordering::Relaxed);
                return Some(job);
            }
        }
        None
    }

    /// Bumps the generation and wakes every parked worker.
    fn notify_new_work(&self) {
        let mut generation = self.generation.lock();
        *generation = generation.wrapping_add(1);
        self.wakeup.notify_all();
    }
}

fn worker_loop(id: usize, shared: Arc<Shared>) {
    loop {
        // Remember the generation *before* scanning: if a submission lands
        // after the scan, its bump makes the parking predicate below fail
        // and we rescan instead of sleeping through the wake-up.
        let observed = *shared.generation.lock();
        if let Some(job) = shared.next_job(id) {
            job();
            shared.stats.tasks_run.fetch_add(1, Ordering::Relaxed);
            continue;
        }
        if shared.shutdown.load(Ordering::Acquire) {
            break;
        }
        // Park while nothing has changed. The predicate re-runs on every
        // wakeup — including spurious ones — so waking early can only
        // cost a rescan, never correctness.
        let mut parked = false;
        let guard = shared.generation.lock();
        drop(shared.wakeup.wait_while(guard, |generation| {
            let stay = *generation == observed && !shared.shutdown.load(Ordering::Acquire);
            if stay && !parked {
                parked = true;
                shared.stats.parks.fetch_add(1, Ordering::Relaxed);
            }
            stay
        }));
        if parked {
            shared.stats.unparks.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Completion tracking for one `par_map` call.
struct MapState<R> {
    /// Slot *i* receives the result of input *i*; order is therefore fixed
    /// by construction, not by scheduling.
    results: Vec<Mutex<Option<R>>>,
    remaining: Mutex<usize>,
    done: Condvar,
    /// First panic payload observed in any worker; re-raised by the caller.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

impl<R> MapState<R> {
    fn new(len: usize) -> Self {
        Self {
            results: (0..len).map(|_| Mutex::new(None)).collect(),
            remaining: Mutex::named(len, "map.remaining"),
            done: Condvar::new(),
            panic: Mutex::named(None, "map.panic"),
        }
    }

    fn finish_one(&self) {
        let mut remaining = self.remaining.lock();
        *remaining -= 1;
        if *remaining == 0 {
            self.done.notify_all();
        }
    }
}

/// A fixed-size work-stealing thread pool.
///
/// Workers live as long as the pool; dropping the pool joins them. Tasks
/// are distributed round-robin over per-worker deques and rebalance
/// through stealing, so an unlucky distribution (a few expensive tasks on
/// one worker) cannot serialize a batch.
///
/// # Panics in tasks
///
/// A panicking task does not kill its worker: the payload is captured and
/// [`resume_unwind`]ed on the thread that called [`par_map`], after the
/// whole batch has settled — exactly like the sequential loop it replaces.
///
/// # Nesting
///
/// `par_map` blocks the calling thread; calling it from *inside* a pool
/// task would park a worker and can deadlock a single-threaded pool. The
/// engines in this workspace never nest pools.
///
/// [`par_map`]: Self::par_map
pub struct ThreadPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("threads", &self.workers.len())
            .finish()
    }
}

impl ThreadPool {
    /// Spawns a pool with `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared::new(threads));
        let workers = (0..threads)
            .map(|id| {
                let shared = Arc::clone(&shared);
                crate::sync::thread::spawn_named(format!("hi-exec-{id}"), move || {
                    worker_loop(id, shared)
                })
            })
            .collect();
        Self { shared, workers }
    }

    /// A pool sized by [`crate::default_threads`].
    pub fn with_default_threads() -> Self {
        Self::new(crate::default_threads())
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// A snapshot of the scheduling counters accumulated so far.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            tasks_run: self.shared.stats.tasks_run.load(Ordering::Relaxed),
            steals: self.shared.stats.steals.load(Ordering::Relaxed),
            parks: self.shared.stats.parks.load(Ordering::Relaxed),
            unparks: self.shared.stats.unparks.load(Ordering::Relaxed),
        }
    }

    /// Applies `f` to every item, in parallel, returning the results **in
    /// input order**.
    ///
    /// # Panics
    ///
    /// If a task panics, the first captured payload is re-raised here
    /// after all tasks of the batch have settled.
    pub fn par_map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send + 'static,
        R: Send + 'static,
        F: Fn(T) -> R + Send + Sync + 'static,
    {
        self.run_map(items, None, f)
            .into_iter()
            .map(|slot| slot.expect("no task was cancelled"))
            .collect()
    }

    /// [`par_map`](Self::par_map) with cooperative cancellation: tasks
    /// that have not *started* when `cancel` fires are skipped and yield
    /// `None`; tasks already running complete normally. Completed slots
    /// keep their input-order position.
    pub fn par_map_cancellable<T, R, F>(
        &self,
        items: Vec<T>,
        cancel: CancelToken,
        f: F,
    ) -> Vec<Option<R>>
    where
        T: Send + 'static,
        R: Send + 'static,
        F: Fn(T) -> R + Send + Sync + 'static,
    {
        self.run_map(items, Some(cancel), f)
    }

    /// [`par_map_cancellable`](Self::par_map_cancellable) hardened for
    /// untrusted tasks: a panicking task degrades to a per-slot
    /// [`EvalError`](crate::EvalError) instead of aborting the batch, so
    /// one broken point cannot take down a whole exploration level.
    /// `None` still marks slots skipped after cancellation.
    pub fn par_map_catching<T, R, F>(
        &self,
        items: Vec<T>,
        cancel: CancelToken,
        f: F,
    ) -> Vec<Option<Result<R, crate::EvalError>>>
    where
        T: Send + 'static,
        R: Send + 'static,
        F: Fn(T) -> Result<R, crate::EvalError> + Send + Sync + 'static,
    {
        self.run_map(items, Some(cancel), move |item| {
            match catch_unwind(AssertUnwindSafe(|| f(item))) {
                Ok(result) => result,
                Err(payload) => Err(crate::EvalError::from_panic(payload.as_ref())),
            }
        })
    }

    fn run_map<T, R, F>(&self, items: Vec<T>, cancel: Option<CancelToken>, f: F) -> Vec<Option<R>>
    where
        T: Send + 'static,
        R: Send + 'static,
        F: Fn(T) -> R + Send + Sync + 'static,
    {
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        let state = Arc::new(MapState::new(n));
        let f = Arc::new(f);
        let threads = self.threads();
        for (index, item) in items.into_iter().enumerate() {
            let state = Arc::clone(&state);
            let f = Arc::clone(&f);
            let cancel = cancel.clone();
            let job: Job = Box::new(move || {
                let skipped = cancel.as_ref().is_some_and(CancelToken::is_cancelled);
                if !skipped {
                    match catch_unwind(AssertUnwindSafe(|| f(item))) {
                        Ok(result) => {
                            *state.results[index].lock() = Some(result);
                        }
                        Err(payload) => {
                            let mut first = state.panic.lock();
                            if first.is_none() {
                                *first = Some(payload);
                            }
                        }
                    }
                }
                // Cancelled and panicked tasks still count down: the latch
                // counts dispatched tasks, not successful ones.
                state.finish_one();
            });
            self.shared.queues[index % threads].lock().push_back(job);
        }
        self.shared.notify_new_work();

        let remaining = state.remaining.lock();
        drop(state.done.wait_while(remaining, |remaining| *remaining > 0));

        if let Some(payload) = state.panic.lock().take() {
            resume_unwind(payload);
        }
        // Workers may still hold their `Arc` clones for an instant after
        // the final `finish_one`, so take the slots through ours instead
        // of unwrapping the `Arc`.
        state
            .results
            .iter()
            .map(|slot| slot.lock().take())
            .collect()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.notify_new_work();
        for worker in self.workers.drain(..) {
            // A worker that panicked outside a task is a bug, but joining
            // its corpse should not abort the caller's shutdown.
            let _ = worker.join();
        }
    }
}

#[cfg(all(test, not(feature = "shadow")))]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_input_order() {
        let pool = ThreadPool::new(4);
        let items: Vec<u64> = (0..257).collect();
        let out = pool.par_map(items.clone(), |x| x * 3 + 1);
        let expected: Vec<u64> = items.iter().map(|x| x * 3 + 1).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn single_thread_pool_completes() {
        let pool = ThreadPool::new(1);
        let out = pool.par_map(vec![1u32, 2, 3], |x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.threads(), 1);
        assert_eq!(pool.par_map(vec![7u8], |x| x), vec![7]);
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let pool = ThreadPool::new(2);
        let out: Vec<u8> = pool.par_map(Vec::<u8>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn pool_survives_repeated_batches() {
        let pool = ThreadPool::new(3);
        for round in 0..10u64 {
            let out = pool.par_map((0..50).collect::<Vec<u64>>(), move |x| x + round);
            assert_eq!(out[49], 49 + round);
        }
    }

    #[test]
    fn panic_propagates_to_caller() {
        let pool = ThreadPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.par_map((0..16u32).collect::<Vec<_>>(), |x| {
                assert!(x != 7, "task 7 exploded");
                x
            })
        }));
        assert!(result.is_err());
        // The pool is still usable after a panicking batch.
        assert_eq!(pool.par_map(vec![1u32], |x| x + 1), vec![2]);
    }

    #[test]
    fn cancelled_tasks_are_skipped() {
        let pool = ThreadPool::new(2);
        let token = CancelToken::new();
        token.cancel();
        let out = pool.par_map_cancellable((0..8u32).collect::<Vec<_>>(), token, |x| x);
        assert_eq!(out.len(), 8);
        assert!(out.iter().all(Option::is_none));
    }

    #[test]
    fn uncancelled_token_changes_nothing() {
        let pool = ThreadPool::new(2);
        let out =
            pool.par_map_cancellable((0..8u32).collect::<Vec<_>>(), CancelToken::new(), |x| x * 2);
        let got: Vec<u32> = out.into_iter().map(Option::unwrap).collect();
        assert_eq!(got, (0..8).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn stats_count_tasks_and_idle_episodes() {
        let pool = ThreadPool::new(2);
        let before = pool.stats();
        assert_eq!(before.tasks_run, 0);
        let _ = pool.par_map((0..64u32).collect::<Vec<_>>(), |x| x);
        // Let workers drain their queues and park again.
        let mut after = pool.stats();
        for _ in 0..200 {
            if after.tasks_run == 64 && after.parks >= 2 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
            after = pool.stats();
        }
        assert_eq!(after.tasks_run, 64);
        // Two workers were spawned with no work: both parked at least once.
        assert!(after.parks >= 2, "parks = {}", after.parks);
        assert!(after.unparks <= after.parks);
    }

    #[test]
    fn stealing_rebalances_skewed_batches() {
        // Worker 0 gets all the slow tasks by round-robin; the batch can
        // only finish quickly if siblings steal them.
        let pool = ThreadPool::new(4);
        let items: Vec<u32> = (0..16).collect();
        let out = pool.par_map(items, |x| {
            if x % 4 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            x
        });
        assert_eq!(out, (0..16).collect::<Vec<_>>());
    }
}
