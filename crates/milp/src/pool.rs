//! Enumeration of all optimal solutions ("solution pool").
//!
//! Algorithm 1 of the paper expects the MILP solver to return *the set* of
//! configurations attaining the current optimum (`RunMILP` returns
//! `S = {(ν*_j, χ*_j)}`). CPLEX offers this through its solution pool; we
//! reproduce it by repeatedly re-solving with a *no-good cut* that excludes
//! each found binary assignment:
//!
//! ```text
//! sum_{b: b*=1} (1 - b)  +  sum_{b: b*=0} b  >=  1
//! ```
//!
//! Enumeration stops when the objective degrades beyond `obj_tol` or the
//! model becomes infeasible, so the returned pool is exactly the set of
//! optimal binary assignments (up to `max_solutions`).

use crate::{LinExpr, Model, Sense, Solution, SolveError, SolveStatus, VarId, VarType};

/// Options controlling [`enumerate_optima`].
#[derive(Debug, Clone, Copy)]
pub struct PoolOptions {
    /// Stop after this many solutions (safety valve; pools in this
    /// workspace are small but adversarial models could explode).
    pub max_solutions: usize,
    /// Two objective values within this tolerance count as "equal optimum".
    pub obj_tol: f64,
}

impl Default for PoolOptions {
    fn default() -> Self {
        Self {
            max_solutions: 256,
            obj_tol: 1e-6,
        }
    }
}

/// All optimal solutions of `model`, distinguished by their **binary**
/// variable assignments.
///
/// Two optima that differ only in continuous/general-integer variables are
/// considered the same pool entry (the paper's design vector is fully
/// binary, so this is the natural equivalence).
///
/// Returns an empty vector if the model is infeasible or unbounded.
///
/// # Errors
///
/// Propagates solver failures from [`Model::solve`].
///
/// # Examples
///
/// ```
/// use hi_milp::{pool, Model, Sense};
///
/// # fn main() -> Result<(), hi_milp::SolveError> {
/// let mut m = Model::new();
/// let a = m.add_binary("a");
/// let b = m.add_binary("b");
/// m.add_constraint(a + b, Sense::Eq, 1.0); // pick exactly one
/// m.minimize(a + b);                       // both choices cost 1
/// let pool = pool::enumerate_optima(&m, pool::PoolOptions::default())?;
/// assert_eq!(pool.len(), 2);
/// # Ok(())
/// # }
/// ```
pub fn enumerate_optima(model: &Model, options: PoolOptions) -> Result<Vec<Solution>, SolveError> {
    let binaries: Vec<VarId> = model
        .vars
        .iter()
        .enumerate()
        .filter(|(_, v)| v.ty == VarType::Binary)
        .map(|(i, _)| VarId(i))
        .collect();

    let mut work = model.clone();
    let mut pool = Vec::new();
    let mut best: Option<f64> = None;

    while pool.len() < options.max_solutions {
        let sol = work.solve()?;
        if sol.status() != SolveStatus::Optimal {
            break;
        }
        match best {
            None => {
                best = Some(sol.objective());
                // Pin the objective to the optimal level: subsequent solves
                // become feasibility probes and branch & bound can prune
                // any node whose relaxation already degrades the optimum.
                if let Some((dir, expr)) = &model.objective {
                    let expr = expr.clone();
                    match dir {
                        crate::Objective::Minimize => {
                            work.add_constraint(expr, Sense::Le, sol.objective() + options.obj_tol)
                        }
                        crate::Objective::Maximize => {
                            work.add_constraint(expr, Sense::Ge, sol.objective() - options.obj_tol)
                        }
                    }
                }
            }
            Some(b) => {
                let degraded = match model.objective {
                    Some((crate::Objective::Minimize, _)) => sol.objective() > b + options.obj_tol,
                    Some((crate::Objective::Maximize, _)) => sol.objective() < b - options.obj_tol,
                    None => true,
                };
                if degraded {
                    break;
                }
            }
        }
        if binaries.is_empty() {
            // No binary structure to enumerate over: the unique LP/MIP
            // optimum is the whole pool.
            pool.push(sol);
            break;
        }
        // Build the no-good cut before moving `sol` into the pool.
        let mut cut = LinExpr::new();
        let mut ones = 0.0;
        for &b in &binaries {
            if sol.int_value(b) == 1 {
                cut.add_term(b, -1.0);
                ones += 1.0;
            } else {
                cut.add_term(b, 1.0);
            }
        }
        // sum_{b*=0} b + sum_{b*=1} (1 - b) >= 1   <=>   cut >= 1 - ones
        work.add_constraint(cut, Sense::Ge, 1.0 - ones);
        pool.push(sol);
    }
    Ok(pool)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Model;

    #[test]
    fn symmetric_optima_all_found() {
        // choose exactly 2 of 4 equal-cost binaries: C(4,2) = 6 optima.
        let mut m = Model::new();
        let vars: Vec<_> = (0..4).map(|i| m.add_binary(&format!("b{i}"))).collect();
        m.add_constraint(LinExpr::sum(vars.clone()), Sense::Eq, 2.0);
        m.minimize(LinExpr::sum(vars));
        let pool = enumerate_optima(&m, PoolOptions::default()).unwrap();
        assert_eq!(pool.len(), 6);
        // All entries distinct.
        let mut keys: Vec<Vec<i64>> = pool
            .iter()
            .map(|s| (0..4).map(|i| s.int_value(VarId(i))).collect())
            .collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), 6);
    }

    #[test]
    fn unique_optimum_single_entry() {
        let mut m = Model::new();
        let a = m.add_binary("a");
        let b = m.add_binary("b");
        m.add_constraint(a + b, Sense::Ge, 1.0);
        m.minimize(a * 1.0 + b * 2.0);
        let pool = enumerate_optima(&m, PoolOptions::default()).unwrap();
        assert_eq!(pool.len(), 1);
        assert_eq!(pool[0].int_value(a), 1);
        assert_eq!(pool[0].int_value(b), 0);
    }

    #[test]
    fn infeasible_gives_empty_pool() {
        let mut m = Model::new();
        let a = m.add_binary("a");
        m.add_constraint(a * 1.0, Sense::Ge, 2.0);
        m.minimize(a * 1.0);
        let pool = enumerate_optima(&m, PoolOptions::default()).unwrap();
        assert!(pool.is_empty());
    }

    #[test]
    fn max_solutions_caps_enumeration() {
        let mut m = Model::new();
        let vars: Vec<_> = (0..6).map(|i| m.add_binary(&format!("b{i}"))).collect();
        m.add_constraint(LinExpr::sum(vars.clone()), Sense::Eq, 3.0);
        m.minimize(LinExpr::constant_expr(0.0));
        let pool = enumerate_optima(
            &m,
            PoolOptions {
                max_solutions: 5,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(pool.len(), 5);
    }

    #[test]
    fn maximization_pool() {
        // maximize a + b with a + b <= 1: two optima (1,0) and (0,1).
        let mut m = Model::new();
        let a = m.add_binary("a");
        let b = m.add_binary("b");
        m.add_constraint(a + b, Sense::Le, 1.0);
        m.maximize(a + b);
        let pool = enumerate_optima(&m, PoolOptions::default()).unwrap();
        assert_eq!(pool.len(), 2);
    }

    #[test]
    fn pool_respects_objective_gap() {
        // optima at cost 1 (two ways), next best cost 2 — pool must stop at 2 entries.
        let mut m = Model::new();
        let a = m.add_binary("a");
        let b = m.add_binary("b");
        let c = m.add_binary("c");
        m.add_constraint(a + b + c, Sense::Ge, 1.0);
        m.minimize(a * 1.0 + b * 1.0 + c * 2.0);
        let pool = enumerate_optima(&m, PoolOptions::default()).unwrap();
        assert_eq!(pool.len(), 2);
        for s in &pool {
            assert!((s.objective() - 1.0).abs() < 1e-6);
        }
    }
}
