//! Property-based invariants of the network simulator: for *any* valid
//! configuration and seed, the metrics must be internally consistent.

use hi_channel::{BodyLocation, ChannelParams};
use hi_des::SimDuration;
use hi_net::{
    simulate_stochastic, FloodMode, MacKind, NetworkConfig, Routing, TxPower,
};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct AnyConfig {
    cfg: NetworkConfig,
    seed: u64,
}

fn config_strategy() -> impl Strategy<Value = AnyConfig> {
    let placements = prop::sample::subsequence(
        vec![
            BodyLocation::LeftHip,
            BodyLocation::RightHip,
            BodyLocation::LeftAnkle,
            BodyLocation::RightAnkle,
            BodyLocation::LeftWrist,
            BodyLocation::RightWrist,
            BodyLocation::LeftUpperArm,
            BodyLocation::Head,
            BodyLocation::Back,
        ],
        1..5,
    )
    .prop_map(|mut extra| {
        let mut v = vec![BodyLocation::Chest];
        v.append(&mut extra);
        v
    });
    (
        placements,
        0usize..3,
        0u8..4,
        prop::bool::ANY,
        0u8..3,
        any::<u64>(),
    )
        .prop_map(|(placements, power, mac_kind, mesh, hops, seed)| {
            let power = TxPower::ALL[power];
            let mac = match mac_kind {
                0 => MacKind::csma(),
                1 => MacKind::tdma(),
                2 => MacKind::slotted_aloha(),
                _ => MacKind::hybrid(),
            };
            let routing = if mesh {
                Routing::Mesh {
                    max_hops: hops + 1,
                    flood_mode: FloodMode::DedupPerNode,
                }
            } else {
                Routing::Star { coordinator: 0 }
            };
            AnyConfig {
                cfg: NetworkConfig::new(placements, power, mac, routing),
                seed,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn metrics_are_internally_consistent(any in config_strategy()) {
        let out = simulate_stochastic(
            &any.cfg,
            ChannelParams::default(),
            SimDuration::from_secs(5.0),
            any.seed,
        ).expect("generated configs are valid");

        let n = any.cfg.num_nodes();
        // PDR bounds (eq. 6-7).
        prop_assert!((0.0..=1.0).contains(&out.pdr), "pdr {}", out.pdr);
        prop_assert_eq!(out.node_pdr.len(), n);
        for &p in &out.node_pdr {
            prop_assert!((0.0..=1.0 + 1e-12).contains(&p));
        }
        let mean = out.node_pdr.iter().sum::<f64>() / n as f64;
        prop_assert!((mean - out.pdr).abs() < 1e-9, "eq. 7 violated");

        // Power: every node draws at least the baseline; the reported
        // worst equals the max over lifetime-relevant nodes.
        prop_assert_eq!(out.node_power_mw.len(), n);
        for &p in &out.node_power_mw {
            prop_assert!(p >= 0.1 - 1e-12, "below baseline: {p}");
        }
        let coordinator = any.cfg.coordinator();
        let worst = out
            .node_power_mw
            .iter()
            .enumerate()
            .filter(|(i, _)| Some(*i) != coordinator)
            .map(|(_, &p)| p)
            .fold(0.0f64, f64::max);
        prop_assert!((worst - out.max_power_mw).abs() < 1e-12);

        // Lifetime consistent with the worst power (eq. 4).
        let expected_days = any.cfg.battery_j / (out.max_power_mw * 1e-3) / 86_400.0;
        prop_assert!((out.nlt_days - expected_days).abs() < 1e-6);

        // Traffic accounting.
        let c = &out.counts;
        prop_assert!(c.deliveries <= c.transmissions * (n as u64 - 1));
        prop_assert!(c.generated > 0);
        // Latency sane.
        prop_assert!(out.latency.mean_ms >= 0.0);
        prop_assert!(out.latency.max_ms >= out.latency.mean_ms || out.latency.samples == 0);
        if out.pdr > 0.0 {
            prop_assert!(out.latency.samples > 0);
        }
    }

    #[test]
    fn simulation_is_deterministic(any in config_strategy()) {
        let run = || simulate_stochastic(
            &any.cfg,
            ChannelParams::default(),
            SimDuration::from_secs(3.0),
            any.seed,
        ).expect("valid");
        prop_assert_eq!(run(), run());
    }

    #[test]
    fn longer_simulation_does_not_break_invariants(any in config_strategy()) {
        // Guard against time-dependent state corruption (e.g. queue leaks):
        // PDR of a longer run stays within [0, 1] and power stays finite.
        let out = simulate_stochastic(
            &any.cfg,
            ChannelParams::default(),
            SimDuration::from_secs(20.0),
            any.seed,
        ).expect("valid");
        prop_assert!((0.0..=1.0).contains(&out.pdr));
        prop_assert!(out.max_power_mw.is_finite() && out.max_power_mw < 100.0);
    }
}
