//! Durable cache segments: the fleet pool's point→outcome maps spilled
//! to disk, so a restarted daemon re-serves previously simulated points
//! with `simulations 0` instead of paying for them again.
//!
//! One file per evaluator stream, `cache-<key>.seg` in the daemon's
//! cache directory (`key` is the profile's evaluation fingerprint):
//!
//! ```text
//! hi-serve cache segment v1
//! key 00000afc1d2e3f40
//! entry 89 1a2b3c4d
//! n 0000000000000216 3fee666666666666 4056ab851eb851ec 3ff3ae147ae147ae 4010cccccccccccd
//! entry 174 5e6f7a8b
//! r 0000000000000317 1 <nominal quad> <scenario-0 quad>
//! ```
//!
//! An evaluation travels as four bit-exact floats — PDR, lifetime,
//! power, latency. Entries written before latency joined the
//! [`Evaluation`] carry three; they still parse (latency zero), but the
//! canonical rendered form is always four-wide.
//!
//! Each `entry` line frames one payload by byte length and CRC-32-IEEE
//! over exactly the payload bytes — the PR-5 record discipline applied
//! to an *append-only* file. Appends are the settle path (cheap, one
//! `fsync` per batch); every `compact_threshold` appends the file is
//! rewritten through the atomic `.tmp`/fsync/`.prev` rotation so it
//! never grows without bound.
//!
//! Loading distinguishes two failure modes precisely:
//!
//! * **Torn tail** — the file ends mid-line or mid-payload, exactly what
//!   a crash during an append leaves behind. The intact prefix is kept,
//!   the tail truncated away, and a note reported. Data loss is bounded
//!   by one settle batch, and those points simply re-simulate.
//! * **Bit rot** — a structurally complete entry whose CRC disagrees,
//!   framing violated mid-file, or a foreign/garbled header. No clean
//!   truncation explains these, so the whole file is quarantined (renamed
//!   `*.quarantine`) with a byte-precise diagnostic and the stream starts
//!   cold rather than trusting any of it.
//!
//! Only `Ok` outcomes are persisted. Cached *errors* are deterministic
//! and cheap to rediscover; persisting them would resurrect stale
//! diagnostics across daemon upgrades.

use std::collections::{BTreeMap, BTreeSet};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use hi_core::{crc32_ieee, ChaosPolicy, DesignPoint, Evaluation, RobustEvaluation};

const HEADER: &str = "hi-serve cache segment v1";

/// One persistable cache outcome: a nominal evaluation or a robust
/// scorecard, tagged with its design point.
#[derive(Debug, Clone, PartialEq)]
pub enum CachedOutcome {
    /// A fault-free evaluation from a [`SharedSimEvaluator`]
    /// [hi_core::SharedSimEvaluator] stream.
    Nominal {
        /// The evaluated design point.
        point: DesignPoint,
        /// Its nominal evaluation.
        eval: Evaluation,
    },
    /// A full fault-suite scorecard from a [`RobustEvaluator`]
    /// [hi_core::RobustEvaluator] stream.
    Robust {
        /// The evaluated design point.
        point: DesignPoint,
        /// Its per-scenario scorecard.
        card: RobustEvaluation,
    },
}

impl CachedOutcome {
    /// The design point this outcome belongs to.
    pub fn point(&self) -> DesignPoint {
        match self {
            CachedOutcome::Nominal { point, .. } | CachedOutcome::Robust { point, .. } => *point,
        }
    }

    /// The point's fingerprint — the dedup key within one segment.
    pub fn fingerprint(&self) -> u64 {
        self.point().fingerprint()
    }
}

fn push_quad(out: &mut String, eval: &Evaluation) {
    out.push_str(&format!(
        " {:016x} {:016x} {:016x} {:016x}",
        eval.pdr.to_bits(),
        eval.nlt_days.to_bits(),
        eval.power_mw.to_bits(),
        eval.latency_ms.to_bits()
    ));
}

/// Renders one outcome's payload line (no framing, no newline). Floats
/// travel as exact bit patterns, so a loaded entry seeds the cache with
/// values bit-identical to the simulation that produced them.
pub fn render_entry(outcome: &CachedOutcome) -> String {
    match outcome {
        CachedOutcome::Nominal { point, eval } => {
            let mut s = format!("n {:016x}", point.fingerprint());
            push_quad(&mut s, eval);
            s
        }
        CachedOutcome::Robust { point, card } => {
            let mut s = format!("r {:016x} {}", point.fingerprint(), card.scenarios.len());
            push_quad(&mut s, &card.nominal);
            for scenario in &card.scenarios {
                push_quad(&mut s, scenario);
            }
            s
        }
    }
}

/// Frames a payload as `entry <len> <crc32>\n<payload>\n` bytes.
pub fn frame_entry(payload: &str) -> Vec<u8> {
    let mut out = format!(
        "entry {} {:08x}\n",
        payload.len(),
        crc32_ieee(payload.as_bytes())
    )
    .into_bytes();
    out.extend_from_slice(payload.as_bytes());
    out.push(b'\n');
    out
}

/// Reads one evaluation's hex-bit floats. `legacy` entries (written
/// before latency joined the [`Evaluation`]) carry three values and
/// load with latency zero; current entries carry four.
fn take_eval<'a>(
    tokens: &mut impl Iterator<Item = &'a str>,
    what: &str,
    legacy: bool,
) -> Result<Evaluation, String> {
    let width = if legacy { 3 } else { 4 };
    let mut bits = [0u64; 4];
    for slot in bits.iter_mut().take(width) {
        let token = tokens.next().ok_or(format!("{what}: missing field"))?;
        *slot = u64::from_str_radix(token, 16).map_err(|_| format!("{what}: bad hex `{token}`"))?;
    }
    Ok(Evaluation {
        pdr: f64::from_bits(bits[0]),
        nlt_days: f64::from_bits(bits[1]),
        power_mw: f64::from_bits(bits[2]),
        latency_ms: f64::from_bits(bits[3]),
    })
}

/// Parses one payload line back into a [`CachedOutcome`].
pub fn parse_entry(payload: &str) -> Result<CachedOutcome, String> {
    let mut tokens = payload.split_ascii_whitespace();
    let kind = tokens.next().ok_or("empty entry payload".to_string())?;
    let fp_token = tokens
        .next()
        .ok_or("missing point fingerprint".to_string())?;
    let fp = u64::from_str_radix(fp_token, 16)
        .map_err(|_| format!("bad point fingerprint `{fp_token}`"))?;
    let point = DesignPoint::from_fingerprint(fp).ok_or(format!(
        "fingerprint {fp:016x} encodes no valid design point"
    ))?;
    // Width detection: an entry is current (four floats per evaluation)
    // exactly when its token count says so; anything else parses at the
    // legacy three-float width, whose own missing-field/trailing checks
    // produce the right diagnostics for malformed counts.
    let total_tokens = payload.split_ascii_whitespace().count();
    let outcome = match kind {
        "n" => CachedOutcome::Nominal {
            point,
            eval: take_eval(&mut tokens, "nominal evaluation", total_tokens != 2 + 4)?,
        },
        "r" => {
            let count: usize = tokens
                .next()
                .ok_or("missing scenario count".to_string())?
                .parse()
                .map_err(|_| "bad scenario count".to_string())?;
            let legacy =
                total_tokens != count.saturating_add(1).saturating_mul(4).saturating_add(3);
            // A megabyte-scale count with no payload behind it must fail
            // on the missing fields, not pre-allocate.
            let nominal = take_eval(&mut tokens, "nominal evaluation", legacy)?;
            let mut scenarios = Vec::with_capacity(count.min(1024));
            for i in 0..count {
                scenarios.push(take_eval(&mut tokens, &format!("scenario {i}"), legacy)?);
            }
            CachedOutcome::Robust {
                point,
                card: RobustEvaluation { nominal, scenarios },
            }
        }
        other => return Err(format!("unknown entry kind `{other}`")),
    };
    if tokens.next().is_some() {
        return Err("trailing fields after entry payload".to_string());
    }
    Ok(outcome)
}

/// The outcome of parsing one segment file.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentLoad {
    /// The stream key stated in the file's `key` line.
    pub key: u64,
    /// Intact entries, in file (append) order.
    pub entries: Vec<CachedOutcome>,
    /// `Some(note)` if a torn tail was found after the intact prefix —
    /// the caller should truncate or rewrite the file before appending.
    pub torn: Option<String>,
}

/// Reads one newline-terminated line starting at `pos`. Returns the line
/// (newline excluded), the position after it, and whether the terminator
/// was present (`false` means the file ends mid-line — a torn tail).
fn read_line(bytes: &[u8], pos: usize) -> (&[u8], usize, bool) {
    match bytes[pos..].iter().position(|&b| b == b'\n') {
        Some(nl) => (&bytes[pos..pos + nl], pos + nl + 1, true),
        None => (&bytes[pos..], bytes.len(), false),
    }
}

/// A framed file decoded down to its raw entry payloads: the shared
/// middle layer between [`parse_segment`] and the Pareto front store's
/// parser (`crate::front`), which differ only in header and payload
/// grammar.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct RawFramedLoad {
    /// The stream key stated in the file's `key` line.
    pub key: u64,
    /// Intact payloads in append order, each with the byte offset of its
    /// `entry` header line (for diagnostics).
    pub payloads: Vec<(String, usize)>,
    /// `Some(note)` if a torn tail followed the intact prefix.
    pub torn: Option<String>,
}

/// Parses the shared framed-file discipline (header line, key line,
/// `entry <len> <crc32>` frames), separating torn tails from bit rot.
/// `header` is the exact expected first line; `label` names the format
/// in not-ours diagnostics.
pub(crate) fn parse_framed(
    bytes: &[u8],
    header_line: &str,
    label: &str,
) -> Result<RawFramedLoad, String> {
    // Header line. A short unterminated prefix of the expected header is
    // a torn first write; anything else that differs is not our file.
    let (line, mut pos, terminated) = read_line(bytes, 0);
    if !terminated {
        return if header_line.as_bytes().starts_with(line) {
            Ok(RawFramedLoad {
                key: 0,
                payloads: Vec::new(),
                torn: Some("file torn inside the header line".to_string()),
            })
        } else {
            Err(format!("not a {label} (garbled header)"))
        };
    }
    if line != header_line.as_bytes() {
        return Err(format!(
            "not a {label}: expected `{header_line}`, found {} header bytes",
            line.len()
        ));
    }
    // Key line.
    let (line, after_key, terminated) = read_line(bytes, pos);
    if !terminated {
        return if line.is_empty() || b"key ".starts_with(&line[..line.len().min(4)]) {
            Ok(RawFramedLoad {
                key: 0,
                payloads: Vec::new(),
                torn: Some("file torn inside the key line".to_string()),
            })
        } else {
            Err(format!("garbled key line at byte {pos}"))
        };
    }
    let key = std::str::from_utf8(line)
        .ok()
        .and_then(|l| l.strip_prefix("key "))
        .and_then(|h| u64::from_str_radix(h, 16).ok())
        .ok_or(format!("malformed key line at byte {pos}"))?;
    pos = after_key;

    let mut payloads: Vec<(String, usize)> = Vec::new();
    let mut index = 0usize;
    while pos < bytes.len() {
        let entry_at = pos;
        let (line, after_header, terminated) = read_line(bytes, pos);
        if !terminated {
            return Ok(RawFramedLoad {
                key,
                payloads,
                torn: Some(format!(
                    "entry {index} header torn at byte {entry_at} (end of file mid-line)"
                )),
            });
        }
        let header = std::str::from_utf8(line)
            .map_err(|_| format!("entry {index} header at byte {entry_at} is not UTF-8"))?;
        let mut fields = header.split_ascii_whitespace();
        let (len, stated_crc) = match (
            fields.next(),
            fields.next().and_then(|t| t.parse::<usize>().ok()),
            fields.next().and_then(|t| u32::from_str_radix(t, 16).ok()),
            fields.next(),
        ) {
            (Some("entry"), Some(len), Some(crc), None) => (len, crc),
            _ => {
                return Err(format!(
                    "malformed entry {index} header at byte {entry_at}: `{header}`"
                ))
            }
        };
        let payload_at = after_header;
        if payload_at + len >= bytes.len() {
            // Payload (or its terminating newline) runs past the end of
            // the file: the append died partway through.
            return Ok(RawFramedLoad {
                key,
                payloads,
                torn: Some(format!(
                    "entry {index} payload torn at byte {payload_at} \
                     ({len} bytes declared, {} present)",
                    bytes.len().saturating_sub(payload_at)
                )),
            });
        }
        let payload = &bytes[payload_at..payload_at + len];
        if bytes[payload_at + len] != b'\n' {
            return Err(format!(
                "entry {index} framing violated at byte {}: \
                 declared length {len} does not end at a newline",
                payload_at + len
            ));
        }
        let actual = crc32_ieee(payload);
        if actual != stated_crc {
            return Err(format!(
                "entry {index} crc32 mismatch at byte {payload_at}: \
                 header says {stated_crc:08x}, payload hashes to {actual:08x} (bit rot?)"
            ));
        }
        let payload = std::str::from_utf8(payload)
            .map_err(|_| format!("entry {index} payload at byte {payload_at} is not UTF-8"))?;
        payloads.push((payload.to_string(), entry_at));
        pos = payload_at + len + 1;
        index += 1;
    }
    Ok(RawFramedLoad {
        key,
        payloads,
        torn: None,
    })
}

/// Parses a segment file, separating torn tails from bit rot.
///
/// `Ok` means the intact prefix is trustworthy: `entries` carries it,
/// and [`SegmentLoad::torn`] notes a truncated tail if the file ends
/// mid-entry (the crash-during-append signature). `Err` means bit rot —
/// CRC mismatch, framing violated mid-file, or a garbled header — with a
/// byte-precise diagnostic; the caller should quarantine the file.
pub fn parse_segment(bytes: &[u8]) -> Result<SegmentLoad, String> {
    let raw = parse_framed(bytes, HEADER, "cache segment")?;
    let mut entries = Vec::with_capacity(raw.payloads.len());
    for (index, (payload, entry_at)) in raw.payloads.iter().enumerate() {
        entries.push(
            parse_entry(payload).map_err(|e| format!("entry {index} at byte {entry_at}: {e}"))?,
        );
    }
    Ok(SegmentLoad {
        key: raw.key,
        entries,
        torn: raw.torn,
    })
}

/// Renders a complete segment file (header, key line, framed entries).
pub fn render_segment(key: u64, entries: &[CachedOutcome]) -> Vec<u8> {
    let mut out = format!("{HEADER}\nkey {key:016x}\n").into_bytes();
    for outcome in entries {
        out.extend_from_slice(&frame_entry(&render_entry(outcome)));
    }
    out
}

/// The segment path for stream `key` under `cache_dir`.
pub fn segment_path(cache_dir: &Path, key: u64) -> PathBuf {
    cache_dir.join(format!("cache-{key:016x}.seg"))
}

/// What one [`SegmentStore::settle`] call did, for logging and metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SettleOutcome {
    /// Entries newly persisted (appended or folded into a compaction).
    pub persisted: usize,
    /// True if the whole file was compacted (atomic rewrite).
    pub compacted: bool,
    /// True if chaos injection silently dropped this batch.
    pub chaos_dropped: bool,
    /// True if chaos injection tore the batch's final entry.
    pub chaos_torn: bool,
}

#[derive(Debug, Default)]
struct KeyState {
    /// Point fingerprints known to be durably on disk.
    persisted: BTreeSet<u64>,
    /// Appends since the file was last fully rewritten.
    appends_since_compact: u32,
    /// Settle-batch counter: the chaos roll index, so injection is a
    /// pure function of `(key, batch)` and replays identically.
    sequence: u32,
    /// Set after a chaos-torn append: the file tail is garbage, so the
    /// next settle must compact (rewrite) instead of appending after it.
    needs_compact: bool,
}

/// The durable side of the fleet pool: one append-mostly segment file
/// per evaluator stream, loaded and verified at daemon start.
///
/// Writes happen on the scheduler thread (jobs run serially), reads at
/// startup; the mutex is for the occasional STATS reader.
#[derive(Debug)]
pub struct SegmentStore {
    dir: PathBuf,
    compact_threshold: u32,
    chaos: Option<ChaosPolicy>,
    state: Mutex<BTreeMap<u64, KeyState>>,
    /// Entries recovered at open, waiting for their stream's first
    /// evaluator build to claim them.
    preloaded: Mutex<BTreeMap<u64, Vec<CachedOutcome>>>,
    loaded: AtomicU64,
    persisted_total: AtomicU64,
    compactions: AtomicU64,
    quarantined: AtomicU64,
}

/// Cumulative [`SegmentStore`] counters, mirrored into the
/// `serve.cache.*` wellknown metrics and printed by `STATS`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SegmentStats {
    /// Entries loaded back from disk at open.
    pub loaded: u64,
    /// Entries written durably (appends + compaction folds).
    pub persisted: u64,
    /// Full-file compactions performed.
    pub compactions: u64,
    /// Files quarantined for bit rot at open.
    pub quarantined: u64,
}

impl SegmentStore {
    /// Opens (creating if needed) the segment directory, loading and
    /// verifying every segment in it. Returns the store plus
    /// human-readable notes for anything abnormal: torn tails truncated,
    /// bit-rotted files quarantined. Notes are diagnostics, not errors —
    /// the daemon always starts; damaged streams just start cold.
    pub fn open(
        dir: PathBuf,
        compact_threshold: u32,
        chaos: Option<ChaosPolicy>,
    ) -> std::io::Result<(Self, Vec<String>)> {
        std::fs::create_dir_all(&dir)?;
        let store = Self {
            dir,
            compact_threshold: compact_threshold.max(1),
            chaos,
            state: Mutex::new(BTreeMap::new()),
            preloaded: Mutex::new(BTreeMap::new()),
            loaded: AtomicU64::new(0),
            persisted_total: AtomicU64::new(0),
            compactions: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
        };
        let notes = store.load_existing()?;
        Ok((store, notes))
    }

    /// The directory segments live in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn load_existing(&self) -> std::io::Result<Vec<String>> {
        let mut notes = Vec::new();
        let mut keys: Vec<u64> = std::fs::read_dir(&self.dir)?
            .filter_map(|e| e.ok())
            .filter_map(|e| {
                let name = e.file_name();
                let name = name.to_str()?;
                u64::from_str_radix(name.strip_prefix("cache-")?.strip_suffix(".seg")?, 16).ok()
            })
            .collect();
        keys.sort_unstable();
        keys.dedup();
        for key in keys {
            let path = segment_path(&self.dir, key);
            let bytes = match std::fs::read(&path) {
                Ok(b) => b,
                Err(e) => {
                    notes.push(format!("{}: unreadable: {e}", path.display()));
                    continue;
                }
            };
            match parse_segment(&bytes) {
                Ok(load) => {
                    if !load.entries.is_empty() && load.key != key {
                        // The file claims to belong to a different
                        // stream — misplaced or renamed by hand. Seeding
                        // it under this key would serve wrong physics.
                        self.quarantine(
                            &path,
                            &mut notes,
                            &format!(
                                "key line says {:016x} but the file is named for {key:016x}",
                                load.key
                            ),
                        );
                        continue;
                    }
                    if let Some(torn) = &load.torn {
                        // Repair in place: rewrite the intact prefix
                        // atomically so future appends land on a clean
                        // tail.
                        let repaired = render_segment(key, &load.entries);
                        write_atomic_bytes(&path, &repaired)?;
                        notes.push(format!(
                            "{}: torn tail truncated ({torn}); {} entries recovered",
                            path.display(),
                            load.entries.len()
                        ));
                    }
                    hi_trace::counter(
                        hi_trace::wellknown::SERVE_CACHE_LOADED,
                        load.entries.len() as u64,
                    );
                    self.loaded
                        .fetch_add(load.entries.len() as u64, Ordering::Relaxed);
                    let mut state = self.state.lock().expect("segment store poisoned");
                    let entry = state.entry(key).or_default();
                    entry
                        .persisted
                        .extend(load.entries.iter().map(CachedOutcome::fingerprint));
                    drop(state);
                    if !load.entries.is_empty() {
                        self.preloaded
                            .lock()
                            .expect("segment store poisoned")
                            .insert(key, load.entries);
                    }
                }
                Err(diag) => self.quarantine(&path, &mut notes, &diag),
            }
        }
        Ok(notes)
    }

    fn quarantine(&self, path: &Path, notes: &mut Vec<String>, diag: &str) {
        let mut target = path.as_os_str().to_os_string();
        target.push(".quarantine");
        let verdict = match std::fs::rename(path, &target) {
            Ok(()) => format!("quarantined as {}", PathBuf::from(&target).display()),
            Err(e) => format!("quarantine rename failed ({e}); file left in place, ignored"),
        };
        hi_trace::counter(hi_trace::wellknown::SERVE_CACHE_QUARANTINED, 1);
        self.quarantined.fetch_add(1, Ordering::Relaxed);
        notes.push(format!(
            "{}: bit rot: {diag}; {verdict}; stream starts cold",
            path.display()
        ));
    }

    /// Claims the entries recovered for `key` at open, if any. Intended
    /// for the stream's evaluator-build closure: seed each returned
    /// outcome before the first job touches the evaluator.
    pub fn hydrate(&self, key: u64) -> Vec<CachedOutcome> {
        self.preloaded
            .lock()
            .expect("segment store poisoned")
            .remove(&key)
            .unwrap_or_default()
    }

    /// Persists whatever `export` holds that disk does not: the settle
    /// path, called after each job completes with the stream's full
    /// `Ok`-outcome snapshot. Entries already persisted are skipped;
    /// fresh ones are appended (one fsync per batch), and every
    /// `compact_threshold` appends the file is rewritten atomically
    /// instead, folding the tail.
    pub fn settle(&self, key: u64, export: &[CachedOutcome]) -> std::io::Result<SettleOutcome> {
        let mut state = self.state.lock().expect("segment store poisoned");
        let entry = state.entry(key).or_default();
        let fresh: Vec<&CachedOutcome> = export
            .iter()
            .filter(|o| !entry.persisted.contains(&o.fingerprint()))
            .collect();
        if fresh.is_empty() {
            return Ok(SettleOutcome::default());
        }
        let sequence = entry.sequence;
        entry.sequence += 1;
        if let Some(chaos) = &self.chaos {
            if chaos.drops_segment(key, sequence) {
                // The batch silently never reaches disk — the crash-consistency
                // story must absorb it. Not marked persisted, so a later
                // batch (different roll) retries these points.
                hi_trace::counter(hi_trace::wellknown::EXEC_CHAOS_EVENTS, 1);
                return Ok(SettleOutcome {
                    chaos_dropped: true,
                    ..SettleOutcome::default()
                });
            }
        }
        let path = segment_path(&self.dir, key);
        let compact =
            entry.needs_compact || entry.appends_since_compact + 1 >= self.compact_threshold;
        if compact {
            write_atomic_bytes(&path, &render_segment(key, export))?;
            entry.persisted = export.iter().map(CachedOutcome::fingerprint).collect();
            entry.appends_since_compact = 0;
            entry.needs_compact = false;
            hi_trace::counter(hi_trace::wellknown::SERVE_CACHE_COMPACTIONS, 1);
            hi_trace::counter(
                hi_trace::wellknown::SERVE_CACHE_PERSISTED,
                fresh.len() as u64,
            );
            self.compactions.fetch_add(1, Ordering::Relaxed);
            self.persisted_total
                .fetch_add(fresh.len() as u64, Ordering::Relaxed);
            return Ok(SettleOutcome {
                persisted: fresh.len(),
                compacted: true,
                ..SettleOutcome::default()
            });
        }
        let mut batch = Vec::new();
        let mut complete = Vec::new();
        for outcome in &fresh {
            batch.extend_from_slice(&frame_entry(&render_entry(outcome)));
            complete.push(outcome.fingerprint());
        }
        let mut chaos_torn = false;
        if let Some(chaos) = &self.chaos {
            if chaos.tears_segment(key, sequence) {
                // Simulate a crash mid-append: only a prefix of the last
                // frame reaches disk. The entry is not marked persisted,
                // and the next settle compacts over the garbage tail —
                // exactly what restart recovery would do.
                let last = frame_entry(&render_entry(fresh[fresh.len() - 1]));
                batch.truncate(batch.len() - last.len() + last.len() / 2);
                complete.pop();
                chaos_torn = true;
                hi_trace::counter(hi_trace::wellknown::EXEC_CHAOS_EVENTS, 1);
            }
        }
        {
            let mut file = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)?;
            if file.metadata()?.len() == 0 {
                file.write_all(format!("{HEADER}\nkey {key:016x}\n").as_bytes())?;
            }
            file.write_all(&batch)?;
            file.sync_all()?;
        }
        let persisted = complete.len();
        entry.persisted.extend(complete);
        entry.appends_since_compact += 1;
        entry.needs_compact = chaos_torn;
        hi_trace::counter(hi_trace::wellknown::SERVE_CACHE_PERSISTED, persisted as u64);
        self.persisted_total
            .fetch_add(persisted as u64, Ordering::Relaxed);
        Ok(SettleOutcome {
            persisted,
            chaos_torn,
            ..SettleOutcome::default()
        })
    }

    /// Drain-time flush: compacts `key`'s segment unconditionally from
    /// the stream's full snapshot, leaving one clean, tear-free file for
    /// the next process. Called by SHUTDOWN after the queue drains.
    pub fn flush(&self, key: u64, export: &[CachedOutcome]) -> std::io::Result<()> {
        if export.is_empty() {
            return Ok(());
        }
        let mut state = self.state.lock().expect("segment store poisoned");
        let entry = state.entry(key).or_default();
        let path = segment_path(&self.dir, key);
        // Skip the rewrite only if disk provably holds everything and no
        // chaos tear is pending.
        let clean = !entry.needs_compact
            && path.exists()
            && export
                .iter()
                .all(|o| entry.persisted.contains(&o.fingerprint()));
        if clean {
            return Ok(());
        }
        write_atomic_bytes(&path, &render_segment(key, export))?;
        entry.persisted = export.iter().map(CachedOutcome::fingerprint).collect();
        entry.appends_since_compact = 0;
        entry.needs_compact = false;
        hi_trace::counter(hi_trace::wellknown::SERVE_CACHE_COMPACTIONS, 1);
        self.compactions.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Cumulative counters since open.
    pub fn stats(&self) -> SegmentStats {
        SegmentStats {
            loaded: self.loaded.load(Ordering::Relaxed),
            persisted: self.persisted_total.load(Ordering::Relaxed),
            compactions: self.compactions.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
        }
    }

    /// Number of entries known durable for `key` (tests and STATS).
    pub fn persisted_len(&self, key: u64) -> usize {
        self.state
            .lock()
            .expect("segment store poisoned")
            .get(&key)
            .map_or(0, |s| s.persisted.len())
    }
}

/// The PR-5 atomic-write discipline for raw bytes: stage to `.tmp`,
/// fsync, rotate the old file to `.prev`, rename into place.
pub(crate) fn write_atomic_bytes(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let mut tmp = path.as_os_str().to_os_string();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
    }
    if path.exists() {
        let mut prev = path.as_os_str().to_os_string();
        prev.push(".prev");
        let _ = std::fs::rename(path, PathBuf::from(prev));
    }
    std::fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hi_core::{MacChoice, Placement, RouteChoice};
    use hi_net::TxPower;

    fn point(i: u8) -> DesignPoint {
        DesignPoint {
            placement: Placement::from_indices([0, 1, 3, (5 + i % 3) as usize]),
            tx_power: TxPower::ZeroDbm,
            mac: MacChoice::Tdma,
            routing: if i.is_multiple_of(2) {
                RouteChoice::Star
            } else {
                RouteChoice::Mesh
            },
        }
    }

    fn ev(x: f64) -> Evaluation {
        Evaluation {
            pdr: 0.9 + x,
            nlt_days: 100.0 * x,
            power_mw: 1.0 / (x + 1.0),
            latency_ms: 3.0 + x,
        }
    }

    fn nominal(i: u8) -> CachedOutcome {
        CachedOutcome::Nominal {
            point: point(i),
            eval: ev(f64::from(i)),
        }
    }

    fn robust(i: u8) -> CachedOutcome {
        CachedOutcome::Robust {
            point: point(i),
            card: RobustEvaluation {
                nominal: ev(f64::from(i)),
                scenarios: vec![ev(0.25), ev(0.5)],
            },
        }
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("hi-seg-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn entries_roundtrip_bit_for_bit() {
        for outcome in [nominal(0), robust(1)] {
            let parsed = parse_entry(&render_entry(&outcome)).unwrap();
            assert_eq!(parsed, outcome);
        }
        // NaN and infinities survive via bit patterns.
        let weird = CachedOutcome::Nominal {
            point: point(2),
            eval: Evaluation {
                pdr: f64::NAN,
                nlt_days: f64::INFINITY,
                power_mw: -0.0,
                latency_ms: f64::MIN_POSITIVE,
            },
        };
        match parse_entry(&render_entry(&weird)).unwrap() {
            CachedOutcome::Nominal { eval, .. } => {
                assert!(eval.pdr.is_nan());
                assert_eq!(eval.nlt_days, f64::INFINITY);
                assert_eq!(eval.power_mw.to_bits(), (-0.0f64).to_bits());
            }
            other => panic!("wrong kind: {other:?}"),
        }
    }

    #[test]
    fn pre_latency_entries_parse_with_latency_zeroed() {
        // Entries written by a pre-latency daemon carry three floats per
        // evaluation; they must still hydrate (latency zero), and the
        // width detection must not misread a current robust entry.
        let legacy_n = "n 0000000000000216 3fee666666666666 4056ab851eb851ec 3ff3ae147ae147ae";
        match parse_entry(legacy_n).unwrap() {
            CachedOutcome::Nominal { eval, .. } => {
                assert_eq!(eval.pdr, f64::from_bits(0x3fee666666666666));
                assert_eq!(eval.latency_ms.to_bits(), 0.0f64.to_bits());
            }
            other => panic!("wrong kind: {other:?}"),
        }
        let legacy_r = "r 0000000000000216 1 \
                        3fee666666666666 4056ab851eb851ec 3ff3ae147ae147ae \
                        3fe0000000000000 4040000000000000 3ff8000000000000";
        match parse_entry(legacy_r).unwrap() {
            CachedOutcome::Robust { card, .. } => {
                assert_eq!(card.scenarios.len(), 1);
                assert_eq!(card.nominal.latency_ms.to_bits(), 0.0f64.to_bits());
                assert_eq!(card.scenarios[0].latency_ms.to_bits(), 0.0f64.to_bits());
            }
            other => panic!("wrong kind: {other:?}"),
        }
    }

    #[test]
    fn segments_roundtrip_and_report_their_key() {
        let entries = vec![nominal(0), robust(1), nominal(2)];
        let bytes = render_segment(0xabc, &entries);
        let load = parse_segment(&bytes).unwrap();
        assert_eq!(load.key, 0xabc);
        assert_eq!(load.entries, entries);
        assert_eq!(load.torn, None);
    }

    #[test]
    fn torn_tails_keep_the_intact_prefix() {
        let entries = vec![nominal(0), robust(1)];
        let bytes = render_segment(7, &entries);
        let first_entry_end = render_segment(7, &entries[..1]).len();
        // Any truncation point strictly inside the second entry must
        // recover exactly the first.
        for cut in (first_entry_end + 1)..bytes.len() {
            let load = parse_segment(&bytes[..cut]).unwrap();
            assert_eq!(load.entries, entries[..1], "cut at {cut}");
            assert!(load.torn.is_some(), "cut at {cut}");
        }
        // Truncation at the exact boundary is indistinguishable from a
        // shorter (clean) file.
        let load = parse_segment(&bytes[..first_entry_end]).unwrap();
        assert_eq!(load.entries, entries[..1]);
        assert_eq!(load.torn, None);
    }

    #[test]
    fn payload_corruption_is_bit_rot_not_torn() {
        let bytes = render_segment(7, &[nominal(0), nominal(2)]);
        let text = String::from_utf8(bytes.clone()).unwrap();
        let payload_at = text.find("\nn ").unwrap() + 1;
        let mut rotted = bytes.clone();
        rotted[payload_at + 5] ^= 0x04;
        let err = parse_segment(&rotted).unwrap_err();
        assert!(err.contains("crc32 mismatch"), "{err}");
        // Framing violation mid-file (length that does not land on a
        // newline) is also bit rot.
        let mut bad_frame = text.clone();
        let at = bad_frame.find("entry ").unwrap();
        bad_frame.replace_range(at..at + 7, "entry 9");
        let err = parse_segment(bad_frame.as_bytes()).unwrap_err();
        assert!(
            err.contains("framing") || err.contains("crc32") || err.contains("malformed"),
            "{err}"
        );
    }

    #[test]
    fn store_settles_hydrates_and_recovers_across_reopen() {
        let dir = tmpdir("reopen");
        let key = 0x51;
        {
            let (store, notes) = SegmentStore::open(dir.clone(), 256, None).unwrap();
            assert!(notes.is_empty(), "{notes:?}");
            let out = store.settle(key, &[nominal(0), robust(1)]).unwrap();
            assert_eq!(out.persisted, 2);
            // Settling the same snapshot again is a no-op.
            let again = store.settle(key, &[nominal(0), robust(1)]).unwrap();
            assert_eq!(again.persisted, 0);
            // A grown snapshot appends only the delta.
            let grown = store
                .settle(key, &[nominal(0), robust(1), nominal(2)])
                .unwrap();
            assert_eq!(grown.persisted, 1);
            assert_eq!(store.persisted_len(key), 3);
        }
        let (store, notes) = SegmentStore::open(dir.clone(), 256, None).unwrap();
        assert!(notes.is_empty(), "{notes:?}");
        let recovered = store.hydrate(key);
        assert_eq!(recovered, vec![nominal(0), robust(1), nominal(2)]);
        // Hydrate drains: a second call returns nothing.
        assert!(store.hydrate(key).is_empty());
        assert_eq!(store.persisted_len(key), 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_files_are_repaired_and_rotted_files_quarantined_at_open() {
        let dir = tmpdir("repair");
        let torn_key = 0x60;
        let rotted_key = 0x61;
        let bytes = render_segment(torn_key, &[nominal(0), nominal(1)]);
        std::fs::write(segment_path(&dir, torn_key), &bytes[..bytes.len() - 3]).unwrap();
        let mut rotted = render_segment(rotted_key, &[nominal(2)]);
        let flip_at = rotted.len() - 10;
        rotted[flip_at] ^= 0x01;
        std::fs::write(segment_path(&dir, rotted_key), &rotted).unwrap();
        let (store, notes) = SegmentStore::open(dir.clone(), 256, None).unwrap();
        assert_eq!(notes.len(), 2, "{notes:?}");
        assert!(
            notes.iter().any(|n| n.contains("torn tail truncated")),
            "{notes:?}"
        );
        assert!(notes.iter().any(|n| n.contains("bit rot")), "{notes:?}");
        assert_eq!(store.hydrate(torn_key), vec![nominal(0)]);
        assert!(store.hydrate(rotted_key).is_empty());
        assert!(segment_path(&dir, rotted_key)
            .with_extension("seg.quarantine")
            .exists());
        // The repaired file parses clean on a third open.
        let repaired = std::fs::read(segment_path(&dir, torn_key)).unwrap();
        let load = parse_segment(&repaired).unwrap();
        assert_eq!(load.torn, None);
        assert_eq!(load.entries, vec![nominal(0)]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_folds_the_append_tail() {
        let dir = tmpdir("compact");
        let key = 0x70;
        let (store, _) = SegmentStore::open(dir.clone(), 2, None).unwrap();
        let mut snapshot = vec![nominal(0)];
        store.settle(key, &snapshot).unwrap();
        snapshot.push(nominal(1));
        // Second append hits the threshold: the file is rewritten whole.
        let out = store.settle(key, &snapshot).unwrap();
        assert!(out.compacted);
        snapshot.push(nominal(2));
        let out = store.settle(key, &snapshot).unwrap();
        assert!(!out.compacted);
        let bytes = std::fs::read(segment_path(&dir, key)).unwrap();
        let load = parse_segment(&bytes).unwrap();
        assert_eq!(load.entries.len(), 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn chaos_torn_append_recovers_via_forced_compaction() {
        let dir = tmpdir("chaos");
        let key = 0x80;
        // torn=1 tears every batch; drops off.
        let chaos = ChaosPolicy::parse("seed=5,torn=1").unwrap();
        let (store, _) = SegmentStore::open(dir.clone(), 256, Some(chaos)).unwrap();
        let out = store.settle(key, &[nominal(0)]).unwrap();
        assert!(out.chaos_torn);
        assert_eq!(out.persisted, 0);
        // The file now has a garbage tail; parse sees a torn entry.
        let bytes = std::fs::read(segment_path(&dir, key)).unwrap();
        let load = parse_segment(&bytes).unwrap();
        assert!(load.torn.is_some());
        // The next settle compacts over it (atomic rewrite is immune to
        // the append-tear injection), leaving a clean file.
        let out = store.settle(key, &[nominal(0), nominal(1)]).unwrap();
        assert!(out.compacted);
        assert_eq!(out.persisted, 2);
        let bytes = std::fs::read(segment_path(&dir, key)).unwrap();
        let load = parse_segment(&bytes).unwrap();
        assert_eq!(load.torn, None);
        assert_eq!(load.entries.len(), 2);
        // A fully dropped batch leaves no file at all for a fresh key.
        let dropping = ChaosPolicy::parse("seed=5,segdrop=1").unwrap();
        let (store2, _) = SegmentStore::open(tmpdir("chaos2"), 256, Some(dropping)).unwrap();
        let out = store2.settle(key, &[nominal(0)]).unwrap();
        assert!(out.chaos_dropped);
        assert!(!segment_path(store2.dir(), key).exists());
        std::fs::remove_dir_all(&dir).unwrap();
        std::fs::remove_dir_all(store2.dir()).unwrap();
    }

    #[test]
    fn flush_leaves_one_clean_file() {
        let dir = tmpdir("flush");
        let key = 0x90;
        let (store, _) = SegmentStore::open(dir.clone(), 256, None).unwrap();
        store.settle(key, &[nominal(0)]).unwrap();
        store.flush(key, &[nominal(0), nominal(1)]).unwrap();
        let load = parse_segment(&std::fs::read(segment_path(&dir, key)).unwrap()).unwrap();
        assert_eq!(load.entries.len(), 2);
        assert_eq!(load.torn, None);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn miskeyed_segment_files_are_quarantined() {
        let dir = tmpdir("miskey");
        // A file named for key 0xAA whose key line says 0xBB.
        std::fs::write(
            segment_path(&dir, 0xAA),
            render_segment(0xBB, &[nominal(0)]),
        )
        .unwrap();
        let (store, notes) = SegmentStore::open(dir.clone(), 256, None).unwrap();
        assert!(notes.iter().any(|n| n.contains("named for")), "{notes:?}");
        assert!(store.hydrate(0xAA).is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
