//! Corpus fuzz tests for the durable-cache segment format
//! (`parse_segment` / `parse_entry` / `render_segment`), in the same
//! idiom as `corpus_profiles.rs`.
//!
//! The segment parser's contract is stricter than "total": besides
//! never panicking on any byte soup, it must *classify* damage. A
//! prefix of a valid file (a crash mid-append) is **torn** — the intact
//! prefix loads and the tail is reported, because throwing away good
//! simulations over a torn tail would defeat the cache. Anything else —
//! a flipped bit under the CRC, garbled framing mid-file, a wrong
//! header — is **bit rot** and fails the whole file with a diagnostic,
//! because a file that lies once cannot be trusted twice.
//!
//! The committed seeds are real artifacts: `segment_warm.seg` was
//! written by an actual daemon run, and the torn/bit-rot variants are
//! byte-surgery on it (a truncated tail; one flipped payload bit).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;

use hi_core::{parse_fault_suite, ExploreCheckpoint};
use hi_serve::{
    frame_entry, parse_profiles, parse_segment, render_entry, render_segment, JobRecord,
};

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

fn corpus_bytes(name: &str) -> Vec<u8> {
    let path = corpus_dir().join(name);
    std::fs::read(&path)
        .unwrap_or_else(|e| panic!("corpus file {} unreadable: {e}", path.display()))
}

/// `parse_segment` must return — Ok or Err — on `bytes`, never panic.
fn parse_survives(context: &str, bytes: &[u8]) -> Result<hi_serve::SegmentLoad, String> {
    catch_unwind(AssertUnwindSafe(|| parse_segment(bytes)))
        .unwrap_or_else(|_| panic!("segment parser panicked on {context}"))
}

#[test]
fn the_wellformed_seed_parses_and_roundtrips() {
    let bytes = corpus_bytes("segment_warm.seg");
    let load = parse_segment(&bytes).expect("the committed warm segment is valid");
    assert!(load.torn.is_none(), "{:?}", load.torn);
    assert!(load.entries.len() >= 8, "suspiciously small seed");
    // Render-parse roundtrip is byte-identical: the seed really is in
    // canonical form, so compaction rewrites are stable.
    let rendered = render_segment(load.key, &load.entries);
    assert_eq!(rendered, bytes);
}

#[test]
fn the_torn_seed_keeps_its_intact_prefix() {
    let warm = parse_segment(&corpus_bytes("segment_warm.seg")).unwrap();
    let torn = parse_segment(&corpus_bytes("segment_torn.seg"))
        .expect("a torn tail is recoverable, not fatal");
    let note = torn.torn.expect("the tear must be reported");
    assert!(note.contains("torn"), "{note}");
    assert_eq!(torn.key, warm.key);
    assert_eq!(
        torn.entries.len(),
        warm.entries.len() - 1,
        "exactly the final, half-written entry is lost"
    );
    assert_eq!(torn.entries, warm.entries[..warm.entries.len() - 1]);
}

#[test]
fn the_bit_rot_seed_is_rejected_whole() {
    let err = parse_segment(&corpus_bytes("segment_bit_rot.seg"))
        .expect_err("a CRC mismatch mid-file is bit rot, not a tear");
    assert!(err.contains("crc"), "diagnostic must name the check: {err}");
}

#[test]
fn truncation_at_every_byte_never_panics_and_never_misloads() {
    let bytes = corpus_bytes("segment_warm.seg");
    let full = parse_segment(&bytes).unwrap();
    // Clean cut points: after the key line and after each framed entry.
    // A cut exactly there is indistinguishable from a complete shorter
    // file — the append-only format's one honest blind spot. Everywhere
    // else, a cut MUST be flagged torn.
    let mut boundaries = vec![];
    let mut edge = bytes
        .windows(1)
        .enumerate()
        .filter(|(_, w)| w == b"\n")
        .map(|(i, _)| i + 1)
        .nth(1)
        .expect("header and key lines exist");
    boundaries.push(edge);
    for entry in &full.entries {
        edge += frame_entry(&render_entry(entry)).len();
        boundaries.push(edge);
    }
    for cut in 0..bytes.len() {
        let load = parse_survives(&format!("truncation at byte {cut}"), &bytes[..cut]);
        if let Ok(load) = load {
            // Whatever survives a cut must be a *prefix* of the truth —
            // never a reordering, never an invented entry — and a cut
            // off a frame boundary must be flagged torn.
            assert!(load.entries.len() <= full.entries.len());
            assert_eq!(
                load.entries,
                full.entries[..load.entries.len()],
                "cut {cut}"
            );
            assert!(
                load.torn.is_some() || boundaries.contains(&cut),
                "silent data loss at cut {cut}"
            );
        }
    }
    // And the empty file is a torn (empty) segment, not an error: a
    // crash can land exactly between create and first write.
    let load = parse_segment(b"").unwrap();
    assert!(load.entries.is_empty());
}

#[test]
fn every_single_bit_flip_under_the_crc_is_caught() {
    let bytes = corpus_bytes("segment_warm.seg");
    let full = parse_segment(&bytes).unwrap();
    // CRC-32 detects every single-bit error, so flipping any one bit of
    // any payload byte must fail the file — exhaustively, not sampled.
    // Payload bytes are exactly the rendered entry lines.
    let mut covered = 0usize;
    let mut cursor = 0usize;
    for entry in &full.entries {
        let payload = render_entry(entry);
        let start = bytes[cursor..]
            .windows(payload.len())
            .position(|w| w == payload.as_bytes())
            .map(|p| p + cursor)
            .expect("payload bytes present verbatim in the file");
        for offset in 0..payload.len() {
            for bit in 0..8 {
                let mut mutated = bytes.clone();
                mutated[start + offset] ^= 1 << bit;
                let context = format!("bit {bit} of payload byte {offset}");
                assert!(
                    parse_survives(&context, &mutated).is_err(),
                    "undetected corruption: {context}"
                );
                covered += 1;
            }
        }
        cursor = start + payload.len();
    }
    assert!(covered >= 8 * 8 * 69, "flip sweep lost its coverage");
}

#[test]
fn megabyte_entries_error_without_panicking_or_preallocating() {
    let key = 0x42u64;
    let header = format!("hi-serve cache segment v1\nkey {key:016x}\n");

    // A megabyte of garbage with a *correct* CRC: framing passes, the
    // payload parser must still produce a typed error.
    let garbage = "z".repeat(1 << 20);
    let mut bytes = header.clone().into_bytes();
    bytes.extend_from_slice(&frame_entry(&garbage));
    let err = parse_survives("a megabyte garbage entry", &bytes).unwrap_err();
    assert!(err.contains("entry 0"), "diagnostic names the entry: {err}");

    // A robust entry declaring a billion scenarios but carrying none:
    // must fail on the missing fields, not allocate first.
    let mut bytes = header.clone().into_bytes();
    bytes.extend_from_slice(&frame_entry("r 00000000000002b0 1000000000 0 0 0"));
    let err = parse_survives("a scenario-count bomb", &bytes).unwrap_err();
    assert!(err.contains("missing field"), "{err}");

    // A declared entry length in the megabytes with only a few bytes
    // behind it is a torn tail (EOF inside the entry), kept recoverable.
    let mut bytes = header.into_bytes();
    bytes.extend_from_slice(b"entry 1048576 00000000\nshort");
    let load = parse_survives("a declared-length bomb", &bytes).unwrap();
    assert!(load.torn.is_some());
    assert!(load.entries.is_empty());
}

#[test]
fn crlf_segments_are_rejected_not_misread() {
    // The segment format is byte-framed LF; a CRLF transcription shifts
    // every offset, so it must be refused outright rather than partially
    // loaded (unlike the *line*-oriented profile format, which accepts
    // CRLF). A tool that "helpfully" converts line endings corrupts the
    // cache, and the parser must say so.
    let bytes = corpus_bytes("segment_warm.seg");
    let crlf: Vec<u8> = bytes
        .iter()
        .flat_map(|&b| {
            if b == b'\n' {
                vec![b'\r', b'\n']
            } else {
                vec![b]
            }
        })
        .collect();
    let verdict = parse_survives("a CRLF-converted segment", &crlf);
    match verdict {
        Err(_) => {}
        Ok(load) => assert!(
            load.entries.is_empty() && load.torn.is_some(),
            "a CRLF segment must not half-load: {load:?}"
        ),
    }
}

#[test]
fn segments_cross_feed_into_every_other_parser_as_typed_errors() {
    let segment = corpus_bytes("segment_warm.seg");
    let text = String::from_utf8(segment.clone()).expect("the seed is ASCII");

    // A segment fed to the text parsers: typed errors, no panics.
    let profile = catch_unwind(AssertUnwindSafe(|| parse_profiles(&text)))
        .expect("profile parser panicked on a segment");
    assert!(profile.is_err());
    let record = catch_unwind(AssertUnwindSafe(|| JobRecord::from_text(&text)))
        .expect("record parser panicked on a segment");
    assert!(record.is_err());
    let ck = catch_unwind(AssertUnwindSafe(|| ExploreCheckpoint::from_text(&text)))
        .expect("checkpoint parser panicked on a segment");
    assert!(ck.is_err());
    let suite = catch_unwind(AssertUnwindSafe(|| parse_fault_suite(&text)))
        .expect("suite parser panicked on a segment");
    assert!(suite.is_err());

    // And every *other* corpus format fed to the segment parser: a
    // checkpoint, a record, a profile and a fault suite all miss the
    // header and fail with the expected-header diagnostic.
    for name in [
        "profile_demo.profile",
        "record_done.rec",
        "record_torn.rec",
        "record_bit_rot.rec",
        "xfeed_checkpoint_v2.ck",
        "xfeed_suite_demo.suite",
    ] {
        let err = parse_survives(name, &corpus_bytes(name)).unwrap_err();
        assert!(err.contains("not a cache segment"), "{name}: {err}");
    }
}
