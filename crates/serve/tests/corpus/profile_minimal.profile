profile solo
