//! `hi-opt` command-line interface.
//!
//! ```text
//! hi-opt explore  --pdr-min 0.9 [--tsim 600] [--runs 3] [--seed 42] [--threads 8]
//! hi-opt explore  --pdr-min 0.9 --faults scenarios/demo.suite --robust worst
//! hi-opt explore  --pdr-min 0.9 --faults scenarios/demo.suite \
//!                 --engine robust-milp --gamma 2
//! hi-opt simulate --sites 0,1,3,5 --power 0 --mac tdma --routing mesh
//! hi-opt space
//! hi-opt lint
//! ```
//!
//! Every simulation-backed command takes `--threads <n>` and fans its
//! evaluations over the `hi-exec` pool; results are bit-identical for
//! every thread count. Failures on user-supplied inputs are typed
//! ([`CliError`]) and map to distinct exit codes so scripts can tell a
//! typo (2) from an unreadable file (3) from a malformed spec (4).

use std::path::Path;
use std::process::ExitCode;

use hi_opt::channel::{BodyLocation, ChannelParams};
use hi_opt::cli::{stop_notice, TraceFormat, TraceSession};
use hi_opt::des::SimDuration;
use hi_opt::lint::lint_faults;
use hi_opt::net::{
    average_outcomes, simulate_stochastic, MacKind, NetworkConfig, Routing, TxPower,
};
use hi_opt::{
    explore_par_observed, explore_tradeoff_par, ilp_heuristic_search, parse_fault_suite,
    robust_milp_search, supervision_spec, ChaosPolicy, CheckpointLoadError, DesignSpace,
    ExecContext, ExplorationOutcome, ExploreCheckpoint, ExploreError, ExploreOptions, FaultSuite,
    MilpEncoding, Problem, RetryPolicy, RobustEvaluator, RobustMode, RobustnessSpec, SimProtocol,
    SuiteParseError, SupervisedEvaluator, Supervisor, TopologyConstraints, ENGINE_ALGORITHM1,
    ENGINE_ILP_HEURISTIC, ENGINE_ROBUST_MILP,
};

const USAGE: &str = "\
hi-opt — optimized design of a Human Intranet network (DAC 2017)

USAGE:
    hi-opt explore  --pdr-min <0..1> [--tsim <secs>] [--runs <n>] [--seed <n>]
                    [--threads <n>] [--faults <file> [--robust <mode>]]
                    [--engine <algorithm1|robust-milp|ilp-heuristic>]
                    [--gamma <k>]
                    [--budget <sims>] [--retries <n>] [--max-events <n>]
                    [--chaos <spec>]
                    [--checkpoint <file> [--resume] [--checkpoint-every <k>]]
    hi-opt tradeoff [--floors <p1,p2,...>] [--tsim <secs>] [--runs <n>] [--seed <n>]
                    [--threads <n>] [--archive <dir>]
    hi-opt simulate --sites <i,j,...> --power <-20|-10|0> --mac <csma|tdma>
                    --routing <star|mesh> [--tsim <secs>] [--runs <n>] [--seed <n>]
                    [--threads <n>]
    hi-opt space
    hi-opt lint     [--seed <n>]
    hi-opt serve    --state <dir> [--listen <host:port>] [--stdio]
                    [--threads <n>] [--queue-cap <n>] [--retries <n>]
                    [--max-events <n>] [--cache-dir <dir>]
                    [--compact-every <n>] [--conn-timeout <secs>]
                    [--chaos <spec>]

COMMANDS:
    explore    run Algorithm 1: MILP-proposed candidates verified by
               discrete-event simulation; prints the lifetime-optimal
               configuration meeting the PDR floor
    tradeoff   sweep reliability floors and print the architecture ladder
               (default floors: 50,60,70,80,90,95,99%); with --archive
               <dir>, maintain a persistent Pareto archive over
               (power, PDR, latency) there — the first run sweeps and
               persists the front, later runs with the same physics
               answer from the archive with 0 fresh simulations
               (changing --tsim/--runs/--seed invalidates it)
    simulate   evaluate one explicit configuration
    space      describe the design space and its constraints
    lint       statically analyze the paper scenario: configuration space,
               MILP encoding, the full Algorithm-1 cut ladder, a sample
               event schedule, the workspace metric catalog (HL037), the
               execution supervision policy (HL038/HL039), the execution
               configuration (HL040), hi-check model lock accounting
               (HL041), the fleet demo profiles (HL042), the serve
               daemon defaults (HL043-HL045), the Pareto archive
               epsilons plus a cold-daemon FRONT query (HL046/HL047)
               and the Gamma-robustness specification (HL048/HL049);
               exits 1 on error-severity findings
    serve      run the fleet-optimization daemon: a job queue behind a
               line-oriented wire protocol (SUBMIT/STATUS/RESULT/WAIT/
               CANCEL/STATS/SHUTDOWN) on TCP and/or stdin/stdout; jobs
               persist crash-safely under --state and identical design
               points dedup across users through one shared evaluation
               cache (drive it with the `hi-serve-client` binary)

EXPLORE OPTIONS:
    --faults <file>      score every candidate across a fault-scenario
                         suite; feasibility means the PDR floor holds
                         under the chosen aggregation
    --robust <mode>      aggregation over nominal + scenarios: `nominal`,
                         `worst` (default with --faults) or `qNN`
                         (e.g. q25: the 25th-percentile scenario)
    --engine <name>      search engine: `algorithm1` (default — the
                         paper's cut ladder, every candidate simulated),
                         `robust-milp` (Gamma-robust counterpart: per-link
                         deviation bounds derived from --faults are priced
                         into the MILP by Bertsimas-Sim dualization, and
                         only the single witness optimum per level is
                         simulated) or `ilp-heuristic` (restriction and
                         repair: pin sites untouched by worst-case faults
                         to the nominal optimum, re-solve the robust
                         counterpart on the rest, free pins on
                         infeasibility)
    --gamma <k>          deviation budget Gamma for the robust engines:
                         the adversary may push up to <k> protected links
                         to their bounds at once (default 1; 0 or a
                         missing --faults degenerates to the nominal
                         engine with a note; linted HL048/HL049)
    --budget <sims>      stop after ~<sims> unique simulations and report
                         the best design found so far
    --retries <n>        attempts per evaluation (default 3); transient
                         failures are retried deterministically, permanent
                         failures and deadline trips are not
    --max-events <n>     logical deadline: fail any evaluation whose
                         replication dispatches more than <n> DES events
                         (a pure function of the seed — never wall clock)
    --chaos <spec>       inject deterministic engine faults, e.g.
                         `seed=1,panic=13,transient=3,drop=8` (1-in-N odds
                         keyed by (point, attempt)); a debug/test
                         instrument — lint rule HL039 warns elsewhere
    --checkpoint <file>  write the exploration state to <file> on exit
                         (crash-safely: staged, fsynced, renamed; the
                         previous state rotates to <file>.prev)
    --checkpoint-every <k>  also auto-checkpoint every <k> iterations, so
                         a crashed run loses at most <k> levels
    --resume             load --checkpoint <file> first and continue,
                         falling back to <file>.prev if the file is torn;
                         the resumed run is bit-identical to an
                         uninterrupted one

OBSERVABILITY OPTIONS (explore, tradeoff, simulate):
    --trace <file>        record a structured event trace (every engine:
                          milp, des/net, exec, algorithm1) and write it on
                          exit; stdout results stay byte-identical with
                          and without tracing, at any --threads
    --trace-format <fmt>  `jsonl` (default: one JSON event per line) or
                          `chrome` (a Chrome trace-event array, loadable
                          in Perfetto / chrome://tracing)
    --metrics             print a metrics summary table to stderr on exit
                          (also on budget/cancel stops)

SERVE OPTIONS:
    --state <dir>        job records, checkpoints and the bound-address
                         file live here; a restarted daemon resumes the
                         queue it finds (required)
    --listen <addr>      accept TCP connections on <addr> (`host:port`;
                         port 0 picks a free port); the actual address is
                         written to <dir>/addr
    --stdio              speak the protocol on stdin/stdout too; with no
                         --listen, EOF on stdin shuts the daemon down
    --queue-cap <n>      refuse submissions past <n> queued-or-running
                         jobs with `ERR busy` (default 64)
    --retries/--max-events  as for explore, applied to every job
    --cache-dir <dir>    durable evaluation-cache segment directory
                         (default <state>/cache); a restarted daemon
                         re-serves persisted evaluations with 0 fresh
                         simulations
    --compact-every <n>  appends tolerated per segment before it is
                         compacted in place (default 256; linted, HL044)
    --conn-timeout <s>   per-connection read/write timeout in seconds
                         (default 600; 0 disables)
    --chaos <spec>       deterministic fault injection, e.g.
                         `seed=1,segdrop=2,torn=2` (adds segment-drop
                         and torn-write injection to the panic/transient
                         knobs; debug instrument, linted HL039)
Profile files submitted over the protocol (`#` starts a comment):
    profile <id>                     start a user profile
    geometry <scale>                 body-geometry scale factor
    channel <dB>                     channel-matrix path-loss offset
    traffic <pkts/s> [bytes]         application traffic mix
    pdrmin <0..1>                    reliability floor
    engine <name>                    search engine: algorithm1, exhaustive,
                                     robust-milp or ilp-heuristic
    gamma <k>                        deviation budget (robust engines only)
    tsim/runs/seed <n>               simulation protocol knobs
    faults <file> [worst|nominal|qNN]  robust scoring over a fault suite

FAULT SUITE FILES (`#` starts a comment; times in seconds):
    scenario <name>                       start a named scenario
    outage <site> <from> <until|inf>      node crash/recover window
    blackout <a> <b> <from> <until|inf>   link blackout between two sites
    deplete <site> <at>                   battery death, never recovers
    interfere <from> <until|inf> <dB>     wideband interference burst
Loaded suites are linted (HL033+) before any simulation runs: windows
that never activate are errors; overlaps, past-horizon windows and
hub-disabling scenarios are warnings printed to stderr.

EXIT CODES:
    0  success
    1  lint findings of error severity (`hi-opt lint`)
    2  usage error (unknown/missing/ill-formed flags)
    3  I/O error (unreadable --faults or --checkpoint file)
    4  malformed spec (suite/checkpoint contents, suite lint errors)

`--threads <n>` sizes the deterministic evaluation pool (default: the
HI_EXEC_THREADS environment variable, else all cores). Any value yields
bit-identical results; 1 disables the pool entirely.

SITES (index = paper's n_i):
    0 chest  1 l-hip  2 r-hip  3 l-ankle  4 r-ankle
    5 l-wrist  6 r-wrist  7 l-arm  8 head  9 back
";

/// A failure on a user-supplied input, typed by what the user got wrong
/// so the process can exit with a distinct code for each.
enum CliError {
    /// Flag-level mistake: unknown command/option, missing or ill-formed
    /// value. Exits 2 and prints the usage banner.
    Usage(String),
    /// The OS refused an input file (missing, unreadable, unwritable).
    /// Exits 3.
    Io(String),
    /// An input file was read but its contents are malformed — a bad
    /// fault-suite line, a corrupt checkpoint, an error-severity suite
    /// lint finding. Exits 4.
    Spec(String),
}

impl From<String> for CliError {
    fn from(msg: String) -> Self {
        CliError::Usage(msg)
    }
}

impl From<&str> for CliError {
    fn from(msg: &str) -> Self {
        CliError::Usage(msg.to_owned())
    }
}

struct Common {
    t_sim: SimDuration,
    runs: u32,
    seed: u64,
    threads: usize,
    trace: Option<String>,
    trace_format: TraceFormat,
    metrics: bool,
}

impl Common {
    /// The one simulation protocol every evaluator of this invocation is
    /// built from, so `--tsim`/`--runs`/`--seed` cannot drift between the
    /// sequential path and the pool workers.
    fn protocol(&self) -> SimProtocol {
        SimProtocol::new(self.t_sim, self.runs, self.seed)
    }

    /// The invocation's trace/metrics session, built from
    /// `--trace`/`--trace-format`/`--metrics`.
    fn trace_session(&self) -> TraceSession {
        TraceSession::new(self.trace.clone(), self.trace_format, self.metrics)
    }

    fn exec_context(&self, session: &TraceSession) -> ExecContext {
        ExecContext::new(self.threads).with_collector(session.collector().clone())
    }
}

/// Flushes end-of-run statistics (pool activity, evaluation-cache hit
/// rates) into the session's registry and finishes the session: writes
/// the `--trace` file and prints the `--metrics` summary, all on stderr.
fn finish_session(
    session: &TraceSession,
    exec: &ExecContext,
    cache: Option<(u64, u64)>,
) -> Result<(), CliError> {
    exec.flush_pool_stats();
    if let (Some(registry), Some((hits, misses))) = (session.collector().registry(), cache) {
        registry.add(hi_opt::trace::wellknown::EXEC_CACHE_HITS, hits);
        registry.add(hi_opt::trace::wellknown::EXEC_CACHE_MISSES, misses);
    }
    session.finish().map_err(CliError::Io)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprint!("{USAGE}");
        return ExitCode::from(2);
    };
    let result = match cmd.as_str() {
        "explore" => cmd_explore(&args[1..]),
        "tradeoff" => cmd_tradeoff(&args[1..]),
        "simulate" => cmd_simulate(&args[1..]),
        "space" => cmd_space(),
        "lint" => cmd_lint(&args[1..]),
        "serve" => cmd_serve(&args[1..]),
        "--help" | "-h" | "help" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(CliError::Usage(format!("unknown command `{other}`"))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(CliError::Usage(msg)) => {
            eprintln!("error: {msg}\n");
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
        Err(CliError::Io(msg)) => {
            eprintln!("error: {msg}");
            ExitCode::from(3)
        }
        Err(CliError::Spec(msg)) => {
            eprintln!("error: {msg}");
            ExitCode::from(4)
        }
    }
}

fn parse_common(args: &[String]) -> Result<(Common, Vec<(String, String)>), CliError> {
    let mut common = Common {
        t_sim: SimDuration::from_secs(60.0),
        runs: 3,
        seed: 0xDAC_2017,
        threads: hi_opt::exec::default_threads(),
        trace: None,
        trace_format: TraceFormat::default(),
        metrics: false,
    };
    let mut rest = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i].clone();
        // Valueless flags pass through with an empty value.
        if key == "--resume" {
            rest.push((key, String::new()));
            i += 1;
            continue;
        }
        if key == "--metrics" {
            common.metrics = true;
            i += 1;
            continue;
        }
        let value = args
            .get(i + 1)
            .cloned()
            .ok_or_else(|| format!("missing value for `{key}`"))?;
        match key.as_str() {
            "--tsim" => {
                let secs: f64 = value.parse().map_err(|_| "bad --tsim".to_owned())?;
                common.t_sim = SimDuration::from_secs(secs);
            }
            "--runs" => common.runs = value.parse().map_err(|_| "bad --runs".to_owned())?,
            "--seed" => common.seed = value.parse().map_err(|_| "bad --seed".to_owned())?,
            "--threads" => {
                common.threads = value.parse().map_err(|_| "bad --threads".to_owned())?
            }
            "--trace" => common.trace = Some(value),
            "--trace-format" => {
                common.trace_format = TraceFormat::parse(&value)
                    .ok_or_else(|| format!("bad --trace-format `{value}` (use jsonl or chrome)"))?
            }
            _ => rest.push((key, value)),
        }
        i += 2;
    }
    if common.runs == 0 {
        return Err("--runs must be at least 1".into());
    }
    if common.threads == 0 {
        return Err("--threads must be at least 1".into());
    }
    if common.t_sim.is_zero() {
        return Err("--tsim must be positive".into());
    }
    // Lint the execution configuration (HL040): the engine clamps and
    // rounds these silently, so e.g. `--threads 4096` on 8 cores runs —
    // it just context-switches its budget away. Warnings only; the run
    // proceeds.
    let report = hi_opt::lint::lint_exec(&exec_spec(common.threads));
    for finding in report.findings() {
        eprintln!("exec: {finding}");
    }
    Ok((common, rest))
}

/// Lowers the run's execution configuration for HL040. The shard count
/// is [`EvalCache::new`]'s default — the cache every evaluator builds.
///
/// [`EvalCache::new`]: hi_opt::exec::EvalCache::new
fn exec_spec(threads: usize) -> hi_opt::lint::ExecSpec {
    hi_opt::lint::ExecSpec {
        threads,
        available_parallelism: std::thread::available_parallelism().map_or(0, |n| n.get()),
        cache_shards: 32,
    }
}

fn parse_robust(value: &str) -> Result<RobustMode, CliError> {
    match value {
        "nominal" => Ok(RobustMode::Nominal),
        "worst" => Ok(RobustMode::WorstCase),
        q => {
            let bad = || format!("bad --robust `{value}` (use nominal, worst or qNN, e.g. q25)");
            let pct: f64 = q
                .strip_prefix('q')
                .ok_or_else(bad)?
                .parse()
                .map_err(|_| bad())?;
            if !(0.0..=100.0).contains(&pct) {
                return Err(CliError::Usage(bad()));
            }
            Ok(RobustMode::Quantile(pct / 100.0))
        }
    }
}

/// The `--engine` selection for `explore`. The label doubles as the
/// checkpoint header's engine name, so a `--resume` across engines is
/// detected by exact string comparison.
#[derive(Clone, Copy, PartialEq, Eq)]
enum EngineKind {
    Algorithm1,
    RobustMilp,
    IlpHeuristic,
}

impl EngineKind {
    fn parse(value: &str) -> Result<Self, CliError> {
        match value {
            "algorithm1" => Ok(EngineKind::Algorithm1),
            "robust-milp" => Ok(EngineKind::RobustMilp),
            "ilp-heuristic" => Ok(EngineKind::IlpHeuristic),
            other => Err(CliError::Usage(format!(
                "bad --engine `{other}` (use algorithm1, robust-milp or ilp-heuristic)"
            ))),
        }
    }

    fn label(self) -> &'static str {
        match self {
            EngineKind::Algorithm1 => ENGINE_ALGORITHM1,
            EngineKind::RobustMilp => ENGINE_ROBUST_MILP,
            EngineKind::IlpHeuristic => ENGINE_ILP_HEURISTIC,
        }
    }

    fn is_robust(self) -> bool {
        matches!(self, EngineKind::RobustMilp | EngineKind::IlpHeuristic)
    }
}

fn robust_name(mode: RobustMode) -> String {
    match mode {
        RobustMode::Nominal => "nominal".into(),
        RobustMode::WorstCase => "worst-case".into(),
        RobustMode::Quantile(q) => format!("q{:.0}", q * 100.0),
    }
}

/// Loads a resume checkpoint, falling back to the `.prev` rotation when
/// the primary file is torn or corrupt. The fallback diagnostic goes to
/// stderr so resumed stdout stays byte-identical.
fn load_checkpoint(path: &str) -> Result<ExploreCheckpoint, CliError> {
    let recovery = hi_opt::load_recovering(Path::new(path)).map_err(|e| match e {
        CheckpointLoadError::Io(msg) => CliError::Io(msg),
        CheckpointLoadError::Spec(msg) => CliError::Spec(msg),
    })?;
    if let Some(diagnostic) = recovery.fallback {
        eprintln!("checkpoint: {diagnostic}");
    }
    Ok(recovery.checkpoint)
}

/// Reads, parses and lints a fault-suite file. Lint findings go to
/// stderr (stdout stays byte-stable for determinism diffing); findings
/// of error severity reject the suite before any simulation runs.
fn load_fault_suite(path: &str, t_sim: SimDuration) -> Result<FaultSuite, CliError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::Io(format!("cannot read fault suite `{path}`: {e}")))?;
    let (suite, windows) = parse_fault_suite(&text).map_err(|e| match e {
        SuiteParseError::Line { line, message } => {
            CliError::Spec(format!("{path}:{line}: {message}"))
        }
        SuiteParseError::NoScenario => {
            CliError::Spec(format!("fault suite `{path}` declares no scenario"))
        }
    })?;
    // Site 0 (chest) is the hub of every star candidate the exploration
    // proposes, so HL036 warns whenever a scenario takes it down.
    let report = lint_faults(&windows, t_sim.as_secs_f64(), Some(0));
    for finding in report.findings() {
        eprintln!("{path}: {finding}");
    }
    if report.has_errors() {
        return Err(CliError::Spec(format!(
            "fault suite `{path}` has {} error-severity lint finding(s)",
            report.error_count()
        )));
    }
    Ok(suite)
}

fn explore_err(e: ExploreError) -> CliError {
    match e {
        ExploreError::Checkpoint(_) => CliError::Spec(e.to_string()),
        other => CliError::Usage(other.to_string()),
    }
}

fn print_best(outcome: &ExplorationOutcome, pdr_min: f64) {
    match &outcome.best {
        Some((point, eval)) => {
            println!("optimal design : {point}");
            println!(
                "placements     : {:?}",
                point
                    .placement
                    .locations()
                    .iter()
                    .map(|l| l.name())
                    .collect::<Vec<_>>()
            );
            println!("PDR            : {:.2}%", eval.pdr * 100.0);
            println!("lifetime       : {:.1} days", eval.nlt_days);
            println!("worst power    : {:.3} mW", eval.power_mw);
            println!("latency        : {:.2} ms", eval.latency_ms);
        }
        None => println!(
            "infeasible: no configuration reaches {:.1}% PDR",
            pdr_min * 100.0
        ),
    }
}

/// Prints the optimum's nominal/worst/median PDR scorecard across the
/// fault suite. Cached from the exploration: reprinting the scorecard
/// costs no extra simulations.
fn print_scorecard(
    evaluator: &SupervisedEvaluator<RobustEvaluator>,
    outcome: &ExplorationOutcome,
) -> Result<(), CliError> {
    let Some((point, _)) = &outcome.best else {
        return Ok(());
    };
    let card = evaluator
        .inner()
        .try_robust_eval(point)
        .map_err(|e| CliError::Spec(format!("robust evaluation of the optimum failed: {e}")))?;
    let mut worst_name = "nominal";
    let mut worst_pdr = card.nominal.pdr;
    for (sc, ev) in evaluator
        .inner()
        .suite()
        .scenarios
        .iter()
        .zip(&card.scenarios)
    {
        if ev.pdr < worst_pdr {
            worst_pdr = ev.pdr;
            worst_name = &sc.name;
        }
    }
    println!("nominal PDR    : {:.2}%", card.nominal.pdr * 100.0);
    println!("worst PDR      : {:.2}% ({worst_name})", worst_pdr * 100.0);
    println!("median PDR     : {:.2}%", card.quantile(0.5).pdr * 100.0);
    Ok(())
}

fn cmd_explore(args: &[String]) -> Result<(), CliError> {
    let (common, rest) = parse_common(args)?;
    let mut pdr_min = None;
    let mut faults: Option<String> = None;
    let mut robust: Option<RobustMode> = None;
    let mut engine = EngineKind::Algorithm1;
    let mut gamma: Option<u32> = None;
    let mut budget: Option<u64> = None;
    let mut checkpoint: Option<String> = None;
    let mut checkpoint_every: Option<u32> = None;
    let mut resume = false;
    let mut retries: u32 = 3;
    let mut max_events: Option<u64> = None;
    let mut chaos: Option<ChaosPolicy> = None;
    for (k, v) in rest {
        match k.as_str() {
            "--pdr-min" => {
                pdr_min = Some(v.parse::<f64>().map_err(|_| "bad --pdr-min".to_owned())?)
            }
            "--faults" => faults = Some(v),
            "--robust" => robust = Some(parse_robust(&v)?),
            "--engine" => engine = EngineKind::parse(&v)?,
            "--gamma" => {
                gamma = Some(v.parse::<u32>().map_err(|_| {
                    "bad --gamma (expected a non-negative deviation budget)".to_owned()
                })?)
            }
            "--budget" => {
                budget = Some(
                    v.parse::<u64>()
                        .map_err(|_| "bad --budget (expected a simulation count)".to_owned())?,
                )
            }
            "--retries" => {
                retries = v
                    .parse::<u32>()
                    .map_err(|_| "bad --retries (expected an attempt count)".to_owned())?
            }
            "--max-events" => {
                max_events = Some(
                    v.parse::<u64>()
                        .map_err(|_| "bad --max-events (expected a DES event count)".to_owned())?,
                )
            }
            "--chaos" => {
                chaos = Some(
                    ChaosPolicy::parse(&v)
                        .map_err(|e| CliError::Usage(format!("bad --chaos: {e}")))?,
                )
            }
            "--checkpoint" => checkpoint = Some(v),
            "--checkpoint-every" => {
                checkpoint_every = Some(v.parse::<u32>().map_err(|_| {
                    "bad --checkpoint-every (expected an iteration count)".to_owned()
                })?)
            }
            "--resume" => resume = true,
            other => return Err(format!("unknown option `{other}`").into()),
        }
    }
    let pdr_min = pdr_min.ok_or("explore requires --pdr-min")?;
    if !(0.0..=1.0).contains(&pdr_min) {
        return Err("--pdr-min must be within [0, 1]".into());
    }
    if robust.is_some() && faults.is_none() {
        return Err("--robust needs --faults <file> (nothing to be robust against)".into());
    }
    if gamma.is_some() && !engine.is_robust() {
        return Err(
            "--gamma needs --engine robust-milp or ilp-heuristic (the nominal engine prices \
             no deviations)"
                .into(),
        );
    }
    if resume && checkpoint.is_none() {
        return Err("--resume needs --checkpoint <file> to resume from".into());
    }
    if checkpoint_every.is_some() && checkpoint.is_none() {
        return Err("--checkpoint-every needs --checkpoint <file> to write to".into());
    }
    // Lint the run's actual supervision policy (HL038/HL039): warnings —
    // like chaos in a release build — go to stderr and the run proceeds;
    // error-severity misconfigurations reject the flags before any
    // simulation spends budget discovering them.
    let supervisor = Supervisor::new(RetryPolicy::new(retries), chaos);
    // A --faults run is a robust run even without an explicit --robust
    // (the aggregation then defaults to worst-case).
    let report = hi_opt::lint::lint_supervision(&supervision_spec(
        &supervisor,
        max_events,
        faults.is_some(),
    ));
    for finding in report.findings() {
        eprintln!("supervision: {finding}");
    }
    if report.has_errors() {
        return Err(CliError::Usage(format!(
            "supervision policy has {} error-severity lint finding(s)",
            report.error_count()
        )));
    }
    let suite = match &faults {
        Some(path) => Some(load_fault_suite(path, common.t_sim)?),
        None => None,
    };
    // Gamma-robust engines derive their per-link deviation bounds from
    // the fault suite and are linted (HL048/HL049) before any budget is
    // spent. A degenerate specification — Gamma 0 or no protected links
    // — falls back to the nominal engine with a stderr note, so its
    // stdout stays byte-identical to a plain algorithm1 run's.
    let mut spec: Option<RobustnessSpec> = None;
    if engine.is_robust() {
        let gamma = gamma.unwrap_or(1);
        let derived = match &suite {
            Some(s) => RobustnessSpec::from_suite(s, gamma),
            None => RobustnessSpec {
                gamma,
                deviations: Vec::new(),
            },
        };
        let report = hi_opt::lint::lint_robustness(&hi_opt::lint::RobustnessLintSpec {
            gamma: i64::from(gamma),
            protected_links: derived.deviations.len(),
            deviation_bounds: derived.deviations.iter().map(|d| d.delta_db).collect(),
            robust_engine: true,
            suite_scenarios: suite.as_ref().map_or(0, |s| s.len()),
        });
        for finding in report.findings() {
            eprintln!("robustness: {finding}");
        }
        if derived.is_degenerate() {
            eprintln!(
                "note: the robustness specification is degenerate (gamma = {gamma}, {} \
                 protected link(s)); running the nominal algorithm1 engine",
                derived.deviations.len()
            );
            engine = EngineKind::Algorithm1;
        } else if report.has_errors() {
            return Err(CliError::Usage(format!(
                "robustness specification has {} error-severity lint finding(s)",
                report.error_count()
            )));
        } else {
            spec = Some(derived);
        }
    }
    let prior = match (&checkpoint, resume) {
        (Some(path), true) => Some(load_checkpoint(path)?),
        _ => None,
    };
    // A checkpoint records which engine wrote it; silently replaying an
    // algorithm1 cut ladder into the robust counterpart (or vice versa)
    // would corrupt the resumed search, so a mismatch is a usage error.
    if let Some(cp) = &prior {
        if cp.engine != engine.label() {
            return Err(CliError::Usage(format!(
                "--resume checkpoint was recorded by engine `{}`, but this run selects \
                 `{}`; rerun with `--engine {}` or start a fresh checkpoint",
                cp.engine,
                engine.label(),
                cp.engine
            )));
        }
    }
    let options = ExploreOptions {
        budget,
        checkpoint_every,
        ..ExploreOptions::default()
    };
    // Auto-saves are best-effort: a full disk must not kill a run that
    // can still finish and print its result. Notices stay on stderr so
    // checkpointed stdout is byte-identical to a plain run's.
    let autosave_path = checkpoint.clone();
    let mut observer = move |cp: &ExploreCheckpoint| {
        let Some(path) = &autosave_path else { return };
        match cp.write_atomic(Path::new(path)) {
            Ok(()) => eprintln!(
                "checkpoint: auto-saved {} iteration(s), {} simulation(s) to `{path}`",
                cp.iterations, cp.simulations
            ),
            Err(e) => eprintln!("checkpoint: auto-save to `{path}` failed: {e}"),
        }
    };
    let problem = Problem::paper_default(pdr_min);
    let session = common.trace_session();
    let trace_main = session.install_main();
    let exec = common.exec_context(&session);

    let (outcome, cache) = match (engine, suite) {
        (EngineKind::Algorithm1, Some(suite)) => {
            let mode = robust.unwrap_or(RobustMode::WorstCase);
            println!(
                "fault suite    : {} scenario(s), {} aggregation",
                suite.len(),
                robust_name(mode)
            );
            let evaluator = SupervisedEvaluator::new(
                RobustEvaluator::new(common.protocol().with_max_events(max_events), suite, mode),
                supervisor,
            );
            let outcome = explore_par_observed(
                &problem,
                &evaluator,
                options,
                &exec,
                prior.as_ref(),
                &mut observer,
            )
            .map_err(explore_err)?;
            print_best(&outcome, pdr_min);
            print_scorecard(&evaluator, &outcome)?;
            (
                outcome,
                (
                    evaluator.inner().cache_hits(),
                    evaluator.inner().cache_misses(),
                ),
            )
        }
        (kind, Some(suite)) => {
            let spec = spec
                .take()
                .expect("non-degenerate robust engines carry a spec");
            let mode = robust.unwrap_or(RobustMode::WorstCase);
            println!(
                "fault suite    : {} scenario(s), {} aggregation",
                suite.len(),
                robust_name(mode)
            );
            println!(
                "engine         : {} (gamma = {}, {} protected link(s))",
                kind.label(),
                spec.gamma,
                spec.deviations.len()
            );
            let evaluator = SupervisedEvaluator::new(
                RobustEvaluator::new(common.protocol().with_max_events(max_events), suite, mode),
                supervisor,
            );
            let result = match kind {
                EngineKind::RobustMilp => robust_milp_search(
                    &problem,
                    &spec,
                    &evaluator,
                    options,
                    &exec,
                    prior.as_ref(),
                    &mut observer,
                ),
                _ => ilp_heuristic_search(
                    &problem,
                    &spec,
                    &evaluator,
                    options,
                    &exec,
                    prior.as_ref(),
                    &mut observer,
                ),
            }
            .map_err(explore_err)?;
            print_best(&result.outcome, pdr_min);
            print_scorecard(&evaluator, &result.outcome)?;
            if let (Some(nominal), Some(robust_mw)) =
                (result.nominal_power_mw, result.robust_power_mw)
            {
                println!(
                    "price of robustness : nominal {:.3} mW -> robust {:.3} mW (+{:.1}%), \
                     {} simulation(s)",
                    nominal,
                    robust_mw,
                    (robust_mw - nominal) / nominal * 100.0,
                    result.outcome.simulations
                );
            }
            if kind == EngineKind::IlpHeuristic {
                println!("repairs        : {} pinned site(s) freed", result.repairs);
            }
            (
                result.outcome,
                (
                    evaluator.inner().cache_hits(),
                    evaluator.inner().cache_misses(),
                ),
            )
        }
        (EngineKind::RobustMilp | EngineKind::IlpHeuristic, None) => {
            unreachable!("degenerate robust specifications run as algorithm1")
        }
        (EngineKind::Algorithm1, None) => {
            let evaluator = SupervisedEvaluator::new(
                common
                    .protocol()
                    .with_max_events(max_events)
                    .shared_evaluator(),
                supervisor,
            );
            let outcome = explore_par_observed(
                &problem,
                &evaluator,
                options,
                &exec,
                prior.as_ref(),
                &mut observer,
            )
            .map_err(explore_err)?;
            print_best(&outcome, pdr_min);
            (
                outcome,
                (
                    evaluator.inner().cache_hits(),
                    evaluator.inner().unique_evaluations(),
                ),
            )
        }
    };
    if outcome.eval_errors > 0 {
        println!(
            "eval errors    : {} design point(s) failed evaluation and were skipped",
            outcome.eval_errors
        );
    }
    println!(
        "effort         : {} simulations, {} MILP iterations ({:?})",
        outcome.simulations, outcome.iterations, outcome.stop_reason
    );
    if let Some(path) = &checkpoint {
        let cp = ExploreCheckpoint::from_outcome(pdr_min, options.alpha_correction, &outcome)
            .with_engine(engine.label());
        cp.write_atomic(Path::new(path))
            .map_err(|e| CliError::Io(format!("cannot write checkpoint `{path}`: {e}")))?;
        // Stderr, so a resumed run's stdout stays byte-identical to an
        // uninterrupted one.
        eprintln!(
            "checkpoint: saved {} iteration(s), {} simulation(s) to `{path}`",
            outcome.iterations, outcome.simulations
        );
    }
    // Stderr: stdout must stay byte-identical whether or not the run was
    // traced, budgeted or resumed.
    if let Some(notice) = stop_notice(&outcome) {
        eprintln!("{notice}");
    }
    drop(trace_main);
    finish_session(&session, &exec, Some(cache))?;
    Ok(())
}

/// The archive stream key for a `tradeoff` invocation's physics. Any
/// change to the simulation protocol (`--tsim`/`--runs`/`--seed`) lands
/// in a differently named front segment, so a stale archive is
/// invalidated by construction — never silently served.
fn archive_key(common: &Common) -> u64 {
    let text = format!(
        "tradeoff tsim {} runs {} seed {}",
        common.t_sim.as_secs_f64(),
        common.runs,
        common.seed
    );
    let token = hi_opt::serve::derive_token(&text);
    u64::from_str_radix(token.trim_start_matches("auto-"), 16)
        .expect("derive_token yields 16 hex digits")
}

/// Prints the archive's non-dominated front, one row per design. Byte
/// deterministic: the archive orders points by fingerprint, so a warm
/// reprint is identical to the cold sweep that populated it.
fn print_front(front: &[hi_opt::pareto::FrontPoint]) {
    println!("pareto front   : {} point(s)", front.len());
    for p in front {
        let design = hi_opt::DesignPoint::from_fingerprint(p.fingerprint)
            .map(|d| d.to_string())
            .unwrap_or_else(|| format!("fp {:016x}", p.fingerprint));
        println!(
            "  {:<34} pdr {:>6.2}%  power {:>7.3} mW  latency {:>6.2} ms  nlt {:>6.1} d",
            design,
            p.pdr * 100.0,
            p.power_mw,
            p.latency_ms,
            p.nlt_days
        );
    }
}

fn cmd_tradeoff(args: &[String]) -> Result<(), CliError> {
    let (common, rest) = parse_common(args)?;
    let mut floors: Vec<f64> = vec![0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.99];
    let mut archive_dir: Option<std::path::PathBuf> = None;
    for (k, v) in rest {
        match k.as_str() {
            "--floors" => {
                floors = v
                    .split(',')
                    .map(|s| s.trim().parse::<f64>().map(|p| p / 100.0))
                    .collect::<Result<_, _>>()
                    .map_err(|_| "bad --floors (expected e.g. 50,80,95)".to_owned())?;
            }
            "--archive" => archive_dir = Some(v.into()),
            other => return Err(format!("unknown option `{other}`").into()),
        }
    }
    if floors.iter().any(|f| !(0.0..=1.0).contains(f)) {
        return Err("floors must be percentages within [0, 100]".into());
    }
    // The archive's epsilon boxes are linted (HL046) before anything is
    // inserted or served — a degenerate box would corrupt the front.
    let eps = hi_opt::pareto::ArchiveConfig::default();
    if archive_dir.is_some() {
        let report = hi_opt::lint::lint_archive(&hi_opt::lint::ArchiveSpec {
            eps_power_mw: eps.eps_power_mw,
            eps_pdr: eps.eps_pdr,
            eps_latency_ms: eps.eps_latency_ms,
        });
        if report.has_errors() {
            return Err(CliError::Spec(format!(
                "archive configuration rejected:\n{report}"
            )));
        }
    }
    // Warm path: a front segment for this exact physics already exists —
    // answer from it, zero fresh simulations, no sweep at all.
    if let Some(dir) = &archive_dir {
        let path = hi_opt::serve::front_path(dir, archive_key(&common));
        if path.is_file() {
            let bytes = std::fs::read(&path)
                .map_err(|e| CliError::Io(format!("cannot read `{}`: {e}", path.display())))?;
            let load = hi_opt::serve::parse_front_segment(&bytes)
                .map_err(|e| CliError::Spec(format!("{}: {e}", path.display())))?;
            let mut archive = hi_opt::pareto::ParetoArchive::new(eps);
            for point in load.points {
                archive.insert(point);
            }
            print_front(&archive.front());
            println!("total unique simulations: 0");
            return Ok(());
        }
    }
    let template = Problem::paper_default(0.5);
    let evaluator = common.protocol().shared_evaluator();
    let session = common.trace_session();
    let trace_main = session.install_main();
    let exec = common.exec_context(&session);
    let sweep =
        explore_tradeoff_par(&template, &floors, &evaluator, &exec).map_err(|e| e.to_string())?;
    println!(
        "{:>7}  {:<34} {:>7} {:>10}",
        "PDRmin", "design", "PDR", "lifetime"
    );
    for point in sweep {
        match point.best {
            Some((design, eval)) => println!(
                "{:>6.1}%  {:<34} {:>6.1}% {:>8.1} d",
                point.pdr_min * 100.0,
                design.to_string(),
                eval.pdr * 100.0,
                eval.nlt_days
            ),
            None => println!("{:>6.1}%  (infeasible)", point.pdr_min * 100.0),
        }
    }
    // Cold populate: fold every evaluation the sweep cached into the
    // archive and persist the resulting front (tmp + rename, so a
    // killed run leaves either the old segment or the new one, never a
    // half-written file). The printed front section is byte-identical
    // to what the warm path will print for the same physics.
    if let Some(dir) = &archive_dir {
        let mut archive = hi_opt::pareto::ParetoArchive::new(eps);
        for (point, eval) in evaluator.cached_ok() {
            archive.insert(hi_opt::pareto::FrontPoint {
                fingerprint: point.fingerprint(),
                power_mw: eval.power_mw,
                pdr: eval.pdr,
                latency_ms: eval.latency_ms,
                nlt_days: eval.nlt_days,
            });
        }
        let front = archive.front();
        std::fs::create_dir_all(dir)
            .map_err(|e| CliError::Io(format!("cannot create `{}`: {e}", dir.display())))?;
        let key = archive_key(&common);
        let path = hi_opt::serve::front_path(dir, key);
        let tmp = path.with_extension("seg.tmp");
        let bytes = hi_opt::serve::render_front_segment(key, &front);
        std::fs::write(&tmp, bytes)
            .and_then(|()| std::fs::rename(&tmp, &path))
            .map_err(|e| CliError::Io(format!("cannot write `{}`: {e}", path.display())))?;
        print_front(&front);
    }
    println!(
        "total unique simulations: {}",
        evaluator.unique_evaluations()
    );
    drop(trace_main);
    finish_session(
        &session,
        &exec,
        Some((evaluator.cache_hits(), evaluator.unique_evaluations())),
    )?;
    Ok(())
}

fn cmd_simulate(args: &[String]) -> Result<(), CliError> {
    let (common, rest) = parse_common(args)?;
    let mut sites: Option<Vec<usize>> = None;
    let mut power = None;
    let mut mac = None;
    let mut routing = None;
    for (k, v) in rest {
        match k.as_str() {
            "--sites" => {
                sites = Some(
                    v.split(',')
                        .map(|s| s.trim().parse::<usize>())
                        .collect::<Result<_, _>>()
                        .map_err(|_| "bad --sites (expected e.g. 0,1,3,5)".to_owned())?,
                )
            }
            "--power" => {
                power = Some(match v.as_str() {
                    "-20" => TxPower::Minus20Dbm,
                    "-10" => TxPower::Minus10Dbm,
                    "0" => TxPower::ZeroDbm,
                    _ => return Err("bad --power (use -20, -10 or 0)".into()),
                })
            }
            "--mac" => {
                mac = Some(match v.as_str() {
                    "csma" => MacKind::csma(),
                    "tdma" => MacKind::tdma(),
                    _ => return Err("bad --mac (use csma or tdma)".into()),
                })
            }
            "--routing" => {
                routing = Some(match v.as_str() {
                    "star" => None, // resolved after sites are known
                    "mesh" => Some(Routing::mesh()),
                    _ => return Err("bad --routing (use star or mesh)".into()),
                })
            }
            other => return Err(format!("unknown option `{other}`").into()),
        }
    }
    let sites = sites.ok_or("simulate requires --sites")?;
    let power = power.ok_or("simulate requires --power")?;
    let mac = mac.ok_or("simulate requires --mac")?;
    let routing = routing.ok_or("simulate requires --routing")?;

    let placements: Vec<BodyLocation> = sites
        .iter()
        .map(|&i| BodyLocation::from_index(i).ok_or(format!("site index {i} out of range")))
        .collect::<Result<_, _>>()?;
    let routing = match routing {
        Some(mesh) => mesh,
        None => {
            let coordinator = placements
                .iter()
                .position(|&l| l == BodyLocation::Chest)
                .ok_or("star routing requires site 0 (chest) as coordinator")?;
            Routing::Star { coordinator }
        }
    };
    let cfg = NetworkConfig::new(placements, power, mac, routing);
    cfg.validate().map_err(|e| e.to_string())?;
    // Replication r always gets seed `base + r` in input order, so the
    // pooled average is bit-identical to `hi_net::simulate_averaged`.
    let workers = common.threads.min(common.runs as usize);
    let session = common.trace_session();
    let trace_main = session.install_main();
    // Replication r records on lane r + 1 of one batch epoch (the same
    // convention ExecContext uses), so the trace layout is identical for
    // every worker count.
    let batch = session.collector().open_batch();
    let run_one = {
        let cfg = cfg.clone();
        let (t_sim, seed) = (common.t_sim, common.seed);
        let collector = session.collector().clone();
        let epoch = batch.as_ref().map(hi_opt::trace::BatchToken::epoch);
        move |r: u32| {
            let _lane = epoch.map(|e| collector.install(e, r + 1));
            simulate_stochastic(&cfg, ChannelParams::default(), t_sim, seed + u64::from(r))
        }
    };
    let replications: Result<Vec<_>, _> = if workers > 1 {
        let pool = hi_opt::exec::ThreadPool::new(workers);
        pool.par_map((0..common.runs).collect(), run_one)
            .into_iter()
            .collect()
    } else {
        (0..common.runs).map(run_one).collect()
    };
    drop(batch);
    let replications = replications.map_err(|e| e.to_string())?;
    let out = average_outcomes(&replications);
    println!("configuration  : {}", cfg.summary());
    println!("PDR            : {:.2}%", out.pdr_percent());
    println!("lifetime       : {:.1} days", out.nlt_days);
    println!("worst power    : {:.3} mW", out.max_power_mw);
    println!(
        "latency        : mean {:.2} ms, jitter {:.2} ms, max {:.2} ms",
        out.latency.mean_ms, out.latency.std_ms, out.latency.max_ms
    );
    // Per-replication means: replication r runs on seed `base + r`, so
    // this line exposes the seed-to-seed latency spread the pooled mean
    // above averages away.
    println!(
        "latency / rep  : {} ms",
        replications
            .iter()
            .map(|r| format!("{:.2}", r.latency.mean_ms))
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!(
        "traffic        : {} generated, {} transmissions, {} collisions, {} drops",
        out.counts.generated,
        out.counts.transmissions,
        out.counts.collisions,
        out.counts.buffer_drops + out.counts.mac_drops
    );
    drop(trace_main);
    session.finish().map_err(CliError::Io)?;
    Ok(())
}

fn cmd_space() -> Result<(), CliError> {
    let space = DesignSpace::paper_default();
    let constraints = space.constraints();
    println!("design space (paper §4.1 defaults)");
    println!("  candidate sites      : 10 (see `hi-opt --help` for the index map)");
    println!("  required             : chest (n0 = 1)");
    println!(
        "  at least one of      : {{l-hip, r-hip}}, {{l-ankle, r-ankle}}, {{l-wrist, r-wrist}}"
    );
    println!(
        "  node count           : {} ..= {}",
        constraints.min_nodes, constraints.max_nodes
    );
    println!(
        "  feasible placements  : {}",
        constraints.feasible_placements().len()
    );
    println!("  stack choices        : 3 Tx powers x 2 MACs x 2 routings");
    println!("  feasible points      : {}", space.points().len());
    println!(
        "  unconstrained space  : {} (the paper's 12,288)",
        DesignSpace::unconstrained_size()
    );
    Ok(())
}

fn print_lint_section(title: &str, report: &hi_opt::lint::Report) {
    println!("{title}");
    if report.is_clean() {
        println!("  clean");
    } else {
        for finding in report.findings() {
            println!("  {finding}");
        }
    }
}

fn cmd_lint(args: &[String]) -> Result<(), CliError> {
    use hi_opt::lint::{lint_schedule, lint_space, Report, SpaceDim};

    let mut seed: u64 = 0xDAC_2017;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => {
                seed = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .ok_or("bad --seed")?;
                i += 2;
            }
            other => return Err(format!("unknown option `{other}`").into()),
        }
    }

    let constraints = TopologyConstraints::paper_default();
    let app = hi_opt::net::AppParams::default();
    let mut total = Report::new();

    // 1. The configuration space itself (paper §4.1 dimensions).
    let dims = [
        SpaceDim::new(
            "feasible placements",
            constraints.feasible_placements().len() as u64,
        ),
        SpaceDim::new("tx power", TxPower::ALL.len() as u64),
        SpaceDim::new("mac", 2),
        SpaceDim::new("routing", 2),
    ];
    let report = lint_space(&dims);
    print_lint_section("configuration space", &report);
    total.merge(report);

    // 2. The MILP encoding of the relaxed problem P-tilde, as built.
    let enc = MilpEncoding::new(&constraints, &app);
    let report = enc.lint_report();
    print_lint_section("milp encoding (no cuts)", &report);
    total.merge(report);

    // 3. The full Algorithm-1 cut ladder: every power cut RunMILP would
    //    ever add, checked for structural damage and redundancy.
    let mut enc = MilpEncoding::new(&constraints, &app);
    let mut levels = 0u32;
    loop {
        let (_, p) = enc.solve_pool().map_err(|e| e.to_string())?;
        match p {
            Some(p) => {
                levels += 1;
                enc.add_power_cut(p);
            }
            None => break,
        }
    }
    let report = enc.lint_report();
    print_lint_section(&format!("cut ladder ({levels} levels)"), &report);
    total.merge(report);

    // 4. A sample event schedule drained through the DES engine.
    let mut rng = hi_opt::des::rng::stream(seed, 7);
    let mut engine = hi_opt::des::Engine::new();
    for event in 0u32..64 {
        let t_ns = rng.gen_below(10_000_000_000); // within 10 s
        engine.schedule_at(hi_opt::des::SimTime::from_nanos(t_ns), event);
    }
    let mut times = Vec::new();
    while let Some((t, _)) = engine.pop() {
        times.push(t.as_secs_f64());
    }
    let report = lint_schedule(&times);
    print_lint_section("event schedule sample (64 events)", &report);
    total.merge(report);

    // 5. The workspace metric catalog: every name the tracing subsystem
    //    registers, checked for duplicate declarations (HL037).
    let registry = hi_opt::trace::MetricsRegistry::new();
    hi_opt::trace::wellknown::register_all(&registry);
    let defs: Vec<hi_opt::lint::MetricDefSpec> = registry
        .specs()
        .into_iter()
        .map(|spec| hi_opt::lint::MetricDefSpec {
            name: spec.name,
            kind: spec.kind.label().to_string(),
        })
        .collect();
    let report = hi_opt::lint::lint_metrics(&defs);
    print_lint_section(&format!("metric catalog ({} metrics)", defs.len()), &report);
    total.merge(report);

    // 6. The execution supervision policy `hi-opt explore` runs under by
    //    default (HL038/HL039): retry bounds, deadline floor, no chaos.
    let report =
        hi_opt::lint::lint_supervision(&supervision_spec(&Supervisor::default(), None, false));
    print_lint_section("supervision policy (explore defaults)", &report);
    total.merge(report);

    // 7. The parallel-execution configuration explore defaults to
    //    (HL040): worker count against this machine's cores, cache
    //    sharding against the power-of-two mask.
    let report = hi_opt::lint::lint_exec(&exec_spec(hi_opt::exec::default_threads()));
    print_lint_section("execution configuration (explore defaults)", &report);
    total.merge(report);

    // 8. Lock accounting of the hi-check protocol models (HL041): a
    //    brief exploration of each model in the catalog, with its
    //    per-lock acquire/release counts lowered into lint specs. The
    //    full-budget sweep lives in `cargo test -p hi-check`; 64
    //    executions here are enough to exercise every lock.
    let config = hi_opt::check::Config {
        max_executions: 64,
        ..hi_opt::check::Config::default()
    };
    let mut lock_total = 0usize;
    let mut report = hi_opt::lint::Report::new();
    for entry in hi_opt::check::models::catalog() {
        let checked = hi_opt::check::explore(&config, entry.model);
        let specs: Vec<hi_opt::lint::ModelLockSpec> = checked
            .locks
            .iter()
            .map(|lock| hi_opt::lint::ModelLockSpec {
                name: format!("{}/{}", entry.name, lock.name),
                acquires: lock.acquires,
                releases: lock.releases,
            })
            .collect();
        lock_total += specs.len();
        report.merge(hi_opt::lint::lint_model_locks(&specs));
    }
    print_lint_section(
        &format!("checker model lock accounting ({lock_total} locks)"),
        &report,
    );
    total.merge(report);

    // 9. The fleet service: the demo profiles shipped in the crate
    //    (HL042) and the daemon's default configuration (HL043) — the
    //    same checks `hi-opt serve` runs at startup and per submission.
    let profiles = hi_opt::serve::parse_profiles(hi_opt::serve::DEMO_FLEET)
        .map_err(|e| CliError::Spec(e.to_string()))?;
    let report = hi_opt::serve::lint_profiles(&profiles);
    print_lint_section(
        &format!("fleet demo profiles ({} profiles)", profiles.len()),
        &report,
    );
    total.merge(report);

    let defaults = hi_opt::serve::ServeConfig::new("hi-serve-state");
    let report = hi_opt::lint::lint_server(&defaults.lint_spec());
    print_lint_section("serve daemon configuration (defaults)", &report);
    total.merge(report);

    // 10. Durable-cache persistence (HL044) and the reconnecting
    //     client's retry policy (HL045) — the same checks `hi-opt
    //     serve` and `hi-serve-client` run at startup, here against
    //     their defaults.
    let report = hi_opt::lint::lint_cache_persist(&defaults.cache_lint_spec());
    print_lint_section("serve cache persistence (defaults)", &report);
    total.merge(report);

    let report = hi_opt::lint::lint_client_retry(&hi_opt::lint::ClientRetrySpec {
        max_attempts: 5,
        backoff_base_ms: 50.0,
    });
    print_lint_section("serve client retry policy (defaults)", &report);
    total.merge(report);

    // 11. The Pareto archive: the epsilon boxes every archive (daemon
    //     and `tradeoff --archive`) is built with (HL046), and the
    //     cold-daemon FRONT query (HL047) — shown deliberately in its
    //     firing state so the advisory a too-early client would see is
    //     part of this report (a warning, never an error).
    let eps = hi_opt::pareto::ArchiveConfig::default();
    let report = hi_opt::lint::lint_archive(&hi_opt::lint::ArchiveSpec {
        eps_power_mw: eps.eps_power_mw,
        eps_pdr: eps.eps_pdr,
        eps_latency_ms: eps.eps_latency_ms,
    });
    print_lint_section("pareto archive epsilons (defaults)", &report);
    total.merge(report);

    let report = hi_opt::lint::lint_front_query(&hi_opt::lint::FrontQuerySpec {
        completed_jobs: 0,
        archived_points: 0,
    });
    print_lint_section("front query (cold daemon, empty archive)", &report);
    total.merge(report);

    // 12. The Gamma-robustness specification (HL048/HL049): first the
    //     shape a robust engine derives from the demo fault suite (45
    //     protected links, burst- and cap-level deviation bounds), then
    //     — deliberately in its firing state, like the FRONT query above
    //     — a robust engine pointed at no suite at all, whose silent
    //     degeneration to the nominal engine is a warning, never an
    //     error.
    let report = hi_opt::lint::lint_robustness(&hi_opt::lint::RobustnessLintSpec {
        gamma: 2,
        protected_links: 45,
        deviation_bounds: vec![9.0, 40.0],
        robust_engine: true,
        suite_scenarios: 3,
    });
    print_lint_section("robustness spec (demo suite, gamma 2)", &report);
    total.merge(report);

    let report = hi_opt::lint::lint_robustness(&hi_opt::lint::RobustnessLintSpec {
        gamma: 1,
        protected_links: 0,
        deviation_bounds: vec![],
        robust_engine: true,
        suite_scenarios: 0,
    });
    print_lint_section("robust engine without a fault suite", &report);
    total.merge(report);

    println!();
    println!(
        "summary: {} error(s), {} warning(s), {} info(s)",
        total.error_count(),
        total.warning_count(),
        total.info_count()
    );
    if total.has_errors() {
        // Error severity means a structurally broken artifact; make the
        // failure visible to scripts without dumping the usage banner.
        std::process::exit(1);
    }
    Ok(())
}

fn cmd_serve(args: &[String]) -> Result<(), CliError> {
    let mut state: Option<String> = None;
    let mut listen: Option<String> = None;
    let mut stdio = false;
    let mut threads = hi_opt::exec::default_threads();
    let mut queue_cap: usize = 64;
    let mut retries: u32 = 3;
    let mut max_events: Option<u64> = None;
    let mut cache_dir: Option<std::path::PathBuf> = None;
    let mut compact_threshold: u32 = 256;
    let mut conn_timeout: u64 = 600;
    let mut chaos: Option<hi_opt::exec::ChaosPolicy> = None;
    let mut i = 0;
    let take = |args: &[String], i: usize, flag: &str| -> Result<String, CliError> {
        args.get(i + 1)
            .cloned()
            .ok_or_else(|| CliError::Usage(format!("{flag} needs a value")))
    };
    while i < args.len() {
        match args[i].as_str() {
            "--state" => {
                state = Some(take(args, i, "--state")?);
                i += 2;
            }
            "--listen" => {
                listen = Some(take(args, i, "--listen")?);
                i += 2;
            }
            "--stdio" => {
                stdio = true;
                i += 1;
            }
            "--threads" => {
                threads = take(args, i, "--threads")?
                    .parse()
                    .map_err(|_| "bad --threads")?;
                i += 2;
            }
            "--queue-cap" => {
                queue_cap = take(args, i, "--queue-cap")?
                    .parse()
                    .map_err(|_| "bad --queue-cap")?;
                i += 2;
            }
            "--retries" => {
                retries = take(args, i, "--retries")?
                    .parse()
                    .map_err(|_| "bad --retries")?;
                i += 2;
            }
            "--max-events" => {
                max_events = Some(
                    take(args, i, "--max-events")?
                        .parse()
                        .map_err(|_| "bad --max-events")?,
                );
                i += 2;
            }
            "--cache-dir" => {
                cache_dir = Some(take(args, i, "--cache-dir")?.into());
                i += 2;
            }
            "--compact-every" => {
                compact_threshold = take(args, i, "--compact-every")?
                    .parse()
                    .map_err(|_| "bad --compact-every")?;
                i += 2;
            }
            "--conn-timeout" => {
                conn_timeout = take(args, i, "--conn-timeout")?
                    .parse()
                    .map_err(|_| "bad --conn-timeout")?;
                i += 2;
            }
            "--chaos" => {
                let spec = take(args, i, "--chaos")?;
                chaos = Some(
                    hi_opt::exec::ChaosPolicy::parse(&spec)
                        .map_err(|e| CliError::Usage(format!("bad --chaos: {e}")))?,
                );
                i += 2;
            }
            other => return Err(format!("unknown option `{other}`").into()),
        }
    }
    let state = state.ok_or("serve needs --state <dir>")?;
    let mut config = hi_opt::serve::ServeConfig::new(state);
    config.listen = listen;
    config.stdio = stdio;
    config.threads = threads;
    config.queue_capacity = queue_cap;
    config.retry_attempts = retries;
    config.max_events = max_events;
    config.cache_dir = cache_dir;
    config.compact_threshold = compact_threshold;
    config.conn_timeout_secs = conn_timeout;
    config.chaos = chaos;
    // Startup failures are misconfigurations or unusable state files —
    // closest to a malformed spec; scripts see exit 4.
    hi_opt::serve::run(config).map_err(CliError::Spec)
}
