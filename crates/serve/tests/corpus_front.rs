//! Corpus fuzz tests for the Pareto-front segment format
//! (`parse_front_segment` / `parse_front_entry` /
//! `render_front_segment`), in the same idiom as `corpus_segments.rs`.
//!
//! The front segment shares the cache segment's framing discipline —
//! torn tails are recoverable prefixes, CRC mismatches fail the whole
//! file — but carries a different header and payload grammar, so the
//! two formats must *reject each other* instead of half-parsing: a
//! warm restart that hydrated a Pareto archive from a cache segment
//! (or vice versa) would serve a front built from the wrong numbers.
//!
//! The committed seeds are real artifacts: `front_warm.seg` was written
//! by an actual daemon run (the same run that produced
//! `segment_warm.seg`), and the torn/bit-rot variants are byte-surgery
//! on it (a truncated tail; one flipped payload bit).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;

use hi_core::{parse_fault_suite, ExploreCheckpoint};
use hi_serve::{
    frame_entry, parse_front_segment, parse_profiles, parse_segment, render_front_entry,
    render_front_segment, FrontLoad, JobRecord,
};

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

fn corpus_bytes(name: &str) -> Vec<u8> {
    let path = corpus_dir().join(name);
    std::fs::read(&path)
        .unwrap_or_else(|e| panic!("corpus file {} unreadable: {e}", path.display()))
}

/// `parse_front_segment` must return — Ok or Err — on `bytes`, never
/// panic.
fn parse_survives(context: &str, bytes: &[u8]) -> Result<FrontLoad, String> {
    catch_unwind(AssertUnwindSafe(|| parse_front_segment(bytes)))
        .unwrap_or_else(|_| panic!("front parser panicked on {context}"))
}

#[test]
fn the_wellformed_seed_parses_and_roundtrips() {
    let bytes = corpus_bytes("front_warm.seg");
    let load = parse_front_segment(&bytes).expect("the committed warm front is valid");
    assert!(load.torn.is_none(), "{:?}", load.torn);
    assert!(load.points.len() >= 8, "suspiciously small seed");
    // Render-parse roundtrip is byte-identical: the seed really is in
    // canonical form, so compaction rewrites are stable.
    let rendered = render_front_segment(load.key, &load.points);
    assert_eq!(rendered, bytes);
}

#[test]
fn the_torn_seed_keeps_its_intact_prefix() {
    let warm = parse_front_segment(&corpus_bytes("front_warm.seg")).unwrap();
    let torn = parse_front_segment(&corpus_bytes("front_torn.seg"))
        .expect("a torn tail is recoverable, not fatal");
    let note = torn.torn.expect("the tear must be reported");
    assert!(note.contains("torn"), "{note}");
    assert_eq!(torn.key, warm.key);
    assert_eq!(
        torn.points.len(),
        warm.points.len() - 1,
        "exactly the final, half-written point is lost"
    );
    assert_eq!(torn.points, warm.points[..warm.points.len() - 1]);
}

#[test]
fn the_bit_rot_seed_is_rejected_whole() {
    let err = parse_front_segment(&corpus_bytes("front_bit_rot.seg"))
        .expect_err("a CRC mismatch mid-file is bit rot, not a tear");
    assert!(err.contains("crc"), "diagnostic must name the check: {err}");
}

#[test]
fn truncation_at_every_byte_never_panics_and_never_misloads() {
    let bytes = corpus_bytes("front_warm.seg");
    let full = parse_front_segment(&bytes).unwrap();
    // Clean cut points: after the key line and after each framed entry.
    // A cut exactly there is indistinguishable from a complete shorter
    // file — the append-only format's one honest blind spot. Everywhere
    // else, a cut MUST be flagged torn.
    let mut boundaries = vec![];
    let mut edge = bytes
        .windows(1)
        .enumerate()
        .filter(|(_, w)| w == b"\n")
        .map(|(i, _)| i + 1)
        .nth(1)
        .expect("header and key lines exist");
    boundaries.push(edge);
    for point in &full.points {
        edge += frame_entry(&render_front_entry(point)).len();
        boundaries.push(edge);
    }
    for cut in 0..bytes.len() {
        let load = parse_survives(&format!("truncation at byte {cut}"), &bytes[..cut]);
        if let Ok(load) = load {
            // Whatever survives a cut must be a *prefix* of the truth —
            // never a reordering, never an invented point — and a cut
            // off a frame boundary must be flagged torn.
            assert!(load.points.len() <= full.points.len());
            assert_eq!(load.points, full.points[..load.points.len()], "cut {cut}");
            assert!(
                load.torn.is_some() || boundaries.contains(&cut),
                "silent data loss at cut {cut}"
            );
        }
    }
    // And the empty file is a torn (empty) front, not an error: a crash
    // can land exactly between create and first write.
    let load = parse_front_segment(b"").unwrap();
    assert!(load.points.is_empty());
}

#[test]
fn every_single_bit_flip_under_the_crc_is_caught() {
    let bytes = corpus_bytes("front_warm.seg");
    let full = parse_front_segment(&bytes).unwrap();
    // CRC-32 detects every single-bit error, so flipping any one bit of
    // any payload byte must fail the file — exhaustively, not sampled.
    // Payload bytes are exactly the rendered point lines.
    let mut covered = 0usize;
    let mut cursor = 0usize;
    for point in &full.points {
        let payload = render_front_entry(point);
        let start = bytes[cursor..]
            .windows(payload.len())
            .position(|w| w == payload.as_bytes())
            .map(|p| p + cursor)
            .expect("payload bytes present verbatim in the file");
        for offset in 0..payload.len() {
            for bit in 0..8 {
                let mut mutated = bytes.clone();
                mutated[start + offset] ^= 1 << bit;
                let context = format!("bit {bit} of payload byte {offset}");
                assert!(
                    parse_survives(&context, &mutated).is_err(),
                    "undetected corruption: {context}"
                );
                covered += 1;
            }
        }
        cursor = start + payload.len();
    }
    assert!(covered >= 8 * 8 * 86, "flip sweep lost its coverage");
}

#[test]
fn garbage_payloads_error_without_panicking() {
    let key = 0x42u64;
    let header = format!("hi-serve pareto front v1\nkey {key:016x}\n");

    // Correctly framed garbage: the CRC passes, the payload parser must
    // still produce a typed error naming the entry.
    let mut bytes = header.clone().into_bytes();
    bytes.extend_from_slice(&frame_entry("z".repeat(1 << 20).as_str()));
    let err = parse_survives("a megabyte garbage point", &bytes).unwrap_err();
    assert!(err.contains("entry 0"), "diagnostic names the entry: {err}");

    // A point whose fingerprint decodes to no design point is refused:
    // a hydrated archive must never carry unreportable members.
    let mut bytes = header.clone().into_bytes();
    bytes.extend_from_slice(&frame_entry(
        "p ffffffffffffffff 3fe0000000000000 3fe0000000000000 3fe0000000000000 3fe0000000000000",
    ));
    let err = parse_survives("an impossible fingerprint", &bytes).unwrap_err();
    assert!(err.contains("no valid design point"), "{err}");

    // Trailing fields are refused, not ignored: a fifth float means the
    // writer and reader disagree about the schema.
    let mut bytes = header.into_bytes();
    bytes.extend_from_slice(&frame_entry(
        "p 00000000000002b0 3fe0000000000000 3fe0000000000000 \
         3fe0000000000000 3fe0000000000000 3fe0000000000000",
    ));
    let err = parse_survives("a five-float point", &bytes).unwrap_err();
    assert!(err.contains("trailing"), "{err}");
}

#[test]
fn fronts_cross_feed_into_every_other_parser_as_typed_errors() {
    let front = corpus_bytes("front_warm.seg");
    let text = String::from_utf8(front.clone()).expect("the seed is ASCII");

    // A front fed to the five sibling parsers: typed errors, no panics.
    let cache = catch_unwind(AssertUnwindSafe(|| parse_segment(&front)))
        .expect("cache-segment parser panicked on a front");
    assert!(
        cache.unwrap_err().contains("not a cache segment"),
        "the cache parser must name its own header"
    );
    let profile = catch_unwind(AssertUnwindSafe(|| parse_profiles(&text)))
        .expect("profile parser panicked on a front");
    assert!(profile.is_err());
    let record = catch_unwind(AssertUnwindSafe(|| JobRecord::from_text(&text)))
        .expect("record parser panicked on a front");
    assert!(record.is_err());
    let ck = catch_unwind(AssertUnwindSafe(|| ExploreCheckpoint::from_text(&text)))
        .expect("checkpoint parser panicked on a front");
    assert!(ck.is_err());
    let suite = catch_unwind(AssertUnwindSafe(|| parse_fault_suite(&text)))
        .expect("suite parser panicked on a front");
    assert!(suite.is_err());

    // And every *other* corpus format fed to the front parser: a cache
    // segment, a checkpoint, a record, a profile and a fault suite all
    // miss the header and fail with the expected-header diagnostic.
    for name in [
        "segment_warm.seg",
        "profile_demo.profile",
        "record_done.rec",
        "record_torn.rec",
        "record_bit_rot.rec",
        "xfeed_checkpoint_v2.ck",
        "xfeed_suite_demo.suite",
    ] {
        let err = parse_survives(name, &corpus_bytes(name)).unwrap_err();
        assert!(err.contains("not a pareto front"), "{name}: {err}");
    }
}
