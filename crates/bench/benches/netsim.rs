//! Microbenchmark B3: discrete-event simulation throughput for each
//! MAC x routing combination — the per-candidate cost Algorithm 1 pays at
//! `RunSim`, and the quantity the 87%-fewer-simulations claim saves.

use hi_bench::micro::Runner;
use hi_channel::{BodyLocation, ChannelParams};
use hi_des::SimDuration;
use hi_net::{simulate_stochastic, MacKind, NetworkConfig, Routing, TxPower};

fn placements() -> Vec<BodyLocation> {
    vec![
        BodyLocation::Chest,
        BodyLocation::LeftHip,
        BodyLocation::LeftAnkle,
        BodyLocation::LeftWrist,
        BodyLocation::LeftUpperArm,
    ]
}

fn main() {
    let runner = Runner::new("netsim_10s_5nodes");
    let cases = [
        (
            "star_csma",
            MacKind::csma(),
            Routing::Star { coordinator: 0 },
        ),
        (
            "star_tdma",
            MacKind::tdma(),
            Routing::Star { coordinator: 0 },
        ),
        ("mesh_csma", MacKind::csma(), Routing::mesh()),
        ("mesh_tdma", MacKind::tdma(), Routing::mesh()),
    ];
    for (name, mac, routing) in cases {
        let cfg = NetworkConfig::new(placements(), TxPower::ZeroDbm, mac, routing);
        let mut seed = 0u64;
        runner.bench(name, || {
            seed += 1;
            simulate_stochastic(
                &cfg,
                ChannelParams::default(),
                SimDuration::from_secs(10.0),
                seed,
            )
            .expect("valid config")
            .pdr
        });
    }
}
