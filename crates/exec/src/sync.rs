//! The synchronization facade: one API, two engines.
//!
//! All of `hi-exec`'s pool/cache/cancel code is written against this
//! module instead of `std::sync`. In a normal build it compiles to thin
//! zero-logic wrappers over the real primitives. With the `shadow`
//! feature (enabled only by `cargo test -p hi-exec --features shadow`)
//! the same source compiles against `hi-check`'s instrumented shadow
//! primitives, so the model checker explores schedules, vector clocks and
//! lock orders of the *actual* protocol code, not a transcription of it.
//!
//! The facade is deliberately narrower than `std::sync`:
//!
//! - [`Mutex::lock`] returns the guard directly. Poisoning is recovered
//!   via [`PoisonError::into_inner`]: `hi-exec` survives panicking user
//!   tasks by design, and no internal invariant is guard-scoped in a way
//!   poisoning would protect.
//! - [`Condvar`] exposes **only** [`Condvar::wait_while`] plus
//!   `notify_all`. A bare `wait` is not available on purpose — every wait
//!   in this crate must state its predicate, which is what makes it
//!   immune to spurious wakeups and checkable by `hi-check`. `notify_one`
//!   is omitted for the dual reason: waking a single waiter is only
//!   correct when *any* waiter can make progress, and both protocols here
//!   (generation parking, cache settle) have heterogeneous waiters.
//! - [`thread::spawn_named`] is the only way to start a thread.

#[cfg(not(feature = "shadow"))]
mod real {
    use std::sync::PoisonError;

    pub use std::sync::atomic::{AtomicBool, AtomicU64};

    /// `std::sync::Mutex` with direct (poison-recovering) lock.
    #[derive(Debug, Default)]
    pub struct Mutex<T>(std::sync::Mutex<T>);

    /// Guard for the facade [`Mutex`].
    #[derive(Debug)]
    pub struct MutexGuard<'a, T>(std::sync::MutexGuard<'a, T>);

    impl<T> Mutex<T> {
        pub fn new(value: T) -> Self {
            Self(std::sync::Mutex::new(value))
        }

        /// Same as [`Mutex::new`]; the name only matters to the shadow
        /// build, where it labels the lock in checker reports.
        pub fn named(value: T, _name: &str) -> Self {
            Self::new(value)
        }

        pub fn lock(&self) -> MutexGuard<'_, T> {
            MutexGuard(self.0.lock().unwrap_or_else(PoisonError::into_inner))
        }
    }

    impl<T> std::ops::Deref for MutexGuard<'_, T> {
        type Target = T;

        fn deref(&self) -> &T {
            &self.0
        }
    }

    impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.0
        }
    }

    /// `std::sync::Condvar` narrowed to predicate waits.
    #[derive(Debug, Default)]
    pub struct Condvar(std::sync::Condvar);

    impl Condvar {
        pub fn new() -> Self {
            Self(std::sync::Condvar::new())
        }

        /// Waits while `condition` returns true, rechecking on every
        /// wakeup — spurious or not.
        pub fn wait_while<'a, T, F>(
            &self,
            guard: MutexGuard<'a, T>,
            condition: F,
        ) -> MutexGuard<'a, T>
        where
            F: FnMut(&mut T) -> bool,
        {
            MutexGuard(
                self.0
                    .wait_while(guard.0, condition)
                    .unwrap_or_else(PoisonError::into_inner),
            )
        }

        pub fn notify_all(&self) {
            self.0.notify_all();
        }
    }

    /// Thread spawning/joining for the facade.
    pub mod thread {
        pub use std::thread::JoinHandle;

        /// Spawns an OS thread with the given name.
        pub fn spawn_named<F, T>(name: String, f: F) -> JoinHandle<T>
        where
            F: FnOnce() -> T + Send + 'static,
            T: Send + 'static,
        {
            std::thread::Builder::new()
                .name(name)
                .spawn(f)
                .expect("spawn named thread")
        }
    }
}

#[cfg(not(feature = "shadow"))]
pub(crate) use real::*;

#[cfg(feature = "shadow")]
mod shadow {
    pub use hi_check::sync::{AtomicBool, AtomicU64, Condvar, Mutex};

    /// Shadow thread spawning/joining: model threads under the checker.
    pub mod thread {
        pub use hi_check::thread::JoinHandle;

        /// Spawns a model thread; the name is recorded by the checker's
        /// own numbering, so the argument is unused here.
        pub fn spawn_named<F, T>(_name: String, f: F) -> JoinHandle<T>
        where
            F: FnOnce() -> T + Send + 'static,
            T: Send + 'static,
        {
            hi_check::thread::spawn(f)
        }
    }
}

#[cfg(feature = "shadow")]
pub(crate) use shadow::*;
