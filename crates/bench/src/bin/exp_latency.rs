//! Experiment E5 (paper §2.1.2 Remark): "In CSMA ... a non-deterministic
//! delay in communication. In TDMA, each node has exclusive access to the
//! medium during its dedicated time slot, which makes the communication
//! deterministic."
//!
//! Measures end-to-end delivery latency (mean / jitter / worst case) for
//! CSMA vs TDMA at increasing traffic loads.
//!
//! ```sh
//! cargo run --release -p hi-bench --bin exp_latency
//! ```

use hi_bench::ExpOptions;
use hi_channel::{BodyLocation, ChannelParams};
use hi_net::{simulate_averaged, MacKind, NetworkConfig, Routing, TxPower};

fn main() {
    let opts = ExpOptions::from_args();
    let placements = vec![
        BodyLocation::Chest,
        BodyLocation::LeftHip,
        BodyLocation::LeftAnkle,
        BodyLocation::LeftWrist,
        BodyLocation::LeftUpperArm,
    ];
    println!("# Experiment E5: MAC determinism and delivery latency (5-node star, 0 dBm)");
    println!("load_pkt_s\tmac\tmean_ms\tjitter_ms\tmax_ms\tpdr_pct\tcollisions");
    for load in [10.0, 50.0, 100.0] {
        for mac in [
            MacKind::csma(),
            MacKind::tdma(),
            MacKind::slotted_aloha(),
            MacKind::hybrid(),
        ] {
            let mut cfg = NetworkConfig::new(
                placements.clone(),
                TxPower::ZeroDbm,
                mac,
                Routing::Star { coordinator: 0 },
            );
            cfg.app.packets_per_second = load;
            let out = simulate_averaged(
                &cfg,
                ChannelParams::default(),
                opts.t_sim,
                opts.seed,
                opts.runs,
            )
            .expect("valid config");
            println!(
                "{:.0}\t{}\t{:.3}\t{:.3}\t{:.3}\t{:.2}\t{}",
                load,
                mac.label(),
                out.latency.mean_ms,
                out.latency.std_ms,
                out.latency.max_ms,
                out.pdr_percent(),
                out.counts.collisions
            );
        }
    }
    println!("\n# TDMA latency is frame-bounded at every load; CSMA's tail and");
    println!("# collision count grow with contention — the paper's determinism remark.");
}
