//! Error types for model construction and solving.

use std::error::Error;
use std::fmt;

/// Error returned by the solve entry points of this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SolveError {
    /// A variable's lower bound exceeds its upper bound.
    InvalidBounds {
        /// Name of the offending variable.
        var: String,
    },
    /// The model has no objective set.
    MissingObjective,
    /// A constraint or the objective contains a non-finite coefficient.
    NonFiniteCoefficient,
    /// The simplex iteration limit was exceeded (numerical trouble).
    IterationLimit,
    /// The branch & bound node limit was exceeded.
    NodeLimit,
    /// The pre-solve static analyzer rejected the model.
    Lint {
        /// The first error-severity finding, rendered.
        first: String,
        /// Total number of error-severity findings.
        errors: usize,
    },
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::InvalidBounds { var } => {
                write!(f, "variable `{var}` has lower bound above upper bound")
            }
            SolveError::MissingObjective => write!(f, "model has no objective"),
            SolveError::NonFiniteCoefficient => {
                write!(f, "model contains a non-finite coefficient")
            }
            SolveError::IterationLimit => write!(f, "simplex iteration limit exceeded"),
            SolveError::NodeLimit => write!(f, "branch and bound node limit exceeded"),
            SolveError::Lint { first, errors } => {
                write!(
                    f,
                    "static analysis rejected the model ({errors} error(s); first: {first})"
                )
            }
        }
    }
}

impl Error for SolveError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = SolveError::MissingObjective;
        let s = e.to_string();
        assert!(s.starts_with(char::is_lowercase));
        assert!(!s.ends_with('.'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: Send + Sync + std::error::Error>() {}
        assert_bounds::<SolveError>();
    }
}
