hi-opt explore checkpoint v9
pdr_min 3fe6666666666666
end
crc32 00000000
