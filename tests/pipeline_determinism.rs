//! Reproducibility of the full pipeline: identical seeds must yield
//! bit-identical exploration outcomes, and different seeds must actually
//! change the stochastic measurements.

use hi_opt::channel::ChannelParams;
use hi_opt::des::SimDuration;
use hi_opt::{explore, simulated_annealing, Problem, SaParams, SimEvaluator};

fn run_explore(seed: u64) -> (Option<(String, f64, f64)>, u64) {
    let problem = Problem::paper_default(0.60);
    let mut ev = SimEvaluator::new(
        ChannelParams::default(),
        SimDuration::from_secs(10.0),
        1,
        seed,
    );
    let out = explore(&problem, &mut ev).expect("explore");
    (
        out.best.map(|(pt, e)| (pt.to_string(), e.pdr, e.power_mw)),
        out.simulations,
    )
}

#[test]
fn exploration_is_deterministic_per_seed() {
    let a = run_explore(123);
    let b = run_explore(123);
    assert_eq!(a, b);
}

#[test]
fn different_seeds_change_measurements() {
    let a = run_explore(123);
    let b = run_explore(456);
    // The selected class is usually stable but the measured PDR/power of
    // the winner differ across channel realizations.
    assert_ne!(
        a.0.map(|(_, pdr, p)| (pdr.to_bits(), p.to_bits())),
        b.0.map(|(_, pdr, p)| (pdr.to_bits(), p.to_bits())),
        "independent channel realizations should not measure identically"
    );
}

#[test]
fn annealing_is_deterministic_per_seed() {
    let problem = Problem::paper_default(0.60);
    let run = |seed: u64| {
        let mut ev = SimEvaluator::new(ChannelParams::default(), SimDuration::from_secs(5.0), 1, 9);
        let out = simulated_annealing(
            &problem,
            &mut ev,
            SaParams {
                steps: 40,
                ..Default::default()
            },
            seed,
        );
        out.best
            .map(|(pt, e)| (pt.to_string(), e.power_mw.to_bits()))
    };
    assert_eq!(run(5), run(5));
}
