//! The wire protocol: one request per line, length-framed payloads,
//! deterministic single-line or counted-block responses.
//!
//! Designed for `printf | nc` debuggability and byte-exact testing:
//!
//! ```text
//! client                          server
//! ------                          ------
//! SUBMIT 2 deploy-42
//! profile alice
//! pdrmin 0.9
//!                                 OK job 1
//! SUBMIT 2 deploy-42
//! profile alice
//! pdrmin 0.9
//!                                 OK job 1       (idempotent replay)
//! STATUS 1                        OK status 1 running
//! WAIT 1                          EVENT 1 iteration 1 simulations 24
//!                                 EVENT 1 iteration 2 simulations 32
//!                                 OK status 1 done
//! RESULT 1                        OK result 1 11
//!                                 profile alice
//!                                 ...           (11 counted lines)
//! CANCEL 2                        OK cancel 2 cancelled
//! FRONT 1                         OK front 1 4
//!                                 key 91a09d2f63880df1
//!                                 simulations 32
//!                                 point ...     (one per front design)
//! STATS                           OK stats 18
//!                                 serve.jobs.accepted 2
//!                                 ...           (18 counted lines)
//! SHUTDOWN                        OK shutdown
//! anything malformed              ERR <one-line diagnostic>
//! ```
//!
//! `SUBMIT <n> [token]` is followed by exactly `n` raw profile-file
//! lines (line count framing, like the record format: any legal profile
//! byte sequence round-trips). One submission may carry a whole fleet —
//! every `profile` block becomes a job and the response lists every id.
//!
//! The optional **idempotency token** makes retries safe over a lossy
//! transport: a client that never saw the `OK job ...` response resends
//! the same `SUBMIT` with the same token and gets the *existing* job
//! ids back instead of double-scheduling. Reusing a token with a
//! *different* payload is refused with `ERR token-reuse`, so a buggy
//! client can't silently alias two distinct jobs.
//!
//! `ERR` responses put a machine-readable reason as the first word when
//! the client is expected to branch on it: `ERR busy ...` (overload —
//! back off and retry), `ERR too-large ...` (protocol misuse — do not
//! retry), `ERR token-reuse ...` (client bug).
//!
//! This module is pure parse/render — no sockets, no locks — so the
//! grammar is unit-testable byte for byte; `server` owns the I/O loop.

use std::fmt;

/// Upper bound on `SUBMIT` payload lines: fleet files are big, attack
/// payloads are bigger; past this the request is refused before any
/// buffering happens.
pub const MAX_SUBMIT_LINES: usize = 1 << 20;

/// Upper bound on idempotency-token length. Tokens are identifiers, not
/// payloads; a bound keeps the server's token map small and the wire
/// grammar single-line.
pub const MAX_TOKEN_LEN: usize = 64;

/// One parsed request line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// `SUBMIT <n> [token]`: `n` profile-file lines follow; the
    /// optional token makes the submit idempotent under retry.
    Submit {
        /// Number of payload lines that follow this request line.
        lines: usize,
        /// Client-supplied idempotency token, if any.
        token: Option<String>,
    },
    /// `STATUS <id>`: one-line lifecycle state.
    Status {
        /// The job id.
        id: u64,
    },
    /// `RESULT <id>`: the terminal result block, counted.
    Result {
        /// The job id.
        id: u64,
    },
    /// `WAIT <id>`: stream progress events until the job is terminal.
    Wait {
        /// The job id.
        id: u64,
    },
    /// `CANCEL <id>`: stop a queued or running job.
    Cancel {
        /// The job id.
        id: u64,
    },
    /// `FRONT <id>`: the Pareto front of the job's evaluator stream,
    /// counted.
    Front {
        /// The job id.
        id: u64,
    },
    /// `STATS`: the daemon's metric snapshot, counted.
    Stats,
    /// `SHUTDOWN`: finish the current job, persist, exit.
    Shutdown,
}

/// Checks a client-supplied idempotency token: 1–[`MAX_TOKEN_LEN`]
/// characters from `[A-Za-z0-9._-]`. The restricted charset keeps
/// tokens safe to embed in record files and log lines verbatim.
pub fn validate_token(token: &str) -> Result<(), String> {
    if token.is_empty() {
        return Err("empty idempotency token".to_string());
    }
    if token.len() > MAX_TOKEN_LEN {
        return Err(format!(
            "idempotency token of {} bytes exceeds the {MAX_TOKEN_LEN}-byte cap",
            token.len()
        ));
    }
    if let Some(bad) = token
        .chars()
        .find(|c| !c.is_ascii_alphanumeric() && !matches!(c, '.' | '_' | '-'))
    {
        return Err(format!(
            "idempotency token contains `{bad}` (allowed: A-Za-z0-9 . _ -)"
        ));
    }
    Ok(())
}

/// Derives a deterministic idempotency token from a submit payload:
/// `auto-<16 hex>` of the payload's FNV-1a-64 hash. The client uses
/// this when the caller supplies no explicit token, so *every* submit
/// is retry-safe by default — and two identical payloads submitted
/// through the auto path intentionally dedup to one job set.
pub fn derive_token(payload: &str) -> String {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in payload.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("auto-{hash:016x}")
}

impl Request {
    /// Parses one request line. Total: any line yields a request or a
    /// one-line diagnostic (which the server echoes as `ERR ...`).
    /// Refusals the client should branch on carry a machine-readable
    /// first word (`too-large`).
    pub fn parse(line: &str) -> Result<Request, String> {
        let mut fields = line.split_whitespace();
        let verb = fields.next().ok_or("empty request".to_string())?;
        let parsed = match verb {
            "SUBMIT" => {
                let raw = fields.next().ok_or("SUBMIT needs a line count")?;
                let lines: usize = raw
                    .parse()
                    .map_err(|_| format!("bad SUBMIT line count `{raw}`"))?;
                if lines > MAX_SUBMIT_LINES {
                    return Err(format!(
                        "too-large {MAX_SUBMIT_LINES}: SUBMIT of {lines} lines exceeds the cap"
                    ));
                }
                let token = match fields.next() {
                    Some(raw) => {
                        validate_token(raw)?;
                        Some(raw.to_string())
                    }
                    None => None,
                };
                Request::Submit { lines, token }
            }
            "STATUS" => Request::Status {
                id: job_id(&mut fields, "STATUS")?,
            },
            "RESULT" => Request::Result {
                id: job_id(&mut fields, "RESULT")?,
            },
            "WAIT" => Request::Wait {
                id: job_id(&mut fields, "WAIT")?,
            },
            "CANCEL" => Request::Cancel {
                id: job_id(&mut fields, "CANCEL")?,
            },
            "FRONT" => Request::Front {
                id: job_id(&mut fields, "FRONT")?,
            },
            "STATS" => Request::Stats,
            "SHUTDOWN" => Request::Shutdown,
            other => return Err(format!("unknown request `{other}`")),
        };
        if let Some(extra) = fields.next() {
            return Err(format!("unexpected trailing field `{extra}`"));
        }
        Ok(parsed)
    }
}

fn job_id(fields: &mut std::str::SplitWhitespace<'_>, verb: &str) -> Result<u64, String> {
    let raw = fields.next().ok_or(format!("{verb} needs a job id"))?;
    raw.parse()
        .map_err(|_| format!("bad job id `{raw}` for {verb}"))
}

impl fmt::Display for Request {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Request::Submit { lines, token } => match token {
                Some(token) => write!(f, "SUBMIT {lines} {token}"),
                None => write!(f, "SUBMIT {lines}"),
            },
            Request::Status { id } => write!(f, "STATUS {id}"),
            Request::Result { id } => write!(f, "RESULT {id}"),
            Request::Wait { id } => write!(f, "WAIT {id}"),
            Request::Cancel { id } => write!(f, "CANCEL {id}"),
            Request::Front { id } => write!(f, "FRONT {id}"),
            Request::Stats => f.write_str("STATS"),
            Request::Shutdown => f.write_str("SHUTDOWN"),
        }
    }
}

/// Renders an `ERR` line: diagnostics are flattened to one line (the
/// protocol is line-oriented; a multi-line lint report becomes
/// `; `-joined clauses).
pub fn err_line(message: &str) -> String {
    let flat: Vec<&str> = message
        .lines()
        .map(str::trim_end)
        .filter(|l| !l.is_empty())
        .collect();
    format!("ERR {}\n", flat.join("; "))
}

/// Renders an `OK <verb> ...` line from pre-rendered tail words.
pub fn ok_line(tail: &str) -> String {
    format!("OK {tail}\n")
}

/// Renders a counted block response: the `OK <tail> <n>` line followed
/// by exactly `n` lines of `body`.
pub fn ok_block(tail: &str, body: &str) -> String {
    let count = body.lines().count();
    let mut out = format!("OK {tail} {count}\n");
    for line in body.lines() {
        out.push_str(line);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_grammar_roundtrips() {
        for line in [
            "SUBMIT 3",
            "SUBMIT 3 deploy-42",
            "SUBMIT 3 auto-00c0ffee00c0ffee",
            "STATUS 1",
            "RESULT 7",
            "WAIT 2",
            "CANCEL 9",
            "FRONT 1",
            "STATS",
            "SHUTDOWN",
        ] {
            let req = Request::parse(line).unwrap();
            assert_eq!(req.to_string(), line);
        }
        // Whitespace-tolerant, like every parser in the workspace.
        assert_eq!(
            Request::parse("  STATUS\t5  "),
            Ok(Request::Status { id: 5 })
        );
    }

    #[test]
    fn malformed_requests_yield_one_line_diagnostics() {
        for line in [
            "",
            "submit 3",
            "SUBMIT",
            "SUBMIT x",
            "SUBMIT -1",
            "SUBMIT 3 tok~en",
            "SUBMIT 3 a b",
            "STATUS",
            "STATUS abc",
            "RESULT 1 2",
            "FRONT",
            "FRONT x",
            "FETCH 1",
            "SHUTDOWN now",
        ] {
            let err = Request::parse(line).unwrap_err();
            assert!(!err.contains('\n'), "{line:?} -> {err:?}");
        }
    }

    #[test]
    fn oversized_submit_is_a_typed_too_large_refusal() {
        let err = Request::parse(&format!("SUBMIT {}", MAX_SUBMIT_LINES + 1)).unwrap_err();
        // The machine-readable reason leads, with the limit right after,
        // so `ERR too-large 1048576: ...` is branchable by first word.
        assert!(
            err.starts_with(&format!("too-large {MAX_SUBMIT_LINES}")),
            "{err}"
        );
        // Exactly at the cap is still accepted.
        assert!(Request::parse(&format!("SUBMIT {MAX_SUBMIT_LINES}")).is_ok());
    }

    #[test]
    fn tokens_are_validated_and_derived_deterministically() {
        assert!(validate_token("deploy-42.v1_final").is_ok());
        assert!(validate_token("").is_err());
        assert!(validate_token(&"x".repeat(MAX_TOKEN_LEN + 1)).is_err());
        assert!(validate_token("has space").is_err());
        assert!(validate_token("quote\"").is_err());
        let a = derive_token("profile alice\npdrmin 0.9\n");
        let b = derive_token("profile alice\npdrmin 0.9\n");
        let c = derive_token("profile alice\npdrmin 0.8\n");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.starts_with("auto-") && a.len() == 21, "{a}");
        validate_token(&a).unwrap();
    }

    #[test]
    fn responses_are_framed_and_flattened() {
        assert_eq!(ok_line("job 1 2"), "OK job 1 2\n");
        assert_eq!(ok_block("result 1", "a\nb\n"), "OK result 1 2\na\nb\n");
        assert_eq!(ok_block("stats", ""), "OK stats 0\n");
        assert_eq!(
            err_line("profile file line 2: bad geometry\n\nsecond issue\n"),
            "ERR profile file line 2: bad geometry; second issue\n"
        );
    }
}
