//! Machine-readable benchmark reports (`BENCH_*.json`).
//!
//! The microbenchmark runner in [`crate::micro`] prints human-oriented
//! per-iteration stats; this module is the machine-readable counterpart.
//! A [`BenchReport`] accumulates one [`EngineRun`] per engine variant —
//! wall time plus whatever the `hi-trace` metrics registry observed
//! (simulation count, cache hit/miss totals) — and serializes to a small
//! hand-written JSON document so the perf trajectory across PRs can be
//! diffed without any parsing dependency.
//!
//! Field order in the output is fixed and floats are printed with a fixed
//! precision, so two reports of the same run are byte-comparable.

use std::path::Path;

/// One engine variant's measurements within a benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineRun {
    /// Engine variant label, e.g. `exhaustive_sequential`.
    pub engine: String,
    /// Worker threads the variant ran with.
    pub threads: usize,
    /// Wall-clock seconds for the measured run.
    pub wall_s: f64,
    /// Simulation replications executed (the `net.replications` counter).
    pub simulations: u64,
    /// Evaluation-cache hits during the run.
    pub cache_hits: u64,
    /// Evaluation-cache misses (unique evaluations) during the run.
    pub cache_misses: u64,
}

impl EngineRun {
    /// Hits over total lookups, `0.0` when the cache was never consulted.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// A named collection of [`EngineRun`]s, serializable as `BENCH_<name>.json`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BenchReport {
    /// Benchmark name (`explore` writes `BENCH_explore.json`).
    pub bench: String,
    /// Engine variants, in the order they were pushed.
    pub engines: Vec<EngineRun>,
}

impl BenchReport {
    /// An empty report named `bench`.
    pub fn new(bench: &str) -> Self {
        Self {
            bench: bench.to_string(),
            engines: Vec::new(),
        }
    }

    /// Appends one engine variant's measurements.
    pub fn push(&mut self, run: EngineRun) {
        self.engines.push(run);
    }

    /// The file name this report conventionally lands in.
    pub fn file_name(&self) -> String {
        format!("BENCH_{}.json", self.bench)
    }

    /// Serializes the report as pretty-printed JSON with a stable field
    /// order and fixed float precision.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"bench\": \"{}\",\n", escape(&self.bench)));
        out.push_str("  \"engines\": [");
        for (i, run) in self.engines.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\n");
            out.push_str(&format!("      \"engine\": \"{}\",\n", escape(&run.engine)));
            out.push_str(&format!("      \"threads\": {},\n", run.threads));
            out.push_str(&format!("      \"wall_s\": {:.6},\n", run.wall_s));
            out.push_str(&format!("      \"simulations\": {},\n", run.simulations));
            out.push_str(&format!("      \"cache_hits\": {},\n", run.cache_hits));
            out.push_str(&format!("      \"cache_misses\": {},\n", run.cache_misses));
            out.push_str(&format!(
                "      \"cache_hit_rate\": {:.4}\n",
                run.cache_hit_rate()
            ));
            out.push_str("    }");
        }
        if !self.engines.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }

    /// Writes the JSON document to `path`.
    pub fn write_to(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

/// Minimal JSON string escaping: backslash, quote and control characters.
/// Engine and bench names are workspace-chosen identifiers, but escaping
/// keeps the document well-formed even if one ever carries punctuation.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchReport {
        let mut report = BenchReport::new("explore");
        report.push(EngineRun {
            engine: "exhaustive_sequential".into(),
            threads: 1,
            wall_s: 1.25,
            simulations: 96,
            cache_hits: 0,
            cache_misses: 96,
        });
        report.push(EngineRun {
            engine: "algorithm1_pool".into(),
            threads: 8,
            wall_s: 0.5,
            simulations: 24,
            cache_hits: 8,
            cache_misses: 24,
        });
        report
    }

    #[test]
    fn hit_rate_handles_an_untouched_cache() {
        let run = EngineRun {
            engine: "idle".into(),
            threads: 1,
            wall_s: 0.0,
            simulations: 0,
            cache_hits: 0,
            cache_misses: 0,
        };
        assert_eq!(run.cache_hit_rate(), 0.0);
    }

    #[test]
    fn json_has_stable_shape_and_all_fields() {
        let json = sample().to_json();
        assert!(json.starts_with("{\n  \"bench\": \"explore\""));
        assert!(json.ends_with("]\n}\n"));
        for field in [
            "\"engine\": \"exhaustive_sequential\"",
            "\"threads\": 8",
            "\"wall_s\": 1.250000",
            "\"simulations\": 96",
            "\"cache_hits\": 8",
            "\"cache_misses\": 24",
            "\"cache_hit_rate\": 0.2500",
        ] {
            assert!(json.contains(field), "missing {field} in:\n{json}");
        }
        // Exactly two engine objects.
        assert_eq!(json.matches("\"engine\":").count(), 2);
    }

    #[test]
    fn empty_report_is_still_valid_json() {
        let json = BenchReport::new("explore").to_json();
        assert!(json.contains("\"engines\": []"));
    }

    #[test]
    fn names_are_escaped() {
        let mut report = BenchReport::new("a\"b\\c");
        report.push(EngineRun {
            engine: "tab\there\nnewline\u{1}ctl".into(),
            threads: 1,
            wall_s: 0.0,
            simulations: 0,
            cache_hits: 0,
            cache_misses: 0,
        });
        let json = report.to_json();
        assert!(json.contains("a\\\"b\\\\c"));
        assert!(json.contains("tab\\there\\nnewline\\u0001ctl"));
    }

    #[test]
    fn file_name_follows_the_bench_convention() {
        assert_eq!(sample().file_name(), "BENCH_explore.json");
    }
}
