//! Property-based tests of the channel model: symmetry, determinism and
//! calibration bounds hold for arbitrary (sane) parameters and seeds.

use hi_channel::{
    BodyLocation, Channel, ChannelModel, ChannelParams, PathLossMatrix, PathLossParams,
    VariationParams,
};
use hi_des::check::{run_cases, Gen};
use hi_des::SimTime;

fn any_params(g: &mut Gen) -> ChannelParams {
    ChannelParams {
        path_loss: PathLossParams {
            pl0_db: g.f64_in(30.0, 45.0),
            ref_distance_m: 0.1,
            exponent: g.f64_in(2.0, 6.0),
            nlos_penalty_db: g.f64_in(0.0, 20.0),
            limb_penalty_db: g.f64_in(0.0, 12.0),
        },
        variation: VariationParams {
            sigma_db: g.f64_in(0.5, 10.0),
            tau_s: g.f64_in(0.05, 5.0),
        },
    }
}

fn any_location(g: &mut Gen) -> BodyLocation {
    *g.choose(&BodyLocation::ALL)
}

#[test]
fn matrix_is_symmetric_zero_diagonal() {
    run_cases(128, 0xC4_0001, |g| {
        let params = any_params(g);
        let m = PathLossMatrix::synthetic(&params.path_loss);
        for &a in &BodyLocation::ALL {
            assert_eq!(m.loss_db(a, a), 0.0);
            for &b in &BodyLocation::ALL {
                assert_eq!(m.loss_db(a, b), m.loss_db(b, a));
                if a != b {
                    assert!(m.loss_db(a, b) >= params.path_loss.pl0_db - 1e-9);
                }
            }
        }
    });
}

#[test]
fn channel_symmetric_and_deterministic() {
    run_cases(128, 0xC4_0002, |g| {
        let params = any_params(g);
        let a = any_location(g);
        let b = any_location(g);
        let seed = g.u64();
        let t_ms = 1 + g.u64_below(9_999);
        let t = SimTime::from_nanos(t_ms * 1_000_000);
        let mut ch1 = Channel::new(params, seed);
        let v1 = ch1.path_loss_db(a, b, t);
        let v1r = ch1.path_loss_db(b, a, t); // same time: symmetric
        assert_eq!(v1, v1r);

        let mut ch2 = Channel::new(params, seed);
        assert_eq!(v1, ch2.path_loss_db(a, b, t));

        if a == b {
            assert_eq!(v1, 0.0);
        } else {
            // Within mean +- 8 sigma: effectively always.
            let mean = PathLossMatrix::synthetic(&params.path_loss).loss_db(a, b);
            assert!((v1 - mean).abs() <= 8.0 * params.variation.sigma_db + 1e-9);
        }
    });
}

#[test]
fn monotone_queries_never_panic() {
    run_cases(128, 0xC4_0003, |g| {
        let params = any_params(g);
        let seed = g.u64();
        let steps: Vec<u64> = g.vec(1..64, |g| 1 + g.u64_below(499));
        let mut ch = Channel::new(params, seed);
        let mut t = SimTime::ZERO;
        for (k, &d) in steps.iter().enumerate() {
            t = SimTime::from_nanos(t.as_nanos() + d * 1_000_000);
            let a = BodyLocation::ALL[k % 10];
            let b = BodyLocation::ALL[(k * 3 + 1) % 10];
            let v = ch.path_loss_db(a, b, t);
            assert!(v.is_finite());
        }
    });
}
